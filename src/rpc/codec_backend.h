/**
 * @file
 * Pluggable serialization backends for the RPC substrate.
 *
 * A CodecBackend turns Message objects into wire bytes and back while
 * accounting modeled time — either on a CPU cost model (the software
 * protobuf library on riscv-boom / Xeon) or on the protobuf
 * accelerator. Swapping the backend is the experiment of the paper:
 * same application, same RPC framing, different serialization engine.
 */
#ifndef PROTOACC_RPC_CODEC_BACKEND_H
#define PROTOACC_RPC_CODEC_BACKEND_H

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "common/check.h"
#include "cpu/cpu_model.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/codec_table.h"
#include "proto/parser.h"
#include "proto/serializer.h"
#include "proto/stream_codec.h"

namespace protoacc::rpc {

/// Why a hybrid engine routed operations to the software codec.
struct FallbackCounters
{
    /// Device op failed (e.g. an injected unit kill) and was re-run in
    /// software.
    uint64_t accel_fault = 0;
    /// Saturation-driven degraded mode: ops executed in software
    /// because the accelerator path was forced off.
    uint64_t forced = 0;
};

/**
 * Abstract serialization engine with cycle accounting.
 */
class CodecBackend
{
  public:
    virtual ~CodecBackend() = default;

    /// Serialize @p msg; returns the wire bytes.
    virtual std::vector<uint8_t> Serialize(const proto::Message &msg) = 0;

    /**
     * Encoded size of @p msg. Charges no modeled cycles: SerializeTo
     * re-runs (and prices) the sizing pass itself, so a caller doing
     * SerializedSize + SerializeTo is charged exactly what Serialize
     * would have been.
     */
    virtual size_t
    SerializedSize(const proto::Message &msg)
    {
        return proto::ByteSize(msg, nullptr);
    }

    /**
     * Serialize @p msg directly into [buf, buf+cap) — the zero-copy
     * response path. Returns bytes written, or 0 when @p cap is
     * insufficient. The base implementation falls back to the copying
     * Serialize().
     */
    virtual size_t
    SerializeTo(const proto::Message &msg, uint8_t *buf, size_t cap)
    {
        const std::vector<uint8_t> out = Serialize(msg);
        if (out.size() > cap)
            return 0;
        std::memcpy(buf, out.data(), out.size());
        return out.size();
    }

    /// Parse @p size bytes at @p data into @p msg. Returns the specific
    /// failure class (common/status.h); StatusCode::kOk on success.
    virtual StatusCode Deserialize(const uint8_t *data, size_t size,
                                   proto::Message *msg) = 0;

    /// Hostile-input resource bounds applied to every Deserialize.
    /// Zero-valued fields mean unlimited / codec default.
    virtual void SetParseLimits(const ParseLimits &limits)
    {
        limits_ = limits;
    }
    const ParseLimits &parse_limits() const { return limits_; }

    /**
     * Specific failure class of the most recent codec operation, for
     * engines that can fail out-of-band of their return value (the
     * accelerator's serialize path reports 0 bytes and records the
     * cause here); kOk for engines that cannot fail that way.
     */
    virtual StatusCode last_status() const { return StatusCode::kOk; }

    /// Modeled cycles spent in serialization/deserialization so far.
    virtual double codec_cycles() const = 0;

    /// Portion of codec_cycles() spent on an accelerator device (same
    /// clock domain as codec_cycles). Software-only backends return 0;
    /// the serving runtime uses the split to charge fallback work to
    /// the worker core instead of the shared accelerator timeline.
    virtual double accel_cycles() const { return 0; }

    /// Device jobs issued so far (doorbell occupancy for the shared
    /// accelerator queue replay). Software-only backends return 0.
    virtual uint64_t accel_jobs() const { return 0; }

    /// accel_cycles() split by unit: the deserializer-side and
    /// serializer-side totals. The offloaded datapath pipelines the
    /// two FSUs across a batch's calls, so its queueing model needs
    /// the per-stage totals, not just the sum. Zero for software-only
    /// backends; deser + ser == accel_cycles() for device backends.
    virtual double accel_deser_cycles() const { return 0; }
    virtual double accel_ser_cycles() const { return 0; }

    /// Degraded mode: route every op to software (saturation shedding
    /// of the accelerator path). No-op for non-hybrid backends.
    virtual void SetForceSoftware(bool /*force*/) {}

    /// Fallback accounting for hybrid engines; zeros otherwise.
    virtual FallbackCounters fallback_counters() const { return {}; }

    /// Ops a generated-engine backend executed on the table engine
    /// because no emitted codec matched the pool's fingerprint (a
    /// schema drifted from its build-time recipe). A silent tier
    /// downgrade is a perf regression that looks like correct
    /// behavior, so it must be countable. Zero for other engines.
    virtual uint64_t generated_fallbacks() const { return 0; }

    /// Device watchdog activity (unit resets, replayed jobs); zeros for
    /// software-only backends.
    virtual accel::WatchdogStats watchdog_stats() const { return {}; }

    /**
     * The engine that talks to an accelerator device, for health-domain
     * maintenance (self-test vectors must run on the device itself, not
     * through a hybrid's fallback logic). The accelerated backend
     * returns itself, the hybrid returns its accelerated half, and
     * software-only backends return nullptr (nothing to health-manage).
     */
    virtual CodecBackend *accel_engine() { return nullptr; }

    /// Device configuration behind this engine (nullptr for
    /// software-only backends) — sizes the modeled state scrub.
    virtual const accel::AccelConfig *accel_config() const
    {
        return nullptr;
    }

    /**
     * Health-domain state scrub of the underlying device: drop queued
     * jobs and clear all cross-request unit state (ADT response
     * buffers, pipeline context). No-op for software-only backends. The
     * modeled cycle cost is charged by the health subsystem
     * (rpc/health.h ComputeScrubCost), not here.
     */
    virtual void ScrubDeviceState() {}

    /**
     * Open an incremental decoder over this backend's software engine
     * for the chunked streaming datapath (rpc/stream.h): wire bytes of
     * one logical message arrive in fixed-budget chunks and complete
     * top-level fields are delivered to @p sink as they finish, so
     * peak memory never scales with the message. Decoded records price
     * their cycles through the backend's cost model exactly like a
     * whole-buffer Deserialize of the same bytes.
     *
     * Returns nullptr for engines with no incremental path — the
     * device-only backend, whose modeled FSU consumes whole in-memory
     * buffers (§3.4's context stack spills to DRAM, it does not
     * stream); the serving runtime routes streams to the software
     * engine there, the same degraded-mode route forced fallback uses.
     */
    virtual std::unique_ptr<proto::StreamDecoder>
    CreateStreamDecoder(const proto::DescriptorPool & /*pool*/,
                        int /*type*/,
                        const proto::StreamCodecLimits & /*limits*/,
                        proto::StreamSink * /*sink*/)
    {
        return nullptr;
    }

    /// Mirror of CreateStreamDecoder for the encode direction: append
    /// fields/records, drain wire bytes in caller-sized chunks.
    virtual std::unique_ptr<proto::StreamEncoder>
    CreateStreamEncoder(const proto::StreamCodecLimits & /*limits*/)
    {
        return nullptr;
    }

    /// Clock for converting cycles to time.
    virtual double freq_ghz() const = 0;

    /**
     * Cost sink pricing host-side per-frame work (the CRC32C integrity
     * check runs on the host core even when the codec proper runs on
     * the device). Software backends expose their CPU model; the
     * accelerated backend returns nullptr — its device computes the
     * frame CRC inline with the streaming (de)serialization, where the
     * added datapath cost is hidden behind the memory reads the FSMs
     * already perform.
     */
    virtual proto::CostSink *host_cost_sink() { return nullptr; }

    virtual const char *name() const = 0;

  protected:
    ParseLimits limits_;
};

/**
 * Software codec on a CPU cost model.
 *
 * Runs the table-driven fast path (proto/codec_table.h): the first
 * Serialize/Deserialize against a pool compiles that pool's codec
 * tables, which are cached on the pool and shared with every other user
 * (figure benches, codec_gbench, other backends on the same pool). The
 * pool-taking constructor pre-compiles them so the first RPC does not
 * pay the one-time cost — use it when a pool is shared across threads,
 * since lazy table construction is not thread-safe.
 */
class SoftwareBackend : public CodecBackend
{
  public:
    explicit SoftwareBackend(const cpu::CpuParams &params,
                             proto::SoftwareCodecEngine engine =
                                 proto::SoftwareCodecEngine::kTable)
        : model_(params), engine_(engine)
    {
        // The generated engine dispatches per-pool; without a pool we
        // cannot verify a codec is linked in, so the first call's
        // PA_CHECK inside the entry points is the guard.
        name_ = model_.params().name + EngineSuffix(engine);
    }

    SoftwareBackend(const cpu::CpuParams &params,
                    const proto::DescriptorPool &pool,
                    proto::SoftwareCodecEngine engine =
                        proto::SoftwareCodecEngine::kTable)
        : model_(params), engine_(engine)
    {
        if (engine == proto::SoftwareCodecEngine::kTable) {
            proto::GetCodecTables(pool);
        } else if (engine == proto::SoftwareCodecEngine::kGenerated) {
            // Resolve the generated codec (and warm the pool's cache)
            // up front; when no emitted codec matches the fingerprint,
            // the backend serves on the table engine instead — every
            // op through the miss is counted (generated_fallbacks) so
            // the tier downgrade is observable, not silent.
            if (proto::GetGeneratedCodec(pool) == nullptr)
                proto::GetCodecTables(pool);
        }
        name_ = model_.params().name + EngineSuffix(engine);
    }

    std::vector<uint8_t>
    Serialize(const proto::Message &msg) override
    {
        switch (engine_) {
        case proto::SoftwareCodecEngine::kReference:
            return proto::ReferenceSerialize(msg, &model_);
        case proto::SoftwareCodecEngine::kGenerated:
            if (UseGenerated(msg))
                return proto::GeneratedSerialize(msg, &model_);
            break;
        case proto::SoftwareCodecEngine::kTable:
            break;
        }
        return proto::Serialize(msg, &model_);
    }

    size_t
    SerializeTo(const proto::Message &msg, uint8_t *buf,
                size_t cap) override
    {
        switch (engine_) {
        case proto::SoftwareCodecEngine::kReference:
            return proto::ReferenceSerializeToBuffer(msg, buf, cap,
                                                     &model_);
        case proto::SoftwareCodecEngine::kGenerated:
            if (UseGenerated(msg))
                return proto::GeneratedSerializeToBuffer(msg, buf, cap,
                                                         &model_);
            break;
        case proto::SoftwareCodecEngine::kTable:
            break;
        }
        return proto::SerializeToBuffer(msg, buf, cap, &model_);
    }

    size_t
    SerializedSize(const proto::Message &msg) override
    {
        switch (engine_) {
        case proto::SoftwareCodecEngine::kReference:
            return proto::ReferenceByteSize(msg, nullptr);
        case proto::SoftwareCodecEngine::kGenerated:
            if (UseGenerated(msg))
                return proto::GeneratedByteSize(msg, nullptr);
            break;
        case proto::SoftwareCodecEngine::kTable:
            break;
        }
        return proto::ByteSize(msg, nullptr);
    }

    StatusCode
    Deserialize(const uint8_t *data, size_t size,
                proto::Message *msg) override
    {
        switch (engine_) {
        case proto::SoftwareCodecEngine::kReference:
            return proto::ToStatusCode(proto::ReferenceParseFromBuffer(
                data, size, msg, &model_, &limits_));
        case proto::SoftwareCodecEngine::kGenerated:
            if (UseGenerated(*msg))
                return proto::ToStatusCode(
                    proto::GeneratedParseFromBuffer(data, size, msg,
                                                    &model_, &limits_));
            break;
        case proto::SoftwareCodecEngine::kTable:
            break;
        }
        return proto::ToStatusCode(
            proto::ParseFromBuffer(data, size, msg, &model_, &limits_));
    }

    uint64_t generated_fallbacks() const override
    {
        return generated_fallbacks_;
    }

    std::unique_ptr<proto::StreamDecoder>
    CreateStreamDecoder(const proto::DescriptorPool &pool, int type,
                        const proto::StreamCodecLimits &limits,
                        proto::StreamSink *sink) override
    {
        return std::make_unique<proto::StreamDecoder>(
            pool, type, engine_, limits, limits_, sink, &model_);
    }

    std::unique_ptr<proto::StreamEncoder>
    CreateStreamEncoder(const proto::StreamCodecLimits &limits) override
    {
        return std::make_unique<proto::StreamEncoder>(engine_, limits,
                                                      &model_);
    }

    double codec_cycles() const override { return model_.cycles(); }
    double freq_ghz() const override
    {
        return model_.params().freq_ghz;
    }
    proto::CostSink *host_cost_sink() override { return &model_; }
    const char *name() const override { return name_.c_str(); }

    proto::SoftwareCodecEngine engine() const { return engine_; }

  private:
    static const char *
    EngineSuffix(proto::SoftwareCodecEngine engine)
    {
        switch (engine) {
        case proto::SoftwareCodecEngine::kReference:
            return "+ref";
        case proto::SoftwareCodecEngine::kGenerated:
            return "+gen";
        case proto::SoftwareCodecEngine::kTable:
            break;
        }
        return "";
    }

    /// True when @p msg's pool has an emitted codec linked in;
    /// otherwise counts the tier downgrade and the op runs on the
    /// table engine (wire- and verdict-identical, just slower host
    /// wall-clock).
    bool
    UseGenerated(const proto::Message &msg)
    {
        if (proto::GetGeneratedCodec(msg.pool()) != nullptr)
            return true;
        ++generated_fallbacks_;
        return false;
    }

    cpu::CpuCostModel model_;
    proto::SoftwareCodecEngine engine_;
    std::string name_;
    uint64_t generated_fallbacks_ = 0;
};

/// The accelerator as a codec engine (one device per endpoint).
class AcceleratedBackend : public CodecBackend
{
  public:
    AcceleratedBackend(const proto::DescriptorPool &pool,
                       const accel::AccelConfig &config = {});

    std::vector<uint8_t> Serialize(const proto::Message &msg) override;
    size_t SerializeTo(const proto::Message &msg, uint8_t *buf,
                       size_t cap) override;
    StatusCode Deserialize(const uint8_t *data, size_t size,
                           proto::Message *msg) override;

    void
    SetParseLimits(const ParseLimits &limits) override
    {
        limits_ = limits;
        device_.deserializer().SetLimits(limits);
    }

    /// Attach a fault injector to the underlying device (nullptr
    /// detaches); injected unit kills surface as kAccelFault.
    void SetFaultInjector(sim::FaultInjector *injector)
    {
        device_.SetFaultInjector(injector);
    }

    /// Status of the most recent device operation (serialize or
    /// deserialize); kOk when it completed. Serialize paths return an
    /// empty buffer / 0 bytes on failure instead of aborting.
    StatusCode last_status() const override { return last_status_; }

    double codec_cycles() const override
    {
        return static_cast<double>(cycles_);
    }
    double accel_cycles() const override
    {
        return static_cast<double>(cycles_);
    }
    uint64_t accel_jobs() const override { return jobs_; }
    double accel_deser_cycles() const override
    {
        return static_cast<double>(deser_cycles_);
    }
    double accel_ser_cycles() const override
    {
        return static_cast<double>(ser_cycles_);
    }
    double freq_ghz() const override { return config_.freq_ghz; }
    accel::WatchdogStats watchdog_stats() const override
    {
        return device_.watchdog_stats();
    }
    const char *name() const override { return "riscv-boom-accel"; }

    CodecBackend *accel_engine() override { return this; }
    const accel::AccelConfig *accel_config() const override
    {
        return &config_;
    }
    void ScrubDeviceState() override { device_.ScrubUnits(); }

    accel::ProtoAccelerator &device() { return device_; }

  private:
    /// Run one device serialization; output stays in the ser arena.
    /// Returns nullptr (and sets last_status) when the device faulted.
    const accel::SerArena::Output *RunSerialize(const proto::Message &msg);

    const proto::DescriptorPool &pool_;
    accel::AccelConfig config_;
    sim::MemorySystem memory_;
    accel::ProtoAccelerator device_;
    proto::Arena adt_arena_;
    accel::AdtBuilder adts_;
    proto::Arena deser_arena_;
    accel::SerArena ser_arena_;
    uint64_t cycles_ = 0;
    uint64_t deser_cycles_ = 0;
    uint64_t ser_cycles_ = 0;
    uint64_t jobs_ = 0;
    StatusCode last_status_ = StatusCode::kOk;
};

/**
 * Degradation-aware engine: the accelerator is primary, the software
 * table codec is the fallback. An op falls back when the device faults
 * mid-op (injected unit kill — the op is transparently re-run in
 * software) or when the accelerator path is forced off (saturation
 * shedding via SetForceSoftware). Deterministic parse rejections do NOT
 * fall back: all engines keep identical accept/reject verdicts, so a
 * software retry of malformed input would only burn cycles to reach the
 * same answer.
 *
 * Cycle accounting: codec_cycles() is reported in the accelerator's
 * clock domain; software-fallback cycles are converted by frequency
 * ratio so ns equivalence holds across the mix.
 */
class HybridCodecBackend : public CodecBackend
{
  public:
    HybridCodecBackend(std::unique_ptr<AcceleratedBackend> accel,
                       std::unique_ptr<SoftwareBackend> software)
        : accel_(std::move(accel)), software_(std::move(software))
    {}

    std::vector<uint8_t> Serialize(const proto::Message &msg) override;
    size_t SerializeTo(const proto::Message &msg, uint8_t *buf,
                       size_t cap) override;
    StatusCode Deserialize(const uint8_t *data, size_t size,
                           proto::Message *msg) override;

    void
    SetParseLimits(const ParseLimits &limits) override
    {
        limits_ = limits;
        accel_->SetParseLimits(limits);
        software_->SetParseLimits(limits);
    }

    void SetForceSoftware(bool force) override
    {
        force_software_ = force;
    }
    bool force_software() const { return force_software_; }

    FallbackCounters fallback_counters() const override
    {
        return fallbacks_;
    }

    uint64_t generated_fallbacks() const override
    {
        return software_->generated_fallbacks();
    }

    StatusCode last_status() const override { return last_status_; }

    /// Software cycles converted into the accelerator clock domain, so
    /// cycles / freq_ghz() is the modeled time of the mixed execution.
    double
    codec_cycles() const override
    {
        return accel_->codec_cycles() +
               software_->codec_cycles() *
                   (accel_->freq_ghz() / software_->freq_ghz());
    }
    double accel_cycles() const override
    {
        return accel_->accel_cycles();
    }
    uint64_t accel_jobs() const override { return accel_->accel_jobs(); }
    double accel_deser_cycles() const override
    {
        return accel_->accel_deser_cycles();
    }
    double accel_ser_cycles() const override
    {
        return accel_->accel_ser_cycles();
    }
    double freq_ghz() const override { return accel_->freq_ghz(); }
    accel::WatchdogStats watchdog_stats() const override
    {
        return accel_->watchdog_stats();
    }
    /// Streams run on the hybrid's software half (the device FSU has
    /// no incremental mode), the same route forced fallback takes.
    std::unique_ptr<proto::StreamDecoder>
    CreateStreamDecoder(const proto::DescriptorPool &pool, int type,
                        const proto::StreamCodecLimits &limits,
                        proto::StreamSink *sink) override
    {
        return software_->CreateStreamDecoder(pool, type, limits, sink);
    }
    std::unique_ptr<proto::StreamEncoder>
    CreateStreamEncoder(const proto::StreamCodecLimits &limits) override
    {
        return software_->CreateStreamEncoder(limits);
    }

    /// Frame CRCs on the hybrid run on the host core (the fallback's
    /// CPU model prices them); only codec ops ride the device.
    proto::CostSink *host_cost_sink() override
    {
        return software_->host_cost_sink();
    }
    const char *name() const override { return "hybrid-accel-sw"; }

    CodecBackend *accel_engine() override { return accel_.get(); }
    const accel::AccelConfig *accel_config() const override
    {
        return accel_->accel_config();
    }
    void ScrubDeviceState() override { accel_->ScrubDeviceState(); }

    AcceleratedBackend &accel() { return *accel_; }
    SoftwareBackend &software() { return *software_; }

  private:
    std::unique_ptr<AcceleratedBackend> accel_;
    std::unique_ptr<SoftwareBackend> software_;
    FallbackCounters fallbacks_;
    bool force_software_ = false;
    StatusCode last_status_ = StatusCode::kOk;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_CODEC_BACKEND_H
