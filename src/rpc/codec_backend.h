/**
 * @file
 * Pluggable serialization backends for the RPC substrate.
 *
 * A CodecBackend turns Message objects into wire bytes and back while
 * accounting modeled time — either on a CPU cost model (the software
 * protobuf library on riscv-boom / Xeon) or on the protobuf
 * accelerator. Swapping the backend is the experiment of the paper:
 * same application, same RPC framing, different serialization engine.
 */
#ifndef PROTOACC_RPC_CODEC_BACKEND_H
#define PROTOACC_RPC_CODEC_BACKEND_H

#include <cstring>
#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "proto/codec_table.h"
#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::rpc {

/**
 * Abstract serialization engine with cycle accounting.
 */
class CodecBackend
{
  public:
    virtual ~CodecBackend() = default;

    /// Serialize @p msg; returns the wire bytes.
    virtual std::vector<uint8_t> Serialize(const proto::Message &msg) = 0;

    /**
     * Encoded size of @p msg. Charges no modeled cycles: SerializeTo
     * re-runs (and prices) the sizing pass itself, so a caller doing
     * SerializedSize + SerializeTo is charged exactly what Serialize
     * would have been.
     */
    virtual size_t
    SerializedSize(const proto::Message &msg)
    {
        return proto::ByteSize(msg, nullptr);
    }

    /**
     * Serialize @p msg directly into [buf, buf+cap) — the zero-copy
     * response path. Returns bytes written, or 0 when @p cap is
     * insufficient. The base implementation falls back to the copying
     * Serialize().
     */
    virtual size_t
    SerializeTo(const proto::Message &msg, uint8_t *buf, size_t cap)
    {
        const std::vector<uint8_t> out = Serialize(msg);
        if (out.size() > cap)
            return 0;
        std::memcpy(buf, out.data(), out.size());
        return out.size();
    }

    /// Parse @p size bytes at @p data into @p msg; false on error.
    virtual bool Deserialize(const uint8_t *data, size_t size,
                             proto::Message *msg) = 0;

    /// Modeled cycles spent in serialization/deserialization so far.
    virtual double codec_cycles() const = 0;

    /// Clock for converting cycles to time.
    virtual double freq_ghz() const = 0;

    virtual const char *name() const = 0;
};

/**
 * Software codec on a CPU cost model.
 *
 * Runs the table-driven fast path (proto/codec_table.h): the first
 * Serialize/Deserialize against a pool compiles that pool's codec
 * tables, which are cached on the pool and shared with every other user
 * (figure benches, codec_gbench, other backends on the same pool). The
 * pool-taking constructor pre-compiles them so the first RPC does not
 * pay the one-time cost — use it when a pool is shared across threads,
 * since lazy table construction is not thread-safe.
 */
class SoftwareBackend : public CodecBackend
{
  public:
    explicit SoftwareBackend(const cpu::CpuParams &params)
        : model_(params)
    {}

    SoftwareBackend(const cpu::CpuParams &params,
                    const proto::DescriptorPool &pool)
        : model_(params)
    {
        proto::GetCodecTables(pool);
    }

    std::vector<uint8_t>
    Serialize(const proto::Message &msg) override
    {
        return proto::Serialize(msg, &model_);
    }

    size_t
    SerializeTo(const proto::Message &msg, uint8_t *buf,
                size_t cap) override
    {
        return proto::SerializeToBuffer(msg, buf, cap, &model_);
    }

    bool
    Deserialize(const uint8_t *data, size_t size,
                proto::Message *msg) override
    {
        return proto::ParseFromBuffer(data, size, msg, &model_) ==
               proto::ParseStatus::kOk;
    }

    double codec_cycles() const override { return model_.cycles(); }
    double freq_ghz() const override
    {
        return model_.params().freq_ghz;
    }
    const char *name() const override
    {
        return model_.params().name.c_str();
    }

  private:
    cpu::CpuCostModel model_;
};

/// The accelerator as a codec engine (one device per endpoint).
class AcceleratedBackend : public CodecBackend
{
  public:
    AcceleratedBackend(const proto::DescriptorPool &pool,
                       const accel::AccelConfig &config = {});

    std::vector<uint8_t> Serialize(const proto::Message &msg) override;
    size_t SerializeTo(const proto::Message &msg, uint8_t *buf,
                       size_t cap) override;
    bool Deserialize(const uint8_t *data, size_t size,
                     proto::Message *msg) override;

    double codec_cycles() const override
    {
        return static_cast<double>(cycles_);
    }
    double freq_ghz() const override { return config_.freq_ghz; }
    const char *name() const override { return "riscv-boom-accel"; }

  private:
    /// Run one device serialization; output stays in the ser arena.
    const accel::SerArena::Output &RunSerialize(const proto::Message &msg);

    const proto::DescriptorPool &pool_;
    accel::AccelConfig config_;
    sim::MemorySystem memory_;
    accel::ProtoAccelerator device_;
    proto::Arena adt_arena_;
    accel::AdtBuilder adts_;
    proto::Arena deser_arena_;
    accel::SerArena ser_arena_;
    uint64_t cycles_ = 0;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_CODEC_BACKEND_H
