#include "rpc/server_runtime.h"

#include <algorithm>
#include <map>
#include <cmath>

#include "proto/codec_table.h"

namespace protoacc::rpc {

RpcServerRuntime::RpcServerRuntime(const proto::DescriptorPool *pool,
                                   const BackendFactory &factory,
                                   const RuntimeConfig &config)
    : pool_(pool), config_(config)
{
    PA_CHECK_GE(config_.num_workers, 1u);
    PA_CHECK_GE(config_.max_batch, 1u);
    // Compile the pool's codec tables before any worker thread exists:
    // lazy first-use compilation is not thread-safe, and pre-compiling
    // here makes every later access a read of immutable state.
    proto::GetCodecTables(*pool_);
    if (config_.dedup_capacity > 0)
        dedup_ = std::make_unique<DedupCache>(DedupConfig{
            config_.dedup_capacity, config_.dedup_retry_horizon});
    // The tenant layer engages only when some tenant feature is
    // configured; otherwise tenants_ stays null and Submit runs the
    // exact pre-tenant pipeline.
    if (!config_.tenants.empty() || config_.breaker.enabled ||
        config_.brownout.start_wait_ns > 0 ||
        config_.dwrr_quantum_cycles > 0)
        tenants_ = std::make_unique<TenantTable>(
            config_.tenants, config_.breaker, config_.brownout);
    if (tenants_ != nullptr && config_.dwrr_quantum_cycles > 0 &&
        config_.shared_accel != nullptr)
        arbiter_ = std::make_unique<DwrrArbiter>(
            tenants_.get(), config_.dwrr_quantum_cycles);
    if (config_.health.enabled && config_.shared_accel != nullptr) {
        const uint32_t units = config_.shared_accel->config().num_units;
        shared_unit_health_.reserve(units);
        for (uint32_t u = 0; u < units; ++u)
            shared_unit_health_.emplace_back(config_.health);
    }
    workers_.reserve(config_.num_workers);
    for (uint32_t i = 0; i < config_.num_workers; ++i) {
        workers_.push_back(
            std::make_unique<Worker>(pool_, factory(i), config_.health));
        Worker &w = *workers_.back();
        w.index = i;
        w.server.mutable_backend().SetParseLimits(config_.parse_limits);
        w.server.SetDedupCache(dedup_.get());
        w.server.SetSchemaRegistry(config_.schema_registry);
        w.server.set_schema_fingerprint(config_.schema_fingerprint);
        if (config_.offload.enabled) {
            // Offload datapath: the frame engine fronts this worker's
            // shard, so egress framing/CRC/dedup work accrues device
            // cycles — the host cost sink sees none of it.
            w.frame_engine =
                accel::FrameEngine(config_.offload.frame_timing);
            w.replies.SetCostSink(&w.frame_engine);
        } else {
            // Response-frame CRCs are host-side work: price them on the
            // worker's core model (nullptr for pure-accel backends,
            // whose device computes them inline with the streaming
            // serialize).
            w.replies.SetCostSink(
                w.server.mutable_backend().host_cost_sink());
        }
        w.est_call_ns.store(config_.est_call_ns,
                            std::memory_order_relaxed);
    }
}

RpcServerRuntime::~RpcServerRuntime() { Shutdown(); }

void
RpcServerRuntime::RegisterMethod(uint16_t method_id, int request_type,
                                 int response_type,
                                 const Handler &handler)
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    PA_CHECK(!started_);
    // The first registered request type doubles as the self-test
    // vector source, so golden vectors exercise the ADTs live traffic
    // actually uses.
    if (self_tester_ == nullptr)
        self_tester_ = std::make_unique<SelfTester>(pool_, request_type);
    for (auto &w : workers_)
        w->server.RegisterMethod(method_id, request_type, response_type,
                                 handler);
}

void
RpcServerRuntime::Start()
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    PA_CHECK(!started_);
    started_ = true;
    for (auto &w : workers_) {
        bool dead;
        {
            std::lock_guard<std::mutex> wl(w->mu);
            dead = w->dead;
            w->stop = false;  // re-arm after a prior Shutdown()
        }
        // Crashed workers never come back: a Shutdown() -> Start()
        // cycle resumes only the survivors (counters intact).
        if (dead)
            continue;
        w->thread = std::thread([this, worker = w.get()] {
            WorkerLoop(worker);
        });
    }
}

RpcServerRuntime::Worker *
RpcServerRuntime::PickWorker(uint32_t call_id)
{
    const size_t n = workers_.size();
    const size_t home = call_id % n;
    for (size_t i = 0; i < n; ++i) {
        Worker *w = workers_[(home + i) % n].get();
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->dead)
            return w;
    }
    return nullptr;
}

StatusCode
RpcServerRuntime::Submit(const FrameHeader &header,
                         const uint8_t *payload, double arrival_ns)
{
    // v4 stream frames route to the attached streaming endpoint inline
    // (its state machine is ordered and it runs its own admission:
    // announce bound, memory budgets, brownout). Without an endpoint
    // the kinds are understood but unserved.
    if (IsStreamKind(header.kind)) {
        if (stream_receiver_ == nullptr)
            return StatusCode::kUnimplemented;
        Frame frame;
        frame.header = header;
        frame.payload = payload;
        std::lock_guard<std::mutex> lock(stream_mu_);
        ++stream_frames_;
        return stream_receiver_->HandleFrame(frame, &stream_replies_,
                                             arrival_ns);
    }
    // Tenant admission pipeline (breaker → bucket → per-tenant wait →
    // brownout) runs before worker selection; null tenants_ is the
    // legacy fast path. Every PreAdmit is paired with exactly one
    // CommitAdmission so breaker windows count each submission once.
    AdmitTicket ticket;
    if (tenants_ != nullptr) {
        double pressure_ns = 0;
        if (tenants_->brownout().start_wait_ns > 0) {
            // Global backlog pressure: mean queued calls per worker
            // times the slowest worker's service estimate.
            double max_est = 0;
            for (const auto &w : workers_)
                max_est = std::max(
                    max_est,
                    w->est_call_ns.load(std::memory_order_relaxed));
            pressure_ns =
                static_cast<double>(total_pending_.load(
                    std::memory_order_relaxed)) /
                static_cast<double>(workers_.size()) * max_est;
        }
        ticket = tenants_->PreAdmit(header.tenant_id, arrival_ns,
                                    pressure_ns);
        if (ticket.outcome != AdmitOutcome::kAdmitted) {
            tenants_->CommitAdmission(header.tenant_id, ticket, false);
            return StatusCode::kOverloaded;
        }
    }
    // Legal before Start(): frames queue in the inboxes and the workers
    // pick them up once spawned (a pre-loaded backlog drains in exact
    // max_batch chunks, which keeps batch boundaries deterministic).
    // A worker can die between PickWorker and the enqueue below; the
    // frame then lands in a dead inbox, which Drain() harvests and
    // re-dispatches — enqueueing is never lossy, just possibly late.
    Worker *wp = PickWorker(header.call_id);
    if (wp == nullptr) {
        if (tenants_ != nullptr)
            tenants_->CommitAdmission(header.tenant_id, ticket, true);
        return StatusCode::kUnavailable;  // every worker has crashed
    }
    Worker &w = *wp;
    bool worker_shed = false;
    {
        std::lock_guard<std::mutex> lock(w.mu);
        PA_CHECK(!w.stop);
        if (config_.admission_max_wait_ns > 0) {
            // Shed when the modeled backlog wait — queued calls times
            // the worker's per-call service estimate — already exceeds
            // the bound; admitting more only makes every queued call
            // later.
            const double est =
                w.est_call_ns.load(std::memory_order_relaxed);
            const double wait_ns =
                static_cast<double>(w.pending) * est;
            if (wait_ns > config_.admission_max_wait_ns) {
                ++w.shed;
                worker_shed = true;
            }
        }
        if (!worker_shed) {
            OwnedFrame frame;
            frame.header = header;
            if (header.payload_bytes > 0)
                frame.payload.assign(payload,
                                     payload + header.payload_bytes);
            w.inbox.push_back(std::move(frame));
            ++w.pending;
        }
    }
    if (worker_shed) {
        if (tenants_ != nullptr)
            tenants_->CommitAdmission(header.tenant_id, ticket, true);
        return StatusCode::kOverloaded;
    }
    total_pending_.fetch_add(1, std::memory_order_relaxed);
    if (tenants_ != nullptr)
        tenants_->CommitAdmission(header.tenant_id, ticket, false);
    w.cv.notify_all();
    return StatusCode::kOk;
}

StatusCode
RpcServerRuntime::SubmitFromStream(const FrameBuffer &ingress,
                                   size_t *offset, double arrival_ns)
{
    StatusCode scan = StatusCode::kOk;
    const std::optional<Frame> frame = ingress.Next(offset, &scan);
    if (frame.has_value())
        return Submit(frame->header, frame->payload, arrival_ns);
    if (scan == StatusCode::kDataLoss) {
        // Detected in-flight corruption: count the reject; Next already
        // advanced past the bad frame, so the scan resumes behind it.
        crc_rejects_.fetch_add(1, std::memory_order_relaxed);
        return scan;
    }
    if (scan == StatusCode::kUnimplemented) {
        // Unknown wire version: the frame length cannot be trusted, so
        // framing cannot be resynchronized past it.
        *offset = ingress.bytes();
        return scan;
    }
    if (*offset < ingress.bytes()) {
        // Truncated remainder (a frame lost its tail in the channel).
        *offset = ingress.bytes();
        return StatusCode::kUnavailable;
    }
    return StatusCode::kOk;  // stream exhausted
}

void
RpcServerRuntime::Drain()
{
    {
        std::lock_guard<std::mutex> lock(lifecycle_mu_);
        PA_CHECK(started_);
    }
    // A worker dying mid-drain leaves its un-acked frames in a dead
    // inbox; re-dispatching them can itself land on a worker that later
    // dies, so loop until a full pass moves nothing.
    for (;;) {
        for (auto &w : workers_) {
            std::unique_lock<std::mutex> lock(w->mu);
            w->cv.wait(lock,
                       [&w] { return w->pending == 0 || w->dead; });
        }
        if (RedispatchStrandedFrames() == 0)
            break;
    }
    ReplayAcceleratorTimeline();
    // Fold the workers' measured per-tenant service costs into the
    // tenant EWMAs, in worker-index order (a deterministic fold
    // sequence — the EWMA is order-sensitive).
    if (tenants_ != nullptr) {
        for (auto &w : workers_) {
            for (const auto &[tenant, acc] : w->tenant_service)
                if (acc.second > 0)
                    tenants_->FoldServiceEstimate(
                        tenant,
                        acc.first / static_cast<double>(acc.second));
            w->tenant_service.clear();
        }
    }
}

size_t
RpcServerRuntime::RedispatchStrandedFrames()
{
    // Runs only from Drain() after every worker is quiescent or dead.
    // Harvest in worker-index order, inbox order preserved, and target
    // selection is deterministic (PickWorker) — so the re-dispatch
    // schedule depends only on the kill events, never on thread timing.
    std::vector<OwnedFrame> stranded;
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->dead || w->inbox.empty())
            continue;
        const size_t harvested = w->inbox.size();
        while (!w->inbox.empty()) {
            stranded.push_back(std::move(w->inbox.front()));
            w->inbox.pop_front();
        }
        PA_CHECK_GE(w->pending, harvested);
        w->pending -= harvested;
    }
    // Group the stranded frames per surviving target and publish each
    // target's group in one locked push with a single wakeup at the
    // end. Pushing frame-by-frame would let a survivor wake mid-
    // redispatch and split the group into timing-dependent batches —
    // harmless on the software path (per-call costs only), but a
    // shared-accelerator doorbell batch's cost depends on its
    // composition, so the split would leak host thread timing into the
    // modeled numbers.
    size_t moved = 0;
    std::vector<std::vector<OwnedFrame>> regrouped(workers_.size());
    for (OwnedFrame &f : stranded) {
        Worker *target = PickWorker(f.header.call_id);
        if (target == nullptr) {
            // No survivors: the call is lost; the client's retry needs
            // a restarted runtime. It will never execute, so it leaves
            // the pending gauges now.
            total_pending_.fetch_sub(1, std::memory_order_relaxed);
            if (tenants_ != nullptr)
                tenants_->OnWorkerFinished(f.header.tenant_id);
            continue;
        }
        regrouped[target->index].push_back(std::move(f));
        ++moved;
    }
    for (size_t i = 0; i < regrouped.size(); ++i) {
        if (regrouped[i].empty())
            continue;
        Worker *w = workers_[i].get();
        {
            std::lock_guard<std::mutex> lock(w->mu);
            for (OwnedFrame &f : regrouped[i]) {
                w->inbox.push_back(std::move(f));
                ++w->pending;
            }
        }
        w->cv.notify_all();
    }
    redispatched_frames_ += moved;
    return moved;
}

void
RpcServerRuntime::Shutdown()
{
    // lifecycle_mu_ serializes concurrent Shutdown() calls (and a
    // Shutdown racing destruction): the loser of the race observes
    // started_ == false and returns — Shutdown is idempotent.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_)
        return;
    for (auto &w : workers_) {
        {
            std::lock_guard<std::mutex> wl(w->mu);
            w->stop = true;
        }
        w->cv.notify_all();
    }
    for (auto &w : workers_)
        if (w->thread.joinable())
            w->thread.join();
    // Re-arm stop so frames may again be pre-loaded before the next
    // Start() — the windowed preload-submit pattern open-loop benches
    // use (Submit asserts !stop).
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> wl(w->mu);
        w->stop = false;
    }
    started_ = false;
}

uint32_t
RpcServerRuntime::num_workers() const
{
    return static_cast<uint32_t>(workers_.size());
}

const FrameBuffer &
RpcServerRuntime::replies(uint32_t worker) const
{
    PA_CHECK_LT(worker, workers_.size());
    return workers_[worker]->replies;
}

RuntimeSnapshot
RpcServerRuntime::Snapshot() const
{
    RuntimeSnapshot snap;
    snap.arena_constructions = workers_.size();
    const auto aggregate_health = [&snap](const HealthSnapshot &hs) {
        snap.health_quarantines += hs.quarantines;
        snap.health_scrubs_completed += hs.scrubs_completed;
        snap.health_scrub_cycles += hs.scrub_cycles;
        snap.health_self_tests_passed += hs.self_tests_passed;
        snap.health_self_tests_failed += hs.self_tests_failed;
        snap.health_self_test_cycles += hs.self_test_cycles;
        snap.health_reintegrations += hs.reintegrations;
        if (hs.fenced_from_traffic)
            ++snap.health_fenced_domains;
    };
    for (const auto &w : workers_) {
        WorkerSnapshot ws;
        ws.calls = w->calls;
        ws.failures = w->failures;
        ws.batches = w->batches;
        ws.failures_by_code = w->failures_by_code;
        ws.deadline_exceeded = w->deadline_exceeded;
        {
            std::lock_guard<std::mutex> lock(w->mu);
            ws.shed = w->shed;
            ws.crashed = w->dead;
        }
        const FallbackCounters fb =
            w->server.backend().fallback_counters();
        ws.fallback_accel_fault = fb.accel_fault;
        ws.fallback_forced = fb.forced;
        ws.generated_fallbacks =
            w->server.backend().generated_fallbacks();
        ws.schema_rejects = w->server.schema_rejects();
        const accel::WatchdogStats wd =
            w->server.backend().watchdog_stats();
        ws.watchdog_resets = wd.resets;
        ws.watchdog_replayed_jobs = wd.replayed_jobs;
        ws.device_health = w->health.snapshot();
        aggregate_health(ws.device_health);
        ws.vclock_ns = w->vclock_ns;
        ws.codec_cycles = w->server.backend().codec_cycles();
        ws.accel_codec_cycles = w->server.backend().accel_deser_cycles() +
                                w->server.backend().accel_ser_cycles();
        ws.arena_blocks = w->server.arena().block_count();
        ws.arena_bytes_reserved = w->server.arena().bytes_reserved();
        ws.reply_payload_copies = w->replies.payload_copies();
        ws.frame_engine_cycles = w->frame_engine.cycles();
        ws.frame_engine = w->frame_engine.stats();
        snap.offload_frame_headers += ws.frame_engine.frame_headers;
        snap.offload_crc_ops += ws.frame_engine.crc_ops;
        snap.offload_dedup_probes += ws.frame_engine.dedup_probes;
        snap.offload_error_frames += ws.frame_engine.error_frames;
        snap.offload_frame_cycles += ws.frame_engine_cycles;
        if (ws.crashed)
            ++snap.workers_crashed;
        snap.watchdog_resets += ws.watchdog_resets;
        snap.watchdog_replayed_jobs += ws.watchdog_replayed_jobs;
        snap.calls += ws.calls;
        snap.failures += ws.failures;
        for (size_t i = 0; i < kNumStatusCodes; ++i)
            snap.failures_by_code[i] += ws.failures_by_code[i];
        snap.shed += ws.shed;
        snap.deadline_exceeded += ws.deadline_exceeded;
        snap.fallback_accel_fault += ws.fallback_accel_fault;
        snap.fallback_forced += ws.fallback_forced;
        snap.generated_fallbacks += ws.generated_fallbacks;
        snap.schema_rejects += ws.schema_rejects;
        snap.modeled_span_ns =
            std::max(snap.modeled_span_ns, ws.vclock_ns);
        snap.workers.push_back(ws);
    }
    for (const DeviceHealth &h : shared_unit_health_) {
        snap.shared_units.push_back(h.snapshot());
        aggregate_health(snap.shared_units.back());
    }
    if (dedup_ != nullptr) {
        const DedupCache::Stats ds = dedup_->stats();
        snap.dedup_hits = ds.hits;
        snap.dedup_insertions = ds.insertions;
        snap.dedup_evictions = ds.evictions;
        snap.dedup_unsafe_evictions = ds.unsafe_evictions;
        snap.dedup_expired = ds.expired;
        snap.dedup_restored = ds.restored;
    }
    snap.crc_rejects = crc_rejects_.load(std::memory_order_relaxed);
    snap.redispatched_frames = redispatched_frames_;
    // Peak-memory high-water mark: worker arena reservations (arenas
    // only grow, so bytes_reserved is already a high-water mark) plus
    // the stream-buffer gauge peak.
    size_t arena_total = 0;
    for (const WorkerSnapshot &ws : snap.workers)
        arena_total += ws.arena_bytes_reserved;
    snap.stream_buffer_bytes = stream_gauge_.current_bytes();
    snap.stream_buffer_peak_bytes = stream_gauge_.peak_bytes();
    snap.peak_memory_bytes = arena_total + snap.stream_buffer_peak_bytes;
    {
        std::lock_guard<std::mutex> lock(stream_mu_);
        snap.stream_frames = stream_frames_;
    }
    if (config_.shared_accel != nullptr)
        snap.watchdog_resets +=
            config_.shared_accel->stats().watchdog_resets;
    if (tenants_ != nullptr) {
        snap.tenants = tenants_->Snapshot();
        // The aggregate shed counter spans every admission layer:
        // worker-level sheds are already in the workers' counters, the
        // tenant-layer sheds (bucket/wait/brownout/breaker) live only
        // in the tenant counters.
        for (const TenantSnapshot &t : snap.tenants)
            snap.shed += t.counters.shed_bucket +
                         t.counters.shed_wait +
                         t.counters.shed_brownout +
                         t.counters.shed_breaker;
    }
    return snap;
}

void
RpcServerRuntime::AttachStreamReceiver(StreamReceiver *receiver)
{
    std::lock_guard<std::mutex> lock(stream_mu_);
    stream_receiver_ = receiver;
    if (receiver == nullptr)
        return;
    // Budget enforcement and peak-memory accounting share one gauge;
    // completed-stream responses replay from the runtime's dedup cache
    // (when one is configured) for exactly-once across lost replies.
    receiver->SetGauge(&stream_gauge_);
    if (dedup_ != nullptr)
        receiver->SetDedupCache(dedup_.get());
    if (tenants_ != nullptr)
        receiver->SetTenantTable(tenants_.get());
}

void
RpcServerRuntime::AdvanceStreamTime(double now_ns)
{
    std::lock_guard<std::mutex> lock(stream_mu_);
    if (stream_receiver_ != nullptr)
        stream_receiver_->AdvanceTime(now_ns, &stream_replies_);
}

void
RpcServerRuntime::ReportDeviceIncident(uint32_t worker,
                                       IncidentKind kind)
{
    PA_CHECK_LT(worker, workers_.size());
    PA_CHECK_LT(static_cast<size_t>(kind), kNumIncidentKinds);
    workers_[worker]
        ->reported_incidents[static_cast<size_t>(kind)]
        .fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint8_t>
RpcServerRuntime::SerializeDedup() const
{
    return dedup_ != nullptr ? dedup_->Serialize()
                             : std::vector<uint8_t>{};
}

bool
RpcServerRuntime::RestoreDedup(const uint8_t *data, size_t size)
{
    return dedup_ != nullptr && dedup_->Deserialize(data, size);
}

std::vector<double>
RpcServerRuntime::TakeLatencies()
{
    std::vector<double> all;
    for (auto &w : workers_) {
        all.reserve(all.size() + w->call_records.size());
        for (const CallRecord &r : w->call_records)
            all.push_back(r.latency_ns);
        w->call_records.clear();
    }
    return all;
}

std::vector<CallRecord>
RpcServerRuntime::TakeCallRecords()
{
    std::vector<CallRecord> all;
    for (auto &w : workers_) {
        all.insert(all.end(), w->call_records.begin(),
                   w->call_records.end());
        w->call_records.clear();
    }
    return all;
}

void
RpcServerRuntime::SetExecObserver(
    std::function<void(uint16_t tenant, uint64_t key)> observer)
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    PA_CHECK(!started_);
    for (auto &w : workers_)
        w->server.SetExecObserver(observer);
}

void
RpcServerRuntime::WorkerLoop(Worker *w)
{
    std::vector<OwnedFrame> batch;
    for (;;) {
        size_t backlog = 0;
        {
            std::unique_lock<std::mutex> lock(w->mu);
            w->cv.wait(lock,
                       [w] { return w->stop || !w->inbox.empty(); });
            if (w->inbox.empty())
                return;  // stop requested and fully drained
            if (config_.priority_batching && tenants_ != nullptr &&
                w->inbox.size() > 1) {
                // Stable sort: high-priority tenants jump the queue,
                // FIFO order survives within a priority tier. Sorting
                // the inbox itself (not just the grab) keeps the kill
                // path's invariant shape — the stranded set is still a
                // contiguous suffix of the (now grab-order) inbox.
                // Priorities are cached per distinct tenant so the
                // comparator never takes the table mutex.
                std::map<uint16_t, uint32_t> prio;
                for (const OwnedFrame &f : w->inbox)
                    if (prio.find(f.header.tenant_id) == prio.end())
                        prio[f.header.tenant_id] =
                            tenants_->PriorityOf(f.header.tenant_id);
                std::stable_sort(
                    w->inbox.begin(), w->inbox.end(),
                    [&prio](const OwnedFrame &a, const OwnedFrame &b) {
                        return prio.find(a.header.tenant_id)->second >
                               prio.find(b.header.tenant_id)->second;
                    });
            }
            const size_t n = std::min<size_t>(config_.max_batch,
                                              w->inbox.size());
            batch.clear();
            batch.reserve(n);
            for (size_t i = 0; i < n; ++i) {
                batch.push_back(std::move(w->inbox.front()));
                w->inbox.pop_front();
            }
            backlog = w->inbox.size();
        }

        const double cycles_before =
            w->server.backend().codec_cycles();
        bool killed = false;
        const size_t executed =
            ProcessBatch(w, &batch, backlog, &killed);

        if (killed) {
            // An injected crash killed this worker mid-batch:
            // acknowledge only the executed prefix, return the
            // unexecuted tail to the inbox front (original order) for
            // Drain() to re-dispatch, and exit. The stranded set is
            // always a submission-order suffix, independent of where
            // the batch boundary happened to fall — that is what keeps
            // recovery deterministic.
            {
                std::lock_guard<std::mutex> lock(w->mu);
                PA_CHECK_GE(w->pending, executed);
                w->pending -= executed;
                for (size_t i = batch.size(); i > executed; --i)
                    w->inbox.push_front(std::move(batch[i - 1]));
                w->dead = true;
            }
            total_pending_.fetch_sub(executed,
                                     std::memory_order_relaxed);
            w->cv.notify_all();
            return;
        }

        // Refresh the admission-control estimate from this batch's
        // measured codec time (service only; queueing is what the
        // estimate predicts, so it must not feed back into itself).
        if (!batch.empty()) {
            const double batch_ns =
                (w->server.backend().codec_cycles() - cycles_before) /
                    w->server.backend().freq_ghz() +
                config_.modeled_handler_ns *
                    static_cast<double>(batch.size());
            const double per_call =
                batch_ns / static_cast<double>(batch.size());
            const double prev =
                w->est_call_ns.load(std::memory_order_relaxed);
            w->est_call_ns.store(0.8 * prev + 0.2 * per_call,
                                 std::memory_order_relaxed);
        }

        {
            std::lock_guard<std::mutex> lock(w->mu);
            PA_CHECK_GE(w->pending, batch.size());
            w->pending -= batch.size();
        }
        total_pending_.fetch_sub(batch.size(),
                                 std::memory_order_relaxed);
        w->cv.notify_all();
    }
}

bool
RpcServerRuntime::HealthPreBatch(Worker *w)
{
    if (!config_.health.enabled)
        return true;
    CodecBackend &backend = w->server.mutable_backend();
    if (backend.accel_engine() == nullptr)
        return true;  // nothing to health-manage
    // Complete a finished maintenance window first, so a reintegrated
    // device serves this very batch. Until the worker's timeline
    // passes the window the state machine stays in kScrubbing — an
    // interruption (crash, shutdown) leaves the domain fenced.
    if (w->maintenance_pending &&
        w->vclock_ns >= w->maintenance_done_ns) {
        w->maintenance_pending = false;
        w->health.CompleteScrub(w->maintenance_scrub);
        const HealthState verdict = w->health.CompleteSelfTest(
            w->maintenance_test_passed, w->maintenance_test_cycles);
        if (verdict == HealthState::kProbation)
            w->health_fenced = false;  // back in service, reduced trust
        else if (verdict == HealthState::kQuarantined)
            QuarantineWorkerDevice(w);  // another scrub + test round
        // kFenced: permanently out; health_fenced stays true and the
        // worker serves on the software codec from here on.
    }
    // Externally attributed incidents (e.g. client-side CRC rejects of
    // this worker's responses).
    bool quarantine = false;
    for (size_t k = 0; k < kNumIncidentKinds; ++k) {
        uint64_t n = w->reported_incidents[k].exchange(
            0, std::memory_order_relaxed);
        while (n-- > 0)
            quarantine |=
                w->health.OnIncident(static_cast<IncidentKind>(k));
    }
    if (quarantine && !w->health_fenced)
        QuarantineWorkerDevice(w);
    return !w->health_fenced;
}

void
RpcServerRuntime::QuarantineWorkerDevice(Worker *w)
{
    CodecBackend &backend = w->server.mutable_backend();
    CodecBackend *engine = backend.accel_engine();
    PA_CHECK(engine != nullptr);
    w->health_fenced = true;
    w->health.BeginScrub();
    // Functional scrub: queued jobs are dropped and every piece of
    // cross-request unit state (ADT response buffers, pipeline
    // context) is cleared — request A's bytes cannot reach request B
    // through the device.
    backend.ScrubDeviceState();
    const accel::AccelConfig *accel_config = backend.accel_config();
    w->maintenance_scrub =
        accel_config != nullptr
            ? ComputeScrubCost(*accel_config, config_.health)
            : ComputeScrubCost(config_.health);
    // The golden vectors run through the device engine now (the
    // functional verdict — a device that corrupts data or keeps
    // faulting fails), but the modeled time is charged as a fenced
    // maintenance window on the worker's timeline: live batches run on
    // the software codec until the window passes.
    uint64_t test_cycles = 0;
    bool passed = false;
    if (self_tester_ != nullptr)
        passed = self_tester_->Run(
            engine, config_.health.self_test_vectors, &test_cycles);
    w->maintenance_test_passed = passed;
    w->maintenance_test_cycles = test_cycles;
    const double window_ns =
        static_cast<double>(w->maintenance_scrub.total() + test_cycles) /
        engine->freq_ghz();
    w->maintenance_done_ns = w->vclock_ns + window_ns;
    w->maintenance_pending = true;
}

void
RpcServerRuntime::HealthPostBatch(Worker *w, size_t executed)
{
    if (!config_.health.enabled)
        return;
    CodecBackend &backend = w->server.mutable_backend();
    if (backend.accel_engine() == nullptr)
        return;
    const uint64_t wd = backend.watchdog_stats().resets;
    const uint64_t faults = backend.fallback_counters().accel_fault;
    const uint64_t wd_delta = wd - w->wd_resets_seen;
    const uint64_t fault_delta = faults - w->accel_faults_seen;
    w->wd_resets_seen = wd;
    w->accel_faults_seen = faults;
    bool quarantine = false;
    for (uint64_t i = 0; i < wd_delta; ++i)
        quarantine |= w->health.OnIncident(IncidentKind::kWatchdogReset);
    for (uint64_t i = 0; i < fault_delta; ++i)
        quarantine |= w->health.OnIncident(IncidentKind::kUnitFault);
    // Clean calls say nothing about a fenced device (they ran on the
    // software codec), so successes only count while in service.
    if (!w->health_fenced)
        for (uint64_t i = wd_delta + fault_delta; i < executed; ++i)
            w->health.OnSuccess();
    if (quarantine && !w->health_fenced)
        QuarantineWorkerDevice(w);
}

size_t
RpcServerRuntime::ProcessBatch(Worker *w,
                               std::vector<OwnedFrame> *batch,
                               size_t backlog, bool *killed)
{
    CodecBackend &backend = w->server.mutable_backend();
    const double freq_ghz = backend.freq_ghz();
    ++w->batches;
    if (!config_.record_replies)
        w->replies.clear();  // recycle the stream between batches

    // Ingress framing (header parse + CRC verify) happens once per
    // frame on the serving path: on the device frame engine when the
    // datapath is offloaded, on the worker's host model when the host
    // path is asked to price it (charge_ingress_framing), nowhere
    // otherwise (the pre-offload arrangement — the submitter's sink
    // priced the scan).
    accel::FrameEngine *engine =
        config_.offload.enabled ? &w->frame_engine : nullptr;
    proto::CostSink *ingress_sink =
        engine != nullptr ? static_cast<proto::CostSink *>(engine)
        : config_.charge_ingress_framing ? backend.host_cost_sink()
                                         : nullptr;

    const bool device_ok = HealthPreBatch(w);

    // Degraded-mode serving: a deep residual backlog means the
    // accelerator (shared and contended) is the bottleneck; serve this
    // batch on the worker's own core instead, and re-enable the device
    // once the backlog recovers. A health-fenced device forces the
    // same degradation until it reintegrates. No-op for non-hybrid
    // backends.
    const bool saturated =
        config_.saturation_fallback_backlog > 0 &&
        backlog > config_.saturation_fallback_backlog;
    if (config_.saturation_fallback_backlog > 0 ||
        (config_.health.enabled && backend.accel_engine() != nullptr))
        backend.SetForceSoftware(!device_ok || saturated);

    size_t executed = 0;
    if (config_.shared_accel == nullptr) {
        // Each worker is one core running the codec itself: a call's
        // modeled latency is its own service time; calls on one worker
        // run back-to-back on its timeline.
        for (OwnedFrame &f : *batch) {
            Frame frame;
            frame.header = f.header;
            frame.payload = f.payload.data();
            const double before = backend.codec_cycles();
            const double engine_before =
                engine != nullptr ? engine->cycles() : 0;
            if (ingress_sink != nullptr) {
                ingress_sink->OnFrameHeader();
                ingress_sink->OnCrc(FrameHeader::kCrcOffset +
                                    f.header.payload_bytes);
            }
            const StatusCode st =
                w->server.HandleFrame(frame, &w->replies);
            if (!StatusOk(st)) {
                ++w->failures;
                ++w->failures_by_code[static_cast<size_t>(st)];
                if (engine != nullptr)
                    engine->ChargeErrorFrame();
            }
            ++w->calls;
            double service_ns =
                (backend.codec_cycles() - before) / freq_ghz;
            // Frame-engine time shares the device clock domain; with a
            // private (non-shared) device the framing stage runs in
            // series with the codec on this worker's timeline.
            if (engine != nullptr)
                service_ns +=
                    (engine->cycles() - engine_before) / freq_ghz;
            const double latency_ns =
                service_ns + config_.modeled_handler_ns;
            if (config_.deadline_ns > 0 &&
                latency_ns > config_.deadline_ns)
                ++w->deadline_exceeded;
            w->call_records.push_back(
                CallRecord{f.header.tenant_id, latency_ns});
            if (tenants_ != nullptr) {
                tenants_->OnWorkerFinished(f.header.tenant_id);
                tenants_->OnCallLatency(f.header.tenant_id, latency_ns,
                                        config_.deadline_ns);
                auto &acc = w->tenant_service[f.header.tenant_id];
                acc.first += latency_ns;
                ++acc.second;
            }
            w->vclock_ns += latency_ns;
            ++executed;
            // The crash point is call-count based (deterministic): the
            // call that just completed committed its reply; everything
            // after it in the batch is stranded.
            if (config_.fault_injector != nullptr &&
                config_.fault_injector->ShouldKillWorker(w->index,
                                                         w->calls)) {
                *killed = true;
                break;
            }
        }
        HealthPostBatch(w, executed);
        return executed;
    }

    // Shared accelerator: the batch's (de)serialization jobs go through
    // the doorbell as one batch and complete together at the fence, so
    // every call in the batch observes the batch's queueing delay +
    // service time. Handler logic still runs per call on the worker's
    // core. Only the batch's measured service time is recorded here;
    // the shared timeline is replayed deterministically in Drain().
    // Work the backend routed to software (fault fallback or forced
    // degraded mode) is split out via accel_cycles()/accel_jobs() and
    // charged to the worker core, not the shared accelerator.
    //
    // With the tenant layer engaged, a mixed-tenant drain is first
    // reordered into per-tenant groups (stable within a group, groups
    // in first-appearance order — deterministic for a deterministic
    // submission sequence) and each group becomes its own AccelBatch,
    // so the replay arbiter can schedule and bill whole batches to one
    // tenant. The kill invariant survives the reorder: the stranded
    // set is always a suffix of the order the frames were *executed*
    // in, which is the reordered order fixed before execution starts.
    if (tenants_ != nullptr && batch->size() > 1) {
        std::vector<uint16_t> group_order;
        for (const OwnedFrame &f : *batch)
            if (std::find(group_order.begin(), group_order.end(),
                          f.header.tenant_id) == group_order.end())
                group_order.push_back(f.header.tenant_id);
        if (group_order.size() > 1) {
            std::vector<OwnedFrame> reordered;
            reordered.reserve(batch->size());
            for (const uint16_t tenant : group_order)
                for (OwnedFrame &f : *batch)
                    if (f.header.tenant_id == tenant)
                        reordered.push_back(std::move(f));
            *batch = std::move(reordered);
        }
    }
    size_t run_start = 0;
    while (run_start < batch->size() && !*killed) {
        size_t run_end = batch->size();
        if (tenants_ != nullptr) {
            run_end = run_start + 1;
            while (run_end < batch->size() &&
                   (*batch)[run_end].header.tenant_id ==
                       (*batch)[run_start].header.tenant_id)
                ++run_end;
        }
        const uint16_t run_tenant =
            (*batch)[run_start].header.tenant_id;
        const double cycles_before = backend.codec_cycles();
        const double accel_before = backend.accel_cycles();
        const double deser_before = backend.accel_deser_cycles();
        const double ser_before = backend.accel_ser_cycles();
        const double engine_before =
            engine != nullptr ? engine->cycles() : 0;
        const uint64_t jobs_before = backend.accel_jobs();
        uint64_t wire_bytes = 0;
        const size_t reply_bytes_before = w->replies.bytes();
        uint64_t failures = 0;
        size_t run_executed = 0;
        for (size_t i = run_start; i < run_end; ++i) {
            OwnedFrame &f = (*batch)[i];
            Frame frame;
            frame.header = f.header;
            frame.payload = f.payload.data();
            if (ingress_sink != nullptr) {
                ingress_sink->OnFrameHeader();
                ingress_sink->OnCrc(FrameHeader::kCrcOffset +
                                    f.header.payload_bytes);
            }
            wire_bytes +=
                FrameHeader::kWireBytes + f.header.payload_bytes;
            const StatusCode st =
                w->server.HandleFrame(frame, &w->replies);
            if (!StatusOk(st)) {
                ++failures;
                ++w->failures_by_code[static_cast<size_t>(st)];
                if (engine != nullptr)
                    engine->ChargeErrorFrame();
            }
            ++w->calls;
            ++run_executed;
            ++executed;
            if (tenants_ != nullptr)
                tenants_->OnWorkerFinished(f.header.tenant_id);
            if (config_.fault_injector != nullptr &&
                config_.fault_injector->ShouldKillWorker(w->index,
                                                         w->calls)) {
                *killed = true;
                break;  // crash mid-batch: record the partial run below
            }
        }
        const double total_cycles =
            backend.codec_cycles() - cycles_before;
        const double accel_cycles =
            backend.accel_cycles() - accel_before;
        AccelBatch record;
        record.jobs =
            static_cast<uint32_t>(backend.accel_jobs() - jobs_before);
        record.service_cycles =
            static_cast<uint64_t>(std::llround(accel_cycles));
        record.sw_ns = (total_cycles - accel_cycles) / freq_ghz;
        record.calls = static_cast<uint32_t>(run_executed);
        record.tenant = run_tenant;
        if (engine != nullptr) {
            // Offload descriptor for the pipelined replay: the
            // per-stage device split plus the batch's wire traffic
            // (requests in, replies out) for the PCIe DMA stage.
            record.deser_cycles = static_cast<uint64_t>(std::llround(
                backend.accel_deser_cycles() - deser_before));
            record.ser_cycles = static_cast<uint64_t>(
                std::llround(backend.accel_ser_cycles() - ser_before));
            record.frame_cycles = static_cast<uint64_t>(
                std::llround(engine->cycles() - engine_before));
            record.wire_bytes =
                wire_bytes + (w->replies.bytes() - reply_bytes_before);
        }
        if (run_executed > 0) {
            w->accel_batches.push_back(record);
            if (tenants_ != nullptr) {
                // Measured service (device + host residue + handler)
                // for the tenant's EWMA; queueing is added at replay
                // and must not feed the estimate.
                auto &acc = w->tenant_service[run_tenant];
                acc.first +=
                    total_cycles / freq_ghz +
                    config_.modeled_handler_ns *
                        static_cast<double>(run_executed);
                acc.second += run_executed;
            }
        }
        w->failures += failures;
        run_start = run_end;
    }
    HealthPostBatch(w, executed);
    return executed;
}

void
RpcServerRuntime::ObserveSharedUnit(uint32_t unit, bool watchdog_fired)
{
    DeviceHealth &health = shared_unit_health_[unit];
    accel::SharedAccelQueue *queue = config_.shared_accel;
    // Keep the arbiter's probation mark in lockstep with the health
    // state machine: a probationary unit competes for work with a
    // dispatch bias until its clean streak reintegrates it.
    const auto sync_probation = [&] {
        queue->SetUnitProbation(
            unit, health.state() == HealthState::kProbation);
    };
    if (!watchdog_fired) {
        health.OnSuccess();
        sync_probation();
        return;
    }
    if (!health.OnIncident(IncidentKind::kWatchdogReset)) {
        sync_probation();
        return;  // absorbed: the batch already replayed, as before
    }
    // Quarantine: the modeled scrub + self-test occupy the unit on the
    // shared timeline (BlockUnit), so live batches route around it —
    // the earliest-free dispatcher simply never picks it until the
    // maintenance window passes. The loop covers failing self-tests
    // re-queueing another scrub + test round, bounded by
    // max_self_test_failures before the unit is permanently fenced.
    for (;;) {
        health.BeginScrub();
        const ScrubCost cost = ComputeScrubCost(config_.health);
        const uint64_t test_cycles =
            static_cast<uint64_t>(config_.health.self_test_vectors) *
            config_.health.self_test_cycles_per_vector;
        queue->BlockUnit(unit, cost.total() + test_cycles);
        health.CompleteScrub(cost);
        // The verdict draws from the unit's fault source: an
        // intermittent fault likely samples clean and reintegrates; a
        // permanent one keeps failing until the unit is fenced.
        const bool passed =
            queue->SampleUnitFaults(
                unit, config_.health.self_test_vectors) == 0;
        const HealthState verdict =
            health.CompleteSelfTest(passed, test_cycles);
        if (verdict == HealthState::kProbation) {
            sync_probation();
            return;  // reintegrated with reduced trust
        }
        if (verdict == HealthState::kFenced) {
            // Fence from arbitration. Refused for the last in-service
            // unit, which then keeps serving as the sole survivor (the
            // snapshot still reports its kFenced history).
            queue->SetUnitFenced(unit, true);
            sync_probation();
            return;
        }
    }
}

void
RpcServerRuntime::ReplayAcceleratorTimeline()
{
    if (config_.shared_accel == nullptr)
        return;
    // Closed-loop event simulation over the recorded batches: each
    // worker's next batch arrives when its previous one completed; the
    // earliest worker clock submits next (ties break to the lowest
    // worker index). The replay order depends only on the recorded
    // batches, never on host thread scheduling, so contended modeled
    // numbers are deterministic. Runs while quiescent (Drain holds no
    // locks, and pending == 0 ordered the workers' writes before us).
    for (;;) {
        Worker *next = nullptr;
        for (auto &w : workers_) {
            if (w->replay_cursor >= w->accel_batches.size())
                continue;
            if (next == nullptr || w->vclock_ns < next->vclock_ns)
                next = w.get();
        }
        if (next == nullptr)
            break;
        // Weighted-fair arbitration: FIFO (earliest vclock) is the
        // base order, but when the earliest batch would queue behind
        // busy units — it arrives at or before the device's earliest
        // free cycle, so *someone* must wait — and batches from more
        // than one tenant are contending, the DWRR arbiter picks the
        // winner by weight instead. An uncontended batch (device idle
        // at its arrival) is never re-ordered: fairness costs nothing
        // when there is no queue.
        if (arbiter_ != nullptr) {
            const AccelBatch &head =
                next->accel_batches[next->replay_cursor];
            const uint64_t min_arrival =
                static_cast<uint64_t>(std::llround(
                    next->vclock_ns *
                    next->server.backend().freq_ghz()));
            const uint64_t horizon =
                config_.shared_accel->earliest_free_cycle();
            if (head.jobs > 0 && min_arrival <= horizon) {
                std::vector<DwrrArbiter::Candidate> cands;
                std::vector<Worker *> cand_workers;
                bool multi_tenant = false;
                for (auto &w : workers_) {
                    if (w->replay_cursor >= w->accel_batches.size())
                        continue;
                    const AccelBatch &b2 =
                        w->accel_batches[w->replay_cursor];
                    if (b2.jobs == 0)
                        continue;  // software batch: never contends
                    const uint64_t arrival =
                        static_cast<uint64_t>(std::llround(
                            w->vclock_ns *
                            w->server.backend().freq_ghz()));
                    if (arrival > horizon)
                        continue;  // finds an idle unit: no queueing
                    DwrrArbiter::Candidate c;
                    c.tenant = b2.tenant;
                    c.service_cycles = b2.service_cycles;
                    c.arrival_cycle = arrival;
                    if (!cands.empty() &&
                        c.tenant != cands.front().tenant)
                        multi_tenant = true;
                    cands.push_back(c);
                    cand_workers.push_back(w.get());
                }
                if (multi_tenant)
                    next =
                        cand_workers[arbiter_->PickAndCharge(cands)];
            }
        }
        const size_t next_cursor = next->replay_cursor;
        const AccelBatch &b = next->accel_batches[next_cursor];
        next->replay_cursor = next_cursor + 1;
        const double freq_ghz =
            next->server.backend().freq_ghz();
        // Batches that fully degraded to software never rang the
        // doorbell: they occupy only the worker core's time (sw_ns),
        // never the shared device timeline.
        double device_ns = 0;
        if (b.jobs > 0) {
            const uint64_t arrival_cycle = static_cast<uint64_t>(
                std::llround(next->vclock_ns * freq_ghz));
            accel::SharedAccelQueue::Completion done;
            if (config_.offload.enabled) {
                // Offloaded datapath: one descriptor-ring doorbell for
                // the whole batch, stages pipelined across its calls,
                // wire traffic priced by the placement's transfer
                // model.
                accel::OffloadBatch ob;
                ob.jobs = b.jobs;
                ob.deser_cycles = b.deser_cycles;
                ob.ser_cycles = b.ser_cycles;
                ob.frame_cycles = b.frame_cycles;
                ob.wire_bytes = b.wire_bytes;
                ob.calls = b.calls;
                done = config_.shared_accel->SubmitOffloadBatch(
                    arrival_cycle, ob);
            } else {
                done = config_.shared_accel->SubmitBatch(
                    arrival_cycle, b.jobs, b.service_cycles);
            }
            device_ns =
                static_cast<double>(done.done_cycle - arrival_cycle) /
                freq_ghz;
            if (!shared_unit_health_.empty())
                ObserveSharedUnit(done.unit, done.watchdog_fired);
        } else if (b.frame_cycles > 0) {
            // The codec degraded to software but the frames still
            // crossed the worker's frame-engine stage; its time rides
            // the worker timeline directly (no shared unit involved).
            device_ns = static_cast<double>(b.frame_cycles) / freq_ghz;
        }
        const double batch_ns = device_ns + b.sw_ns;
        const double latency_ns = batch_ns + config_.modeled_handler_ns;
        if (tenants_ != nullptr && b.jobs > 0)
            tenants_->CreditAccelCycles(b.tenant, b.service_cycles);
        for (uint32_t i = 0; i < b.calls; ++i) {
            if (config_.deadline_ns > 0 &&
                latency_ns > config_.deadline_ns)
                ++next->deadline_exceeded;
            next->call_records.push_back(
                CallRecord{b.tenant, latency_ns});
            if (tenants_ != nullptr)
                tenants_->OnCallLatency(b.tenant, latency_ns,
                                        config_.deadline_ns);
        }
        next->vclock_ns +=
            batch_ns +
            config_.modeled_handler_ns * static_cast<double>(b.calls);
    }
    for (auto &w : workers_) {
        w->accel_batches.clear();
        w->replay_cursor = 0;
    }
}

}  // namespace protoacc::rpc
