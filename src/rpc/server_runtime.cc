#include "rpc/server_runtime.h"

#include <algorithm>
#include <cmath>

#include "proto/codec_table.h"

namespace protoacc::rpc {

RpcServerRuntime::RpcServerRuntime(const proto::DescriptorPool *pool,
                                   const BackendFactory &factory,
                                   const RuntimeConfig &config)
    : pool_(pool), config_(config)
{
    PA_CHECK_GE(config_.num_workers, 1u);
    PA_CHECK_GE(config_.max_batch, 1u);
    // Compile the pool's codec tables before any worker thread exists:
    // lazy first-use compilation is not thread-safe, and pre-compiling
    // here makes every later access a read of immutable state.
    proto::GetCodecTables(*pool_);
    workers_.reserve(config_.num_workers);
    for (uint32_t i = 0; i < config_.num_workers; ++i)
        workers_.push_back(
            std::make_unique<Worker>(pool_, factory(i)));
}

RpcServerRuntime::~RpcServerRuntime() { Shutdown(); }

void
RpcServerRuntime::RegisterMethod(uint16_t method_id, int request_type,
                                 int response_type,
                                 const Handler &handler)
{
    PA_CHECK(!started_);
    for (auto &w : workers_)
        w->server.RegisterMethod(method_id, request_type, response_type,
                                 handler);
}

void
RpcServerRuntime::Start()
{
    PA_CHECK(!started_);
    started_ = true;
    for (auto &w : workers_)
        w->thread = std::thread([this, worker = w.get()] {
            WorkerLoop(worker);
        });
}

void
RpcServerRuntime::Submit(const FrameHeader &header,
                         const uint8_t *payload)
{
    // Legal before Start(): frames queue in the inboxes and the workers
    // pick them up once spawned (a pre-loaded backlog drains in exact
    // max_batch chunks, which keeps batch boundaries deterministic).
    Worker &w = *workers_[header.call_id % workers_.size()];
    {
        std::lock_guard<std::mutex> lock(w.mu);
        PA_CHECK(!w.stop);
        OwnedFrame frame;
        frame.header = header;
        if (header.payload_bytes > 0)
            frame.payload.assign(payload,
                                 payload + header.payload_bytes);
        w.inbox.push_back(std::move(frame));
        ++w.pending;
    }
    w.cv.notify_all();
}

void
RpcServerRuntime::Drain()
{
    PA_CHECK(started_);
    for (auto &w : workers_) {
        std::unique_lock<std::mutex> lock(w->mu);
        w->cv.wait(lock, [&w] { return w->pending == 0; });
    }
    ReplayAcceleratorTimeline();
}

void
RpcServerRuntime::Shutdown()
{
    if (!started_)
        return;
    for (auto &w : workers_) {
        {
            std::lock_guard<std::mutex> lock(w->mu);
            w->stop = true;
        }
        w->cv.notify_all();
    }
    for (auto &w : workers_)
        if (w->thread.joinable())
            w->thread.join();
    started_ = false;
}

uint32_t
RpcServerRuntime::num_workers() const
{
    return static_cast<uint32_t>(workers_.size());
}

const FrameBuffer &
RpcServerRuntime::replies(uint32_t worker) const
{
    PA_CHECK_LT(worker, workers_.size());
    return workers_[worker]->replies;
}

RuntimeSnapshot
RpcServerRuntime::Snapshot() const
{
    RuntimeSnapshot snap;
    snap.arena_constructions = workers_.size();
    for (const auto &w : workers_) {
        WorkerSnapshot ws;
        ws.calls = w->calls;
        ws.failures = w->failures;
        ws.batches = w->batches;
        ws.vclock_ns = w->vclock_ns;
        ws.codec_cycles = w->server.backend().codec_cycles();
        ws.arena_blocks = w->server.arena().block_count();
        ws.arena_bytes_reserved = w->server.arena().bytes_reserved();
        ws.reply_payload_copies = w->replies.payload_copies();
        snap.calls += ws.calls;
        snap.failures += ws.failures;
        snap.modeled_span_ns =
            std::max(snap.modeled_span_ns, ws.vclock_ns);
        snap.workers.push_back(ws);
    }
    return snap;
}

std::vector<double>
RpcServerRuntime::TakeLatencies()
{
    std::vector<double> all;
    for (auto &w : workers_) {
        all.insert(all.end(), w->latencies_ns.begin(),
                   w->latencies_ns.end());
        w->latencies_ns.clear();
    }
    return all;
}

void
RpcServerRuntime::WorkerLoop(Worker *w)
{
    std::vector<OwnedFrame> batch;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(w->mu);
            w->cv.wait(lock,
                       [w] { return w->stop || !w->inbox.empty(); });
            if (w->inbox.empty())
                return;  // stop requested and fully drained
            const size_t n = std::min<size_t>(config_.max_batch,
                                              w->inbox.size());
            batch.clear();
            batch.reserve(n);
            for (size_t i = 0; i < n; ++i) {
                batch.push_back(std::move(w->inbox.front()));
                w->inbox.pop_front();
            }
        }

        ProcessBatch(w, &batch);

        {
            std::lock_guard<std::mutex> lock(w->mu);
            PA_CHECK_GE(w->pending, batch.size());
            w->pending -= batch.size();
        }
        w->cv.notify_all();
    }
}

void
RpcServerRuntime::ProcessBatch(Worker *w,
                               std::vector<OwnedFrame> *batch)
{
    CodecBackend &backend = w->server.mutable_backend();
    const double freq_ghz = backend.freq_ghz();
    ++w->batches;
    if (!config_.record_replies)
        w->replies.clear();  // recycle the stream between batches

    if (config_.shared_accel == nullptr) {
        // Each worker is one core running the codec itself: a call's
        // modeled latency is its own service time; calls on one worker
        // run back-to-back on its timeline.
        for (OwnedFrame &f : *batch) {
            Frame frame;
            frame.header = f.header;
            frame.payload = f.payload.data();
            const double before = backend.codec_cycles();
            if (!w->server.HandleFrame(frame, &w->replies))
                ++w->failures;
            ++w->calls;
            const double service_ns =
                (backend.codec_cycles() - before) / freq_ghz;
            const double latency_ns =
                service_ns + config_.modeled_handler_ns;
            w->latencies_ns.push_back(latency_ns);
            w->vclock_ns += latency_ns;
        }
        return;
    }

    // Shared accelerator: the batch's (de)serialization jobs go through
    // the doorbell as one batch (two jobs per call: deser + ser) and
    // complete together at the fence, so every call in the batch
    // observes the batch's queueing delay + service time. Handler
    // logic still runs per call on the worker's core. Only the batch's
    // measured service time is recorded here; the shared timeline is
    // replayed deterministically in Drain().
    const double before = backend.codec_cycles();
    uint64_t failures = 0;
    for (OwnedFrame &f : *batch) {
        Frame frame;
        frame.header = f.header;
        frame.payload = f.payload.data();
        if (!w->server.HandleFrame(frame, &w->replies))
            ++failures;
    }
    const double service_cycles = backend.codec_cycles() - before;
    AccelBatch record;
    record.jobs = 2 * static_cast<uint32_t>(batch->size());
    record.service_cycles =
        static_cast<uint64_t>(std::llround(service_cycles));
    record.calls = static_cast<uint32_t>(batch->size());
    w->accel_batches.push_back(record);
    w->calls += batch->size();
    w->failures += failures;
}

void
RpcServerRuntime::ReplayAcceleratorTimeline()
{
    if (config_.shared_accel == nullptr)
        return;
    // Closed-loop event simulation over the recorded batches: each
    // worker's next batch arrives when its previous one completed; the
    // earliest worker clock submits next (ties break to the lowest
    // worker index). The replay order depends only on the recorded
    // batches, never on host thread scheduling, so contended modeled
    // numbers are deterministic. Runs while quiescent (Drain holds no
    // locks, and pending == 0 ordered the workers' writes before us).
    for (;;) {
        Worker *next = nullptr;
        size_t next_cursor = 0;
        for (auto &w : workers_) {
            if (w->replay_cursor >= w->accel_batches.size())
                continue;
            if (next == nullptr || w->vclock_ns < next->vclock_ns) {
                next = w.get();
                next_cursor = w->replay_cursor;
            }
        }
        if (next == nullptr)
            break;
        const AccelBatch &b = next->accel_batches[next_cursor];
        next->replay_cursor = next_cursor + 1;
        const double freq_ghz =
            next->server.backend().freq_ghz();
        const uint64_t arrival_cycle = static_cast<uint64_t>(
            std::llround(next->vclock_ns * freq_ghz));
        const accel::SharedAccelQueue::Completion done =
            config_.shared_accel->SubmitBatch(arrival_cycle, b.jobs,
                                              b.service_cycles);
        const double batch_ns =
            static_cast<double>(done.done_cycle - arrival_cycle) /
            freq_ghz;
        for (uint32_t i = 0; i < b.calls; ++i)
            next->latencies_ns.push_back(batch_ns +
                                         config_.modeled_handler_ns);
        next->vclock_ns +=
            batch_ns +
            config_.modeled_handler_ns * static_cast<double>(b.calls);
    }
    for (auto &w : workers_) {
        w->accel_batches.clear();
        w->replay_cursor = 0;
    }
}

}  // namespace protoacc::rpc
