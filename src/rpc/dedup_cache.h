/**
 * @file
 * Bounded server-side dedup/response cache: the exactly-once half of
 * the retry story.
 *
 * PR 3's client retries transient failures, but a retry whose original
 * request *did* execute (the reply was lost, not the request)
 * re-executes the handler — observable double execution for any
 * non-idempotent method. The fix is the classic one: the client stamps
 * every logical call with an idempotency key that is stable across its
 * retries, and the server remembers the committed response for recent
 * keys. A retried key is answered from the cache without touching the
 * handler.
 *
 * The cache is bounded (eviction) because an unbounded map keyed by
 * every call ever served is a memory leak with a goatee. The bound is
 * a correctness window, not just a size knob: a retry arriving after
 * its entry was evicted will re-execute. Two refinements over plain
 * FIFO close the gap between the size bound and the correctness
 * window:
 *
 *   - **Retry-horizon-aware eviction.** The client's retry policy
 *     bounds how long after commit a retry can still arrive; an entry
 *     older than that horizon can never be hit again and is dead
 *     weight. Age is measured in *insertions* (a monotone logical
 *     clock every config already controls), so with retry_horizon = H,
 *     entries more than H insertions old are expired first — and
 *     proactively, so a burst of fresh traffic does not have to
 *     displace them one capacity miss at a time. Only when no expired
 *     entry exists does eviction fall back to oldest-first, and such
 *     an eviction is *unsafe* (the entry was still inside the retry
 *     window) and counted separately so operators can see when
 *     capacity — not the horizon — is the binding constraint.
 *
 *   - **Snapshot/restore.** A serving process that restarts loses the
 *     cache, and every in-flight retry of an already-committed call
 *     re-executes — exactly the double execution the cache exists to
 *     prevent. Serialize() emits a self-verifying image (magic,
 *     version, CRC32C trailer) of the live entries; Deserialize()
 *     rebuilds the cache from one, rejecting corrupt or foreign bytes
 *     fail-closed (an empty cache re-executes some calls; a poisoned
 *     one serves wrong answers).
 */
#ifndef PROTOACC_RPC_DEDUP_CACHE_H
#define PROTOACC_RPC_DEDUP_CACHE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/frame.h"

namespace protoacc::rpc {

/// Sizing and eviction policy of a DedupCache.
struct DedupConfig
{
    /// Maximum live entries; 0 disables the cache entirely.
    size_t capacity = 0;
    /// Retry horizon in insertions: an entry more than this many
    /// insertions old is outside every client's retry window and is
    /// expired first (and proactively). 0 = unknown horizon — pure
    /// oldest-first FIFO, the pre-snapshot behavior.
    uint64_t retry_horizon = 0;
};

/**
 * Thread-safe bounded map: (tenant, idempotency key) -> committed
 * response frame (header + payload bytes). Shared by all workers of a
 * runtime so a retry that hashes to a different worker still hits;
 * scoped by tenant so colliding keys from different tenants can never
 * replay each other's responses.
 */
class DedupCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        /// Evictions of entries still inside the retry horizon (or any
        /// eviction when the horizon is unknown): each one is a
        /// potential double execution if its call retries late.
        uint64_t unsafe_evictions = 0;
        /// Entries dropped because they aged past the retry horizon
        /// (provably dead — no correctness exposure).
        uint64_t expired = 0;
        size_t entries = 0;
        size_t capacity = 0;
        /// True when the cache was rebuilt from a snapshot.
        bool restored = false;
    };

    explicit DedupCache(size_t capacity) : config_{capacity, 0} {}
    explicit DedupCache(const DedupConfig &config) : config_(config) {}

    /**
     * Look up @p key within @p tenant's scope. On a hit, copies the
     * cached response header and payload out and returns true. Key 0
     * (no idempotency key) never hits and is not counted as a miss.
     *
     * Keys are scoped per tenant: the idempotency key is
     * session_id<<32|call_id, and session/call counters are assigned
     * client-side, so two *different tenants* can legitimately present
     * the same 64-bit key. Before tenant scoping that collision
     * replayed one tenant's cached response to the other — a
     * cross-tenant data leak, fixed by making (tenant, key) the cache
     * key.
     */
    bool Lookup(uint16_t tenant, uint64_t key, FrameHeader *header,
                std::vector<uint8_t> *payload);

    /// Default-tenant lookup (single-tenant callers).
    bool
    Lookup(uint64_t key, FrameHeader *header,
           std::vector<uint8_t> *payload)
    {
        return Lookup(0, key, header, payload);
    }

    /**
     * Remember the committed response for @p key in @p tenant's scope.
     * Key 0 and keys already present are ignored (a racing duplicate
     * execution keeps the first committed answer). Expires entries
     * beyond the retry horizon, then evicts oldest-first beyond
     * capacity.
     */
    void Insert(uint16_t tenant, uint64_t key, const FrameHeader &header,
                const uint8_t *payload, size_t payload_bytes);

    /// Default-tenant insert (single-tenant callers).
    void
    Insert(uint64_t key, const FrameHeader &header,
           const uint8_t *payload, size_t payload_bytes)
    {
        Insert(0, key, header, payload, payload_bytes);
    }

    /**
     * Snapshot the live entries (insertion order, ages preserved) into
     * a self-verifying byte image for crash-restart durability.
     */
    std::vector<uint8_t> Serialize() const;

    /**
     * Rebuild the cache from a Serialize() image, replacing current
     * contents. Fail-closed: returns false and leaves the cache empty
     * when the image is truncated, corrupt (CRC mismatch), or a
     * foreign format. Entries beyond this cache's capacity or retry
     * horizon are dropped during the rebuild (the snapshot may come
     * from a differently sized instance).
     *
     * On rejection @p reject_detail (when non-null) receives a
     * human-readable cause; a version rejection names both the found
     * and the expected snapshot version, so an operator can tell a
     * rollback-after-format-bump from corruption.
     */
    bool Deserialize(const uint8_t *data, size_t size,
                     std::string *reject_detail = nullptr);

    Stats stats() const;
    const DedupConfig &config() const { return config_; }

  private:
    struct Entry
    {
        FrameHeader header;
        std::vector<uint8_t> payload;
        /// Value of insert_tick_ when this entry was committed.
        uint64_t tick = 0;
    };

    /// Exact composite key: the 64-bit idempotency key is only unique
    /// *within* a tenant, so the map key carries both halves verbatim
    /// (no mixing — a hash blend could collide across tenants, which is
    /// the very bug tenant scoping fixes).
    struct TenantKey
    {
        uint16_t tenant = 0;
        uint64_t key = 0;
        bool
        operator==(const TenantKey &o) const
        {
            return tenant == o.tenant && key == o.key;
        }
    };
    struct TenantKeyHash
    {
        size_t
        operator()(const TenantKey &k) const
        {
            // splitmix64 over the concatenated bits: cheap, good
            // avalanche, and exactness lives in operator== anyway.
            uint64_t x = k.key ^ (static_cast<uint64_t>(k.tenant) << 48);
            x += 0x9e3779b97f4a7c15ull;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            return static_cast<size_t>(x ^ (x >> 31));
        }
    };

    /// Drop entries older than the retry horizon, then enforce
    /// capacity oldest-first. Caller holds mu_.
    void EvictLocked();

    DedupConfig config_;
    mutable std::mutex mu_;
    std::unordered_map<TenantKey, Entry, TenantKeyHash> entries_;
    std::deque<TenantKey> fifo_;  ///< insertion order, for eviction
    uint64_t insert_tick_ = 0;   ///< monotone logical clock
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
    uint64_t unsafe_evictions_ = 0;
    uint64_t expired_ = 0;
    bool restored_ = false;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_DEDUP_CACHE_H
