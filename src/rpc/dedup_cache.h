/**
 * @file
 * Bounded server-side dedup/response cache: the exactly-once half of
 * the retry story.
 *
 * PR 3's client retries transient failures, but a retry whose original
 * request *did* execute (the reply was lost, not the request)
 * re-executes the handler — observable double execution for any
 * non-idempotent method. The fix is the classic one: the client stamps
 * every logical call with an idempotency key that is stable across its
 * retries, and the server remembers the committed response for recent
 * keys. A retried key is answered from the cache without touching the
 * handler.
 *
 * The cache is bounded (FIFO eviction) because an unbounded map keyed
 * by every call ever served is a memory leak with a goatee. The bound
 * is a correctness window, not just a size knob: a retry arriving
 * after its entry was evicted will re-execute. Eviction counters are
 * exported so operators can see when the window is too small for the
 * retry horizon.
 */
#ifndef PROTOACC_RPC_DEDUP_CACHE_H
#define PROTOACC_RPC_DEDUP_CACHE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rpc/frame.h"

namespace protoacc::rpc {

/**
 * Thread-safe bounded map: idempotency key -> committed response frame
 * (header + payload bytes). Shared by all workers of a runtime so a
 * retry that hashes to a different worker still hits.
 */
class DedupCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
        size_t capacity = 0;
    };

    explicit DedupCache(size_t capacity) : capacity_(capacity) {}

    /**
     * Look up @p key. On a hit, copies the cached response header and
     * payload out and returns true. Key 0 (no idempotency key) never
     * hits and is not counted as a miss.
     */
    bool Lookup(uint64_t key, FrameHeader *header,
                std::vector<uint8_t> *payload);

    /**
     * Remember the committed response for @p key. Key 0 and keys
     * already present are ignored (a racing duplicate execution keeps
     * the first committed answer). Evicts the oldest entry beyond
     * capacity.
     */
    void Insert(uint64_t key, const FrameHeader &header,
                const uint8_t *payload, size_t payload_bytes);

    Stats stats() const;

  private:
    struct Entry
    {
        FrameHeader header;
        std::vector<uint8_t> payload;
    };

    const size_t capacity_;
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_;
    std::deque<uint64_t> fifo_;  ///< insertion order, for eviction
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_DEDUP_CACHE_H
