/**
 * @file
 * Device health domains: lifecycle management of fallible accelerator
 * state between requests.
 *
 * The serving stack already *detects* device failures (watchdog resets,
 * injected unit kills/wedges, CRC rejects) and replays the victim job —
 * but a reset unit used to go straight back into rotation with dirty
 * internal state and no memory of its error history. This module treats
 * every accelerator (each worker's private device, and each unit behind
 * the shared doorbell queue) as a managed health domain:
 *
 *     healthy → suspect → quarantined → scrubbing → self-test
 *                    ↘ (single incidents just replay)   ↙        ↘
 *                      probation ← (test passed)               fenced
 *                          ↓ (clean ops)                   (test failed
 *                       healthy                             repeatedly)
 *
 * Transitions are driven by an EWMA error rate over per-operation
 * observations (watchdog resets, unit faults, downstream CRC failures):
 * a single incident replays exactly as before, but a repeat offender is
 * *quarantined* instead of being reset forever. Quarantine triggers a
 * modeled full-state scrub — ADT response buffers, on-chip context
 * stacks, the DRAM spill region, memloader/memwriter buffers — with
 * per-structure cycle accounting, so a reset can never leak one
 * request's bytes into the next. A background self-test then runs
 * golden serialize/deserialize vectors through the unit while live
 * traffic routes around it; passing units reintegrate on reduced-trust
 * probation (any incident re-quarantines immediately), failing units
 * stay fenced and the runtime degrades to surviving units or the
 * software codec.
 *
 * Fail-closed contract: the only path out of quarantine runs through a
 * *completed* scrub and a *passed* self-test. Any interruption — a
 * worker crash mid-scrub, a shutdown mid-self-test — leaves the domain
 * in kScrubbing/kSelfTest, which InService() reports as fenced.
 */
#ifndef PROTOACC_RPC_HEALTH_H
#define PROTOACC_RPC_HEALTH_H

#include <array>
#include <cstdint>

#include "accel/accelerator.h"
#include "proto/message.h"

namespace protoacc::rpc {

/// Lifecycle state of one accelerator health domain.
enum class HealthState : uint8_t {
    kHealthy = 0,
    /// Elevated error rate; still serving, watched closely.
    kSuspect,
    /// Fenced from traffic; scrub not yet started.
    kQuarantined,
    /// Fenced; modeled state scrub in progress.
    kScrubbing,
    /// Fenced; golden-vector self-test in progress.
    kSelfTest,
    /// Back in service with reduced trust: any incident re-quarantines
    /// immediately, and a run of clean ops is required to fully
    /// reintegrate as kHealthy.
    kProbation,
    /// Permanently out of service (self-test failed too many times).
    kFenced,
    kNumHealthStates,
};

const char *HealthStateName(HealthState state);

/// Device-attributable error classes feeding the health EWMA.
enum class IncidentKind : uint8_t {
    /// The unit blew its cycle budget and was reset (wedge or runaway
    /// stall caught by the watchdog).
    kWatchdogReset = 0,
    /// The unit died mid-job (injected kill; op fell back to software).
    kUnitFault,
    /// Downstream integrity failure attributed to this device (e.g. a
    /// client rejected this worker's response frame CRC).
    kCrcFailure,
    kNumIncidentKinds,
};

constexpr size_t kNumIncidentKinds =
    static_cast<size_t>(IncidentKind::kNumIncidentKinds);

const char *IncidentKindName(IncidentKind kind);

/// Knobs of the health state machine and the scrub/self-test models.
/// Lives in RuntimeConfig next to AccelConfig/SharedQueueConfig.
struct HealthConfig
{
    /// Master switch; disabled keeps the pre-health behavior (every
    /// incident replays, nothing is ever quarantined).
    bool enabled = false;

    // ---- error-rate tracking ----

    /// EWMA weight of the newest observation (1.0 = only the latest op
    /// matters, small = long memory).
    double ewma_alpha = 0.25;
    /// EWMA error rate at or above which a domain becomes kSuspect.
    double suspect_threshold = 0.10;
    /// EWMA error rate at or above which a domain is quarantined.
    double quarantine_threshold = 0.45;
    /// Observations required before the thresholds are trusted (a
    /// single early incident must replay, not quarantine).
    uint64_t min_observations = 4;

    // ---- scrub cost model (per-structure cycle accounting) ----

    /// Cycles to invalidate/zero one ADT response-buffer entry.
    uint32_t scrub_cycles_per_adt_entry = 2;
    /// Cycles to clear one on-chip context-stack entry (deser metadata
    /// stack and ser context stack are both covered).
    uint32_t scrub_cycles_per_stack_entry = 1;
    /// Cycles to overwrite one spilled stack entry in the DRAM spill
    /// region (a memory write, far costlier than a register clear).
    uint32_t scrub_cycles_per_spill_entry = 8;
    /// Entries the DRAM spill region is provisioned for (state beyond
    /// the on-chip depth). Scrub must assume the region is dirty to its
    /// provisioned size — the dirty extent cannot be trusted after a
    /// wedge.
    uint32_t spill_region_entries = 128;
    /// Streaming-buffer bytes in the memloader / memwriter frontends.
    uint32_t memloader_buffer_bytes = 64;
    uint32_t memwriter_buffer_bytes = 64;
    /// Width at which the streaming buffers are cleared.
    uint32_t scrub_bytes_per_cycle = 16;

    // ---- self-test ----

    /// Golden serialize+deserialize vectors run through the unit.
    uint32_t self_test_vectors = 4;
    /// Consecutive failed self-tests before the domain is permanently
    /// fenced (a failing test re-queues scrub + self-test until then).
    uint32_t max_self_test_failures = 2;
    /// Modeled cycles per golden vector for domains with no functional
    /// device behind them (shared-queue units are timing-only; worker
    /// devices measure the real modeled cost instead).
    uint64_t self_test_cycles_per_vector = 4000;

    // ---- probation ----

    /// Clean operations required in kProbation before the domain
    /// reintegrates as kHealthy.
    uint64_t probation_ops = 32;
};

/// Per-structure breakdown of one modeled state scrub.
struct ScrubCost
{
    uint64_t adt_buffer_cycles = 0;
    uint64_t context_stack_cycles = 0;
    uint64_t spill_region_cycles = 0;
    uint64_t memloader_cycles = 0;
    uint64_t memwriter_cycles = 0;

    uint64_t
    total() const
    {
        return adt_buffer_cycles + context_stack_cycles +
               spill_region_cycles + memloader_cycles +
               memwriter_cycles;
    }
};

/**
 * Price a full state scrub from the device's actual structure sizes:
 * both units' ADT response buffers, both on-chip context stacks, the
 * DRAM spill region, and the streaming buffers.
 */
ScrubCost ComputeScrubCost(const accel::AccelConfig &accel,
                           const HealthConfig &config);

/// Scrub cost for a domain whose structure sizes are unknown (e.g. a
/// shared-queue unit, which is timing-only): uses a default-configured
/// device's sizes.
ScrubCost ComputeScrubCost(const HealthConfig &config);

/// Observable state of one health domain.
struct HealthSnapshot
{
    HealthState state = HealthState::kHealthy;
    /// EWMA error rate over the most recent observations.
    double error_ewma = 0;
    uint64_t observations = 0;
    /// Error history bucketed by incident kind.
    std::array<uint64_t, kNumIncidentKinds> incidents{};
    uint64_t quarantines = 0;
    uint64_t scrubs_completed = 0;
    uint64_t scrub_cycles = 0;
    uint64_t self_tests_passed = 0;
    uint64_t self_tests_failed = 0;
    uint64_t self_test_cycles = 0;
    uint64_t reintegrations = 0;
    /// Clean ops still required to leave probation (0 elsewhere).
    uint64_t probation_ops_remaining = 0;
    /// True when the domain is not serving traffic (quarantined,
    /// scrubbing, self-testing, or permanently fenced).
    bool fenced_from_traffic = false;

    uint64_t
    total_incidents() const
    {
        uint64_t n = 0;
        for (const uint64_t k : incidents)
            n += k;
        return n;
    }
};

/**
 * The health state machine for one accelerator domain. Not internally
 * synchronized: each domain has a single owner (the worker thread for a
 * private device; the quiescent replay loop for a shared-queue unit),
 * matching the ownership discipline of the other per-worker counters.
 */
class DeviceHealth
{
  public:
    explicit DeviceHealth(const HealthConfig &config) : config_(config) {}

    HealthState state() const { return state_; }

    /// True while the domain may serve traffic (healthy, suspect, or
    /// probation). Everything else is fenced — including a scrub or
    /// self-test that never completed (fail closed).
    bool
    InService() const
    {
        return state_ == HealthState::kHealthy ||
               state_ == HealthState::kSuspect ||
               state_ == HealthState::kProbation;
    }

    /// Observe one clean operation. Decays the EWMA, advances
    /// probation, and may reintegrate kProbation → kHealthy.
    void OnSuccess();

    /**
     * Observe one device-attributable incident.
     *
     * @return true when the domain must be quarantined *now* (the
     *         caller fences it and schedules scrub + self-test); false
     *         when the incident is absorbed (replay-as-usual).
     *         In kProbation any incident quarantines immediately —
     *         that is the reduced-trust contract.
     */
    bool OnIncident(IncidentKind kind);

    /// kQuarantined → kScrubbing. The scrub has *started*; until
    /// CompleteScrub the domain reports fenced (fail closed).
    void BeginScrub();

    /// kScrubbing → kSelfTest, charging the modeled scrub cycles.
    void CompleteScrub(const ScrubCost &cost);

    /**
     * Deliver the self-test verdict (kSelfTest → ...).
     *
     * Pass: kProbation with probation_ops of reduced trust ahead.
     * Fail: kQuarantined again (another scrub + self-test round), or
     * kFenced permanently once max_self_test_failures is reached.
     *
     * @return the new state.
     */
    HealthState CompleteSelfTest(bool passed, uint64_t cycles);

    HealthSnapshot snapshot() const;

    const HealthConfig &config() const { return config_; }

  private:
    void Observe(double error);

    HealthConfig config_;
    HealthState state_ = HealthState::kHealthy;
    double ewma_ = 0;
    uint64_t observations_ = 0;
    std::array<uint64_t, kNumIncidentKinds> incidents_{};
    uint64_t quarantines_ = 0;
    uint64_t scrubs_completed_ = 0;
    uint64_t scrub_cycles_ = 0;
    uint64_t self_tests_passed_ = 0;
    uint64_t self_tests_failed_ = 0;
    uint64_t consecutive_self_test_failures_ = 0;
    uint64_t self_test_cycles_ = 0;
    uint64_t reintegrations_ = 0;
    uint64_t probation_ops_done_ = 0;
};

class CodecBackend;

/**
 * Golden-vector self-test: deterministic request messages are
 * serialized and re-parsed through a device engine and checked against
 * the reference software codec, so a unit that corrupts data (or faults
 * under its injected failure class) is caught before reintegration.
 * Stateless per Run() call — safe to share across workers.
 */
class SelfTester
{
  public:
    /// @p msg_type: pool index of the message type used for vectors
    /// (typically a registered method's request type, so the vectors
    /// exercise the ADTs live traffic uses).
    SelfTester(const proto::DescriptorPool *pool, int msg_type);

    /**
     * Run @p vectors golden round trips through @p engine (the device
     * path — for a hybrid backend pass its accelerator engine, so the
     * test exercises the unit and not the software fallback).
     *
     * @param[out] cycles modeled device cycles the test consumed.
     * @return true when every vector serialized byte-identically to the
     *         reference codec and re-parsed to an equivalent message.
     */
    bool Run(CodecBackend *engine, uint32_t vectors,
             uint64_t *cycles) const;

  private:
    const proto::DescriptorPool *pool_;
    int msg_type_;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_HEALTH_H
