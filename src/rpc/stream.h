/**
 * @file
 * Bounded-memory streaming datapath over the v4 stream frames.
 *
 * The request-sized serving path materializes every message as one
 * contiguous payload, so a GB-scale message is either a
 * memory-exhaustion vector or an unconditional kResourceExhausted.
 * This module serves such messages as *streams* — BEGIN announce,
 * offset-addressed CHUNKs, END close (frame.h) — under hard memory
 * budgets, with every mid-stream fault class recoverable and
 * exactly-once delivery of the logical message:
 *
 *  - StreamReceiver is the server side: a per-stream state machine
 *    (announce admission → in-order chunk commit → close verify) that
 *    feeds committed bytes straight into the codec backend's
 *    incremental StreamDecoder, so peak memory per stream is one
 *    record plus one chunk, never the message. Budgets are enforced
 *    through a StreamMemoryGauge shared with the serving runtime:
 *    oversized announces shed at the door, budget pressure brownouts
 *    low-priority tenants, and a mid-stream budget breach cancels
 *    deterministically.
 *
 *  - Exactly-once resume rides the committed-offset watermark: the
 *    dedup identity of a chunk is (tenant, stream key, offset), so a
 *    duplicated or retransmitted chunk below the watermark is acked
 *    without re-execution, a gap is NACKed (credit frame with non-kOk
 *    status), and a reopened stream (sender restart, lost response)
 *    resumes from the watermark — or, when the stream already
 *    completed, replays the cached final response via the runtime's
 *    DedupCache without touching the decoder.
 *
 *  - StreamSender is the client side: credit-window pacing (stalls in
 *    modeled time while the receiver's window is closed), timeout and
 *    NACK-driven rewind to the acked watermark, attempt counting
 *    folded into the fault hash so retransmissions re-roll their
 *    fault verdicts.
 *
 *  - StreamChannel is the deterministic lossy wire between them:
 *    chunk-granularity faults (drop/truncate/corrupt/duplicate/
 *    reorder, hash-gated per chunk identity — sim/fault.h) applied to
 *    real frame bytes, so corruption and truncation are *detected by
 *    the real CRC machinery*, not short-circuited.
 */
#ifndef PROTOACC_RPC_STREAM_H
#define PROTOACC_RPC_STREAM_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "rpc/codec_backend.h"
#include "rpc/dedup_cache.h"
#include "rpc/frame.h"
#include "rpc/tenant.h"
#include "sim/fault.h"

namespace protoacc::accel {
class FrameEngine;
}

namespace protoacc::rpc {

/// Streaming datapath configuration (shared by both endpoints).
struct StreamConfig
{
    /// Nominal chunk payload size (stream bytes per kStreamChunk).
    uint32_t chunk_bytes = 64u << 10;
    /// Largest single record the incremental codec will buffer.
    proto::StreamCodecLimits codec;
    /// Hard cap on one stream's buffered bytes (decoder tail + scratch
    /// + reassembly slack); breach cancels the stream with
    /// kResourceExhausted. 0 = unlimited.
    uint64_t per_stream_budget_bytes = 0;
    /// Hard cap across all live streams (the StreamMemoryGauge
    /// budget); a BEGIN that cannot reserve sheds with kOverloaded.
    /// 0 = unlimited.
    uint64_t global_budget_bytes = 0;
    /// Credit granted ahead of the committed watermark. The sender's
    /// in-flight bytes never exceed this.
    uint64_t credit_window_bytes = 256u << 10;
    /// Receiver-side inactivity deadline, modeled ns: a stream with no
    /// committed progress for this long is cancelled and its state
    /// reclaimed. 0 disables.
    double deadline_ns = 0;
    /// Brownout: when reserving a new stream would push the gauge past
    /// this fraction of global_budget_bytes, non-top-priority tenants
    /// shed (kOverloaded) while top-priority streams may use the full
    /// budget. >= 1.0 disables.
    double brownout_pressure = 1.0;
    /// Sender: modeled time without ack progress before rewinding to
    /// the watermark and retransmitting.
    double retransmit_timeout_ns = 400000;
    /// Receiver: how long a fault-injected window wedge withholds
    /// credit before the window reopens (modeled ns).
    double wedge_hold_ns = 150000;
};

/**
 * Shared memory high-water-mark gauge for stream buffers. The serving
 * runtime snapshots current/peak alongside its arena bytes so budget
 * enforcement is observable. Thread-safe.
 */
class StreamMemoryGauge
{
  public:
    /// Reserve @p bytes against @p budget (0 = unlimited). False (and
    /// no state change) when the reservation would exceed the budget.
    bool
    TryAcquire(size_t bytes, size_t budget)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (budget != 0 && current_ + bytes > budget)
            return false;
        current_ += bytes;
        if (current_ > peak_)
            peak_ = current_;
        return true;
    }

    void
    Release(size_t bytes)
    {
        std::lock_guard<std::mutex> lock(mu_);
        current_ = bytes > current_ ? 0 : current_ - bytes;
    }

    size_t
    current_bytes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return current_;
    }
    size_t
    peak_bytes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return peak_;
    }

  private:
    mutable std::mutex mu_;
    size_t current_ = 0;
    size_t peak_ = 0;
};

/// Receiver-side counters (quiescent reads).
struct StreamReceiverStats
{
    uint64_t streams_opened = 0;
    uint64_t streams_completed = 0;
    uint64_t streams_resumed = 0;   ///< duplicate BEGIN on a live stream
    uint64_t replayed_responses = 0;///< completed-stream BEGIN dedup hit
    uint64_t streams_cancelled = 0; ///< sender cancel frames honored
    uint64_t deadline_cancels = 0;  ///< receiver inactivity cancels
    uint64_t budget_cancels = 0;    ///< mid-stream budget breach
    uint64_t chunks_committed = 0;
    uint64_t bytes_committed = 0;
    uint64_t duplicate_chunks = 0;  ///< offset below watermark: acked, not re-run
    uint64_t gap_nacks = 0;         ///< offset above watermark: rewind NACK
    uint64_t shed_announce = 0;     ///< announce over max_payload_bytes
    uint64_t shed_budget = 0;       ///< global budget reservation failed
    uint64_t shed_brownout = 0;     ///< pressure shed of low-priority tenant
    uint64_t malformed_frames = 0;  ///< protocol-violating stream frames
    uint64_t stream_crc_mismatches = 0;
    uint64_t wedges_started = 0;    ///< injected receiver-window wedges
    uint64_t credits_sent = 0;
};

/**
 * Server-side stream endpoint: owns every live stream's state and the
 * per-stream incremental decoders. Single-threaded (streams are
 * ordered; the runtime routes stream frames to it inline on the
 * submission path). Reply/credit/error frames are appended to the
 * FrameBuffer passed to HandleFrame.
 */
class StreamReceiver
{
  public:
    /// Builds the application sink receiving one stream's decoded
    /// fields (method id and tenant identify the stream).
    using SinkFactory = std::function<std::unique_ptr<proto::StreamSink>(
        uint16_t method_id, uint16_t tenant)>;

    /**
     * @param pool    compiled descriptor pool (not owned);
     * @param backend codec backend whose software engine decodes
     *                records (not owned; device-only backends have no
     *                incremental path — CreateStreamDecoder nullptr
     *                fails the BEGIN with kUnimplemented);
     * @param config  budgets/window/deadline policy;
     * @param sinks   application sink factory.
     */
    StreamReceiver(const proto::DescriptorPool *pool,
                   CodecBackend *backend, const StreamConfig &config,
                   SinkFactory sinks);
    ~StreamReceiver();

    StreamReceiver(const StreamReceiver &) = delete;
    StreamReceiver &operator=(const StreamReceiver &) = delete;

    /// Declare @p method_id's logical request type (pool index) —
    /// the type streamed BEGIN frames of that method decode as.
    void RegisterMethod(uint16_t method_id, int request_type);

    /// Budget gauge shared with the serving runtime (not owned;
    /// nullptr = private gauge). Set before the first frame.
    void SetGauge(StreamMemoryGauge *gauge);

    /// Optional tenant table for brownout priorities (not owned).
    void SetTenantTable(TenantTable *tenants) { tenants_ = tenants; }

    /// Optional completed-response cache for exactly-once replay of a
    /// finished stream's response (not owned).
    void SetDedupCache(DedupCache *dedup) { dedup_ = dedup; }

    /// Optional fault injector driving receiver-window wedges (not
    /// owned).
    void SetFaultInjector(sim::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /// Optional device frame engine pricing stream framing work (not
    /// owned).
    void SetFrameEngine(accel::FrameEngine *engine) { engine_ = engine; }

    /**
     * Process one v4 stream frame at modeled time @p now_ns, appending
     * any credit/error/response frames to @p out. Returns the frame's
     * disposition — kOk for accepted protocol steps (including an
     * idempotently acked duplicate chunk), the specific failure class
     * otherwise (also carried on the emitted error/NACK frame).
     */
    StatusCode HandleFrame(const Frame &frame, FrameBuffer *out,
                           double now_ns);

    /// Deadline sweep: cancel streams with no progress since
    /// now_ns - deadline_ns, emitting kStreamCancel frames to @p out.
    /// Cleanup is deterministic: state destroyed, budget released.
    void AdvanceTime(double now_ns, FrameBuffer *out);

    const StreamReceiverStats &stats() const { return stats_; }
    const StreamMemoryGauge &gauge() const { return *gauge_; }
    /// Live streams (for quiescent assertions).
    size_t open_streams() const { return streams_.size(); }

  private:
    struct StreamState;

    StatusCode HandleBegin(const Frame &frame, FrameBuffer *out,
                           double now_ns);
    StatusCode HandleChunk(const Frame &frame, FrameBuffer *out,
                           double now_ns);
    StatusCode HandleEnd(const Frame &frame, FrameBuffer *out,
                         double now_ns);
    StatusCode HandleCancel(const Frame &frame, FrameBuffer *out);

    /// Emit a credit/ack frame for @p st (@p nack_status != kOk marks
    /// it a rewind NACK). Extends the cumulative grant unless the
    /// window is wedged.
    void SendCredit(StreamState &st, FrameBuffer *out,
                    StatusCode nack_status = StatusCode::kOk);
    /// Emit an error frame answering @p frame with @p code.
    void SendError(const Frame &frame, StatusCode code,
                   FrameBuffer *out);
    /// Destroy @p key's state and release its budget reservation.
    void Cleanup(uint64_t key);
    /// Grow @p st's gauge charge to the decoder's current peak; false
    /// (stream must cancel) on a budget breach.
    bool RechargeBudget(StreamState &st);

    const proto::DescriptorPool *pool_;
    CodecBackend *backend_;
    StreamConfig config_;
    SinkFactory sinks_;
    std::map<uint16_t, int> method_types_;
    StreamMemoryGauge own_gauge_;
    StreamMemoryGauge *gauge_ = &own_gauge_;
    TenantTable *tenants_ = nullptr;
    DedupCache *dedup_ = nullptr;
    sim::FaultInjector *injector_ = nullptr;
    accel::FrameEngine *engine_ = nullptr;
    /// Live streams by stream key (header idempotency_key).
    std::map<uint64_t, std::unique_ptr<StreamState>> streams_;
    StreamReceiverStats stats_;
};

/// Sender-side counters.
struct StreamSenderStats
{
    uint64_t chunks_sent = 0;
    uint64_t bytes_sent = 0;       ///< includes retransmitted bytes
    uint64_t retransmits = 0;      ///< rewinds (NACK- or timeout-driven)
    uint64_t nacks_received = 0;
    uint64_t window_stalls = 0;    ///< Pump calls blocked on credit
    double stalled_ns = 0;         ///< modeled time spent window-blocked
    uint32_t attempts = 1;         ///< transmission attempt counter
};

/**
 * Client-side stream endpoint: chunks a logical byte stream into
 * credit-paced kStreamChunk frames, rewinds on NACK/timeout, and
 * completes on the receiver's response frame. Single-threaded.
 *
 * The stream bytes are *pulled* from a ByteSource — a pure function of
 * offset — so the sender holds one chunk of buffer, never the logical
 * message (the bench's 1 GiB stream is generated on the fly).
 */
class StreamSender
{
  public:
    /// Fill [buf, buf+cap) with stream bytes starting at @p offset;
    /// returns bytes produced (cap except at the stream tail). Must be
    /// a pure function of offset (rewinds re-read committed ranges).
    using ByteSource = std::function<size_t(uint64_t offset, uint8_t *buf,
                                            size_t cap)>;

    /**
     * @param config      chunking/window/retry policy;
     * @param tenant      isolation domain stamped on every frame;
     * @param method_id   target method;
     * @param call_id     base call id (the attempt counter is folded
     *                    in so retransmitted chunks re-roll their
     *                    hash-gated fault verdicts);
     * @param stream_key  idempotency/stream key (nonzero);
     * @param total_bytes logical stream length (the BEGIN announce);
     * @param source      stream byte producer.
     */
    StreamSender(const StreamConfig &config, uint16_t tenant,
                 uint16_t method_id, uint32_t call_id,
                 uint64_t stream_key, uint64_t total_bytes,
                 ByteSource source);

    /**
     * Advance the transfer at modeled time @p now_ns: emit BEGIN (first
     * call), as many chunks as the credit window allows, END when all
     * bytes are out, and timeout-driven rewinds. Returns frames
     * appended to @p out.
     */
    size_t Pump(FrameBuffer *out, double now_ns);

    /// Consume one receiver frame (credit/NACK, cancel, response,
    /// error) at modeled time @p now_ns.
    void HandleFrame(const Frame &frame, double now_ns);

    /// Transfer finished (successfully or not).
    bool done() const { return done_; }
    /// Final status: kOk on response receipt, the failure class on
    /// cancel/error. Meaningless before done().
    StatusCode final_status() const { return final_status_; }
    /// Response payload bytes (the receiver's close record), valid
    /// when done() with kOk.
    const std::vector<uint8_t> &response() const { return response_; }
    const StreamSenderStats &stats() const { return stats_; }
    uint64_t acked_bytes() const { return acked_; }
    /// Whole-stream CRC32C composed over bytes sent so far (the full
    /// stream's CRC once every byte has gone out at least once).
    uint32_t stream_crc() const { return crc_; }

  private:
    void EmitChunk(FrameBuffer *out, uint64_t offset, size_t len);

    StreamConfig config_;
    uint16_t tenant_;
    uint16_t method_id_;
    uint32_t call_id_;
    uint64_t stream_key_;
    uint64_t total_bytes_;
    ByteSource source_;
    std::vector<uint8_t> chunk_buf_;
    bool begin_sent_ = false;
    bool end_sent_ = false;
    bool done_ = false;
    StatusCode final_status_ = StatusCode::kOk;
    std::vector<uint8_t> response_;
    uint64_t next_offset_ = 0;  ///< send cursor
    uint64_t acked_ = 0;        ///< receiver's committed watermark
    uint64_t window_ = 0;       ///< cumulative credit (send limit)
    /// Whole-stream CRC composed as bytes first go out (monotone:
    /// rewound ranges are never re-folded — the source is pure).
    uint32_t crc_ = 0;
    uint64_t crc_offset_ = 0;
    double last_progress_ns_ = 0;
    double stall_started_ns_ = -1;
    StreamSenderStats stats_;
};

/// Channel counters (valid frames delivered vs faulted).
struct StreamChannelStats
{
    uint64_t frames_pumped = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t truncated = 0;
    uint64_t corrupted = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    /// Mangled frames whose corruption the receiving scan *detected*
    /// (CRC / truncation check) — must equal truncated + corrupted.
    uint64_t detected_by_crc = 0;
};

/**
 * Deterministic lossy wire for stream frames. Pump() scans every frame
 * out of a source buffer and delivers the survivors to a callback,
 * applying the injector's hash-gated chunk faults to kStreamChunk
 * frames (control frames pass clean — the protocol recovers data-plane
 * loss; control-plane loss is modeled by the sender's timeout path).
 * Corrupt/truncate faults mangle real bytes and re-scan them, so the
 * frame CRC machinery performs the actual detection.
 */
class StreamChannel
{
  public:
    using Deliver = std::function<void(const Frame &)>;

    explicit StreamChannel(sim::FaultInjector *injector)
        : injector_(injector)
    {}

    /// Pump all frames of @p wire into @p deliver; @p wire should be
    /// cleared by the caller afterwards. Returns frames delivered.
    size_t Pump(const FrameBuffer &wire, const Deliver &deliver);

    const StreamChannelStats &stats() const { return stats_; }

  private:
    /// Deliver a mangled copy of one frame through a real CRC scan.
    void DeliverMangled(const Frame &frame, bool truncate,
                        const Deliver &deliver);

    sim::FaultInjector *injector_;
    FrameBuffer scratch_;
    StreamChannelStats stats_;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_STREAM_H
