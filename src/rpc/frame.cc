#include "rpc/frame.h"

#include <cstring>

namespace protoacc::rpc {

size_t
FrameBuffer::Append(const FrameHeader &header, const uint8_t *payload)
{
    const size_t start = bytes_.size();
    bytes_.resize(start + FrameHeader::kWireBytes +
                  header.payload_bytes);
    uint8_t *p = bytes_.data() + start;
    std::memcpy(p, &header.payload_bytes, 4);
    std::memcpy(p + 4, &header.call_id, 4);
    std::memcpy(p + 8, &header.method_id, 2);
    p[10] = static_cast<uint8_t>(header.kind);
    if (header.payload_bytes > 0)
        std::memcpy(p + FrameHeader::kWireBytes, payload,
                    header.payload_bytes);
    return FrameHeader::kWireBytes + header.payload_bytes;
}

std::optional<Frame>
FrameBuffer::Next(size_t *offset) const
{
    if (*offset + FrameHeader::kWireBytes > bytes_.size())
        return std::nullopt;
    Frame frame;
    const uint8_t *p = bytes_.data() + *offset;
    std::memcpy(&frame.header.payload_bytes, p, 4);
    std::memcpy(&frame.header.call_id, p + 4, 4);
    std::memcpy(&frame.header.method_id, p + 8, 2);
    frame.header.kind = static_cast<FrameKind>(p[10]);
    if (*offset + FrameHeader::kWireBytes + frame.header.payload_bytes >
        bytes_.size()) {
        return std::nullopt;  // truncated
    }
    frame.payload = p + FrameHeader::kWireBytes;
    *offset += FrameHeader::kWireBytes + frame.header.payload_bytes;
    return frame;
}

}  // namespace protoacc::rpc
