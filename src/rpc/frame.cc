#include "rpc/frame.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"

namespace protoacc::rpc {

namespace {

void
WriteHeader(uint8_t *p, const FrameHeader &header, bool with_crc)
{
    std::memcpy(p, &header.payload_bytes, 4);
    std::memcpy(p + 4, &header.call_id, 4);
    std::memcpy(p + 8, &header.method_id, 2);
    p[10] = static_cast<uint8_t>(header.kind);
    p[11] = static_cast<uint8_t>(header.status);
    p[12] = header.version;
    // The buffer owns the CRC bit; the remaining flag bits are reserved
    // and always written as zero at this version.
    p[13] = with_crc ? FrameHeader::kFlagHasCrc : 0;
    std::memcpy(p + 14, &header.tenant_id, 2);
    std::memcpy(p + 16, &header.idempotency_key, 8);
    std::memcpy(p + 24, &header.schema_fp, 8);
    std::memset(p + FrameHeader::kCrcOffset, 0, 4);  // sealed later
}

uint32_t
FrameCrc(const uint8_t *frame, size_t payload_bytes)
{
    // Covers every header byte before the CRC field itself, then the
    // payload; the CRC field is excluded (it cannot cover itself).
    const uint32_t head = Crc32c(frame, FrameHeader::kCrcOffset);
    return Crc32cExtend(head, frame + FrameHeader::kWireBytes,
                        payload_bytes);
}

}  // namespace

size_t
PackStreamBegin(const StreamBeginInfo &info, uint8_t *out)
{
    std::memcpy(out, &info.total_bytes, 8);
    std::memcpy(out + 8, &info.chunk_bytes, 4);
    return StreamBeginInfo::kWireBytes;
}

size_t
PackStreamChunk(const StreamChunkInfo &info, uint8_t *out)
{
    std::memcpy(out, &info.offset, 8);
    return StreamChunkInfo::kWireBytes;
}

size_t
PackStreamEnd(const StreamEndInfo &info, uint8_t *out)
{
    std::memcpy(out, &info.total_bytes, 8);
    std::memcpy(out + 8, &info.stream_crc, 4);
    return StreamEndInfo::kWireBytes;
}

size_t
PackStreamCredit(const StreamCreditInfo &info, uint8_t *out)
{
    std::memcpy(out, &info.acked_bytes, 8);
    std::memcpy(out + 8, &info.window_bytes, 8);
    return StreamCreditInfo::kWireBytes;
}

bool
UnpackStreamBegin(const uint8_t *payload, size_t len, StreamBeginInfo *out)
{
    if (len < StreamBeginInfo::kWireBytes)
        return false;
    std::memcpy(&out->total_bytes, payload, 8);
    std::memcpy(&out->chunk_bytes, payload + 8, 4);
    return true;
}

bool
UnpackStreamChunk(const uint8_t *payload, size_t len, StreamChunkInfo *out)
{
    if (len < StreamChunkInfo::kWireBytes)
        return false;
    std::memcpy(&out->offset, payload, 8);
    return true;
}

bool
UnpackStreamEnd(const uint8_t *payload, size_t len, StreamEndInfo *out)
{
    if (len < StreamEndInfo::kWireBytes)
        return false;
    std::memcpy(&out->total_bytes, payload, 8);
    std::memcpy(&out->stream_crc, payload + 8, 4);
    return true;
}

bool
UnpackStreamCredit(const uint8_t *payload, size_t len,
                   StreamCreditInfo *out)
{
    if (len < StreamCreditInfo::kWireBytes)
        return false;
    std::memcpy(&out->acked_bytes, payload, 8);
    std::memcpy(&out->window_bytes, payload + 8, 8);
    return true;
}

void
FrameBuffer::SealFrame(size_t frame_start, size_t payload_bytes)
{
    if (!crc_enabled_)
        return;
    uint8_t *p = bytes_.data() + frame_start;
    const uint32_t crc = FrameCrc(p, payload_bytes);
    std::memcpy(p + FrameHeader::kCrcOffset, &crc, 4);
    if (cost_sink_ != nullptr)
        cost_sink_->OnCrc(FrameHeader::kCrcOffset + payload_bytes);
}

size_t
FrameBuffer::Append(const FrameHeader &header, const uint8_t *payload)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    const size_t start = bytes_.size();
    bytes_.resize(start + FrameHeader::kWireBytes +
                  header.payload_bytes);
    uint8_t *p = bytes_.data() + start;
    WriteHeader(p, header, crc_enabled_);
    if (cost_sink_ != nullptr)
        cost_sink_->OnFrameHeader();
    if (header.payload_bytes > 0) {
        std::memcpy(p + FrameHeader::kWireBytes, payload,
                    header.payload_bytes);
        ++payload_copies_;
        payload_copy_bytes_ += header.payload_bytes;
    }
    SealFrame(start, header.payload_bytes);
    return FrameHeader::kWireBytes + header.payload_bytes;
}

uint8_t *
FrameBuffer::ReserveFrame(const FrameHeader &header,
                          size_t max_payload_bytes)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    reserved_at_ = bytes_.size();
    reserved_max_ = max_payload_bytes;
    bytes_.resize(reserved_at_ + FrameHeader::kWireBytes +
                  max_payload_bytes);
    uint8_t *p = bytes_.data() + reserved_at_;
    FrameHeader h = header;
    h.payload_bytes = 0;  // backpatched by CommitFrame
    WriteHeader(p, h, crc_enabled_);
    if (cost_sink_ != nullptr)
        cost_sink_->OnFrameHeader();
    return p + FrameHeader::kWireBytes;
}

void
FrameBuffer::CommitFrame(size_t payload_bytes)
{
    PA_CHECK(reserved_at_ != kNoReservation);
    PA_CHECK_LE(payload_bytes, reserved_max_);
    const uint32_t wire_size = static_cast<uint32_t>(payload_bytes);
    std::memcpy(bytes_.data() + reserved_at_, &wire_size, 4);
    // Trimming never reallocates, so bytes serialized into the slot
    // stay put.
    bytes_.resize(reserved_at_ + FrameHeader::kWireBytes +
                  payload_bytes);
    SealFrame(reserved_at_, payload_bytes);
    reserved_at_ = kNoReservation;
    reserved_max_ = 0;
}

void
FrameBuffer::CancelFrame()
{
    PA_CHECK(reserved_at_ != kNoReservation);
    bytes_.resize(reserved_at_);
    reserved_at_ = kNoReservation;
    reserved_max_ = 0;
}

void
FrameBuffer::Truncate(size_t n)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    if (n < bytes_.size())
        bytes_.resize(n);
}

std::optional<Frame>
FrameBuffer::Next(size_t *offset, StatusCode *error) const
{
    StatusCode scratch;
    StatusCode &err = error != nullptr ? *error : scratch;
    err = StatusCode::kOk;

    if (*offset + FrameHeader::kWireBytes > bytes_.size())
        return std::nullopt;
    Frame frame;
    const uint8_t *p = bytes_.data() + *offset;
    std::memcpy(&frame.header.payload_bytes, p, 4);
    std::memcpy(&frame.header.call_id, p + 4, 4);
    std::memcpy(&frame.header.method_id, p + 8, 2);
    frame.header.kind = static_cast<FrameKind>(p[10]);
    // An out-of-range status byte (corrupted in flight) degrades to
    // kInternal rather than poisoning downstream switches.
    frame.header.status =
        p[11] < kNumStatusCodes ? static_cast<StatusCode>(p[11])
                                : StatusCode::kInternal;
    frame.header.version = p[12];
    frame.header.flags = p[13];
    std::memcpy(&frame.header.tenant_id, p + 14, 2);
    std::memcpy(&frame.header.idempotency_key, p + 16, 8);
    std::memcpy(&frame.header.schema_fp, p + 24, 8);
    if (cost_sink_ != nullptr)
        cost_sink_->OnFrameHeader();
    if (*offset + FrameHeader::kWireBytes + frame.header.payload_bytes >
        bytes_.size()) {
        return std::nullopt;  // truncated
    }

    // Integrity before trust: verify the CRC (when this side has
    // verification on) over the *raw* bytes, so a flipped bit anywhere
    // — length, ids, flags, payload — is caught here instead of being
    // parsed downstream. An enforcing reader also rejects frames whose
    // CRC flag is *missing*: every writer on this stack stamps a CRC
    // when the check is on, so a cleared flag bit is itself in-flight
    // corruption (and must not become a verification bypass). The
    // verify is priced like the compute: one pass over header+payload.
    const bool has_crc =
        (frame.header.flags & FrameHeader::kFlagHasCrc) != 0;
    bool crc_ok = true;
    if (crc_enabled_) {
        if (!has_crc) {
            crc_ok = false;
        } else {
            if (cost_sink_ != nullptr)
                cost_sink_->OnCrc(FrameHeader::kCrcOffset +
                                  frame.header.payload_bytes);
            uint32_t wire_crc;
            std::memcpy(&wire_crc, p + FrameHeader::kCrcOffset, 4);
            crc_ok =
                FrameCrc(p, frame.header.payload_bytes) == wire_crc;
        }
    }

    if (frame.header.version != FrameHeader::kFrameVersion) {
        // A foreign version byte is either a genuinely newer peer or a
        // corrupted frame. The CRC disambiguates: if the current-layout
        // integrity check fails too, report the corruption (retryable
        // kDataLoss) rather than a permanent version rejection.
        if (crc_enabled_ && !crc_ok) {
            err = StatusCode::kDataLoss;
            *offset +=
                FrameHeader::kWireBytes + frame.header.payload_bytes;
        } else {
            err = StatusCode::kUnimplemented;
        }
        return std::nullopt;
    }
    if (!crc_ok) {
        err = StatusCode::kDataLoss;
        // The length field is covered by the (failed) CRC, so this
        // advance is best-effort: it lands on the next frame whenever
        // the corruption hit elsewhere, and the scan bounds-checked it
        // above either way.
        *offset += FrameHeader::kWireBytes + frame.header.payload_bytes;
        return std::nullopt;
    }

    frame.payload = p + FrameHeader::kWireBytes;
    *offset += FrameHeader::kWireBytes + frame.header.payload_bytes;
    return frame;
}

}  // namespace protoacc::rpc
