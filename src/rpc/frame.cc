#include "rpc/frame.h"

#include <cstring>

#include "common/check.h"

namespace protoacc::rpc {

namespace {

void
WriteHeader(uint8_t *p, const FrameHeader &header)
{
    std::memcpy(p, &header.payload_bytes, 4);
    std::memcpy(p + 4, &header.call_id, 4);
    std::memcpy(p + 8, &header.method_id, 2);
    p[10] = static_cast<uint8_t>(header.kind);
    p[11] = static_cast<uint8_t>(header.status);
}

}  // namespace

size_t
FrameBuffer::Append(const FrameHeader &header, const uint8_t *payload)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    const size_t start = bytes_.size();
    bytes_.resize(start + FrameHeader::kWireBytes +
                  header.payload_bytes);
    uint8_t *p = bytes_.data() + start;
    WriteHeader(p, header);
    if (header.payload_bytes > 0) {
        std::memcpy(p + FrameHeader::kWireBytes, payload,
                    header.payload_bytes);
        ++payload_copies_;
        payload_copy_bytes_ += header.payload_bytes;
    }
    return FrameHeader::kWireBytes + header.payload_bytes;
}

uint8_t *
FrameBuffer::ReserveFrame(const FrameHeader &header,
                          size_t max_payload_bytes)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    reserved_at_ = bytes_.size();
    reserved_max_ = max_payload_bytes;
    bytes_.resize(reserved_at_ + FrameHeader::kWireBytes +
                  max_payload_bytes);
    uint8_t *p = bytes_.data() + reserved_at_;
    FrameHeader h = header;
    h.payload_bytes = 0;  // backpatched by CommitFrame
    WriteHeader(p, h);
    return p + FrameHeader::kWireBytes;
}

void
FrameBuffer::CommitFrame(size_t payload_bytes)
{
    PA_CHECK(reserved_at_ != kNoReservation);
    PA_CHECK_LE(payload_bytes, reserved_max_);
    const uint32_t wire_size = static_cast<uint32_t>(payload_bytes);
    std::memcpy(bytes_.data() + reserved_at_, &wire_size, 4);
    // Trimming never reallocates, so bytes serialized into the slot
    // stay put.
    bytes_.resize(reserved_at_ + FrameHeader::kWireBytes +
                  payload_bytes);
    reserved_at_ = kNoReservation;
    reserved_max_ = 0;
}

void
FrameBuffer::CancelFrame()
{
    PA_CHECK(reserved_at_ != kNoReservation);
    bytes_.resize(reserved_at_);
    reserved_at_ = kNoReservation;
    reserved_max_ = 0;
}

void
FrameBuffer::Truncate(size_t n)
{
    PA_CHECK_EQ(reserved_at_, kNoReservation);
    if (n < bytes_.size())
        bytes_.resize(n);
}

std::optional<Frame>
FrameBuffer::Next(size_t *offset) const
{
    if (*offset + FrameHeader::kWireBytes > bytes_.size())
        return std::nullopt;
    Frame frame;
    const uint8_t *p = bytes_.data() + *offset;
    std::memcpy(&frame.header.payload_bytes, p, 4);
    std::memcpy(&frame.header.call_id, p + 4, 4);
    std::memcpy(&frame.header.method_id, p + 8, 2);
    frame.header.kind = static_cast<FrameKind>(p[10]);
    // An out-of-range status byte (corrupted in flight) degrades to
    // kInternal rather than poisoning downstream switches.
    frame.header.status =
        p[11] < kNumStatusCodes ? static_cast<StatusCode>(p[11])
                                : StatusCode::kInternal;
    if (*offset + FrameHeader::kWireBytes + frame.header.payload_bytes >
        bytes_.size()) {
        return std::nullopt;  // truncated
    }
    frame.payload = p + FrameHeader::kWireBytes;
    *offset += FrameHeader::kWireBytes + frame.header.payload_bytes;
    return frame;
}

}  // namespace protoacc::rpc
