#include "rpc/rpc.h"

#include <algorithm>
#include <cstring>

namespace protoacc::rpc {

namespace {

double
CyclesToNs(double cycles, double freq_ghz)
{
    return cycles / freq_ghz;
}

/// Append an error frame carrying @p code and a human-readable detail
/// payload; returns @p code so call sites can `return AppendError(...)`.
StatusCode
AppendError(FrameBuffer *reply, FrameHeader header, StatusCode code)
{
    const char *detail = StatusCodeName(code);
    header.kind = FrameKind::kError;
    header.status = code;
    header.payload_bytes =
        static_cast<uint32_t>(std::strlen(detail));
    reply->Append(header, reinterpret_cast<const uint8_t *>(detail));
    return code;
}

}  // namespace

StatusCode
RpcServer::HandleFrame(const Frame &frame, FrameBuffer *reply)
{
    // Steady-state resource reuse: the previous call's request/response
    // objects are dead (their serialized reply left the arena before
    // this call), so reclaim the blocks instead of growing forever.
    arena_.Reset();

    auto it = methods_.find(frame.header.method_id);
    FrameHeader out_header;
    out_header.call_id = frame.header.call_id;
    out_header.method_id = frame.header.method_id;
    if (it == methods_.end())
        return AppendError(reply, out_header, StatusCode::kUnknownMethod);
    const Method &method = it->second;

    proto::Message request =
        proto::Message::Create(&arena_, *pool_, method.request_type);
    const StatusCode parse_status = backend_->Deserialize(
        frame.payload, frame.header.payload_bytes, &request);
    if (!StatusOk(parse_status))
        return AppendError(reply, out_header, parse_status);

    proto::Message response =
        proto::Message::Create(&arena_, *pool_, method.response_type);
    method.handler(request, response);

    // Zero-copy response: reserve the frame in the reply stream and
    // serialize straight into it; CommitFrame backpatches
    // payload_bytes.
    const size_t size = backend_->SerializedSize(response);
    out_header.kind = FrameKind::kResponse;
    uint8_t *dst = reply->ReserveFrame(out_header, size);
    const size_t written = backend_->SerializeTo(response, dst, size);
    if (written != size) {
        // The engine failed mid-serialization (e.g. an injected unit
        // kill): withdraw the half-built frame and report the cause.
        reply->CancelFrame();
        StatusCode cause = backend_->last_status();
        if (StatusOk(cause))
            cause = StatusCode::kInternal;
        return AppendError(reply, out_header, cause);
    }
    reply->CommitFrame(written);
    return StatusCode::kOk;
}

bool
RpcSession::ApplyChannelFault(FrameBuffer *buf)
{
    if (fault_injector_ == nullptr)
        return true;
    switch (fault_injector_->SampleChannelFault()) {
      case sim::ChannelFaultKind::kDrop:
        return false;
      case sim::ChannelFaultKind::kTruncate:
        buf->Truncate(fault_injector_->TruncatedLength(buf->bytes()));
        return true;
      case sim::ChannelFaultKind::kCorrupt:
        fault_injector_->CorruptBytes(buf->mutable_data(), buf->bytes());
        return true;
      case sim::ChannelFaultKind::kNone:
        break;
    }
    return true;
}

StatusCode
RpcSession::CallOnce(uint16_t method_id, const proto::Message &request,
                     proto::Message *response)
{
    ++breakdown_.attempts;

    // Client serializes the request.
    const double client_before = backend_->codec_cycles();
    const std::vector<uint8_t> payload = backend_->Serialize(request);
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - client_before,
                   backend_->freq_ghz());
    if (!StatusOk(backend_->last_status()))
        return backend_->last_status();

    FrameBuffer to_server;
    FrameHeader header;
    header.call_id = next_call_id_++;
    header.method_id = method_id;
    header.kind = FrameKind::kRequest;
    header.payload_bytes = static_cast<uint32_t>(payload.size());
    to_server.Append(header, payload.data());
    breakdown_.network_ns += channel_.TransferNs(to_server.bytes());
    if (!ApplyChannelFault(&to_server))
        return StatusCode::kUnavailable;  // request lost in flight

    // Server handles the frame (a mangled stream never parses into a
    // frame: from the server's view the request simply never arrived).
    size_t offset = 0;
    const std::optional<Frame> frame = to_server.Next(&offset);
    if (!frame.has_value())
        return StatusCode::kUnavailable;
    FrameBuffer to_client;
    const double server_before = server_->backend().codec_cycles();
    (void)server_->HandleFrame(*frame, &to_client);
    breakdown_.server_codec_ns +=
        CyclesToNs(server_->backend().codec_cycles() - server_before,
                   server_->backend().freq_ghz());
    breakdown_.network_ns += channel_.TransferNs(to_client.bytes());
    if (!ApplyChannelFault(&to_client))
        return StatusCode::kUnavailable;  // reply lost in flight

    // Client decodes the reply frame; the structured status on error
    // frames tells it exactly why the call failed (and whether a retry
    // can help).
    size_t reply_offset = 0;
    const std::optional<Frame> reply = to_client.Next(&reply_offset);
    if (!reply.has_value())
        return StatusCode::kUnavailable;
    if (reply->header.kind == FrameKind::kError) {
        return StatusOk(reply->header.status) ? StatusCode::kInternal
                                              : reply->header.status;
    }
    if (reply->header.kind != FrameKind::kResponse ||
        reply->header.call_id != header.call_id) {
        return StatusCode::kUnavailable;  // corrupted in flight
    }
    const double deser_before = backend_->codec_cycles();
    const StatusCode decode_status = backend_->Deserialize(
        reply->payload, reply->header.payload_bytes, response);
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - deser_before,
                   backend_->freq_ghz());
    return decode_status;
}

StatusCode
RpcSession::Call(uint16_t method_id, const proto::Message &request,
                 proto::Message *response)
{
    ++breakdown_.calls;
    const uint32_t max_attempts =
        std::max<uint32_t>(retry_policy_.max_attempts, 1);
    double backoff = retry_policy_.initial_backoff_ns;
    StatusCode status = StatusCode::kInternal;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff with uniform jitter: modeled sleep,
            // accumulated into the breakdown rather than slept.
            ++breakdown_.retries;
            const double jitter =
                1.0 + retry_policy_.jitter_fraction *
                          (2.0 * rng_.NextDouble() - 1.0);
            breakdown_.backoff_ns += backoff * jitter;
            backoff *= retry_policy_.backoff_multiplier;
        }
        status = CallOnce(method_id, request, response);
        if (StatusOk(status) || !StatusIsRetryable(status))
            break;
    }
    last_error_ = status;
    if (!StatusOk(status))
        ++breakdown_.failures;
    return status;
}

}  // namespace protoacc::rpc
