#include "rpc/rpc.h"

namespace protoacc::rpc {

namespace {

double
CyclesToNs(double cycles, double freq_ghz)
{
    return cycles / freq_ghz;
}

}  // namespace

bool
RpcServer::HandleFrame(const Frame &frame, FrameBuffer *reply)
{
    // Steady-state resource reuse: the previous call's request/response
    // objects are dead (their serialized reply left the arena before
    // this call), so reclaim the blocks instead of growing forever.
    arena_.Reset();

    auto it = methods_.find(frame.header.method_id);
    FrameHeader out_header;
    out_header.call_id = frame.header.call_id;
    out_header.method_id = frame.header.method_id;
    if (it == methods_.end()) {
        out_header.kind = FrameKind::kError;
        out_header.payload_bytes = 0;
        reply->Append(out_header, nullptr);
        return false;
    }
    const Method &method = it->second;

    proto::Message request =
        proto::Message::Create(&arena_, *pool_, method.request_type);
    if (!backend_->Deserialize(frame.payload,
                               frame.header.payload_bytes, &request)) {
        out_header.kind = FrameKind::kError;
        out_header.payload_bytes = 0;
        reply->Append(out_header, nullptr);
        return false;
    }

    proto::Message response =
        proto::Message::Create(&arena_, *pool_, method.response_type);
    method.handler(request, response);

    // Zero-copy response: reserve the frame in the reply stream and
    // serialize straight into it; CommitFrame backpatches
    // payload_bytes.
    const size_t size = backend_->SerializedSize(response);
    out_header.kind = FrameKind::kResponse;
    uint8_t *dst = reply->ReserveFrame(out_header, size);
    const size_t written = backend_->SerializeTo(response, dst, size);
    PA_CHECK_EQ(written, size);
    reply->CommitFrame(written);
    return true;
}

bool
RpcSession::Call(uint16_t method_id, const proto::Message &request,
                 proto::Message *response)
{
    ++breakdown_.calls;

    // Client serializes the request.
    const double client_before = backend_->codec_cycles();
    const std::vector<uint8_t> payload = backend_->Serialize(request);
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - client_before,
                   backend_->freq_ghz());

    FrameBuffer to_server;
    FrameHeader header;
    header.call_id = next_call_id_++;
    header.method_id = method_id;
    header.kind = FrameKind::kRequest;
    header.payload_bytes = static_cast<uint32_t>(payload.size());
    to_server.Append(header, payload.data());
    breakdown_.network_ns += channel_.TransferNs(to_server.bytes());

    // Server handles the frame.
    size_t offset = 0;
    const std::optional<Frame> frame = to_server.Next(&offset);
    PA_CHECK(frame.has_value());
    FrameBuffer to_client;
    const double server_before = server_->backend().codec_cycles();
    const bool handled = server_->HandleFrame(*frame, &to_client);
    breakdown_.server_codec_ns +=
        CyclesToNs(server_->backend().codec_cycles() - server_before,
                   server_->backend().freq_ghz());
    breakdown_.network_ns += channel_.TransferNs(to_client.bytes());
    if (!handled) {
        ++breakdown_.failures;
        return false;
    }

    // Client deserializes the response.
    size_t reply_offset = 0;
    const std::optional<Frame> reply = to_client.Next(&reply_offset);
    PA_CHECK(reply.has_value());
    PA_CHECK_EQ(reply->header.call_id, header.call_id);
    const double deser_before = backend_->codec_cycles();
    const bool ok = backend_->Deserialize(
        reply->payload, reply->header.payload_bytes, response);
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - deser_before,
                   backend_->freq_ghz());
    if (!ok)
        ++breakdown_.failures;
    return ok;
}

}  // namespace protoacc::rpc
