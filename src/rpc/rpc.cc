#include "rpc/rpc.h"

#include <algorithm>
#include <cstring>

namespace protoacc::rpc {

namespace {

double
CyclesToNs(double cycles, double freq_ghz)
{
    return cycles / freq_ghz;
}

/// Append an error frame carrying @p code and a human-readable detail
/// payload; returns @p code so call sites can `return AppendError(...)`.
/// @p detail defaults to the code's name; pass a richer string when
/// the failure has call-specific context (e.g. which schema
/// fingerprint was rejected).
StatusCode
AppendError(FrameBuffer *reply, FrameHeader header, StatusCode code,
            const char *detail = nullptr)
{
    if (detail == nullptr)
        detail = StatusCodeName(code);
    header.kind = FrameKind::kError;
    header.status = code;
    header.payload_bytes =
        static_cast<uint32_t>(std::strlen(detail));
    reply->Append(header, reinterpret_cast<const uint8_t *>(detail));
    return code;
}

/// splitmix64 finalizer: the backoff-jitter hash. Counter-based (pure
/// function of its input) so jitter never depends on how many draws
/// other calls or sessions made before this one.
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

StatusCode
RpcServer::HandleFrame(const Frame &frame, FrameBuffer *reply)
{
    // Steady-state resource reuse: the previous call's request/response
    // objects are dead (their serialized reply left the arena before
    // this call), so reclaim the blocks instead of growing forever.
    arena_.Reset();

    auto it = methods_.find(frame.header.method_id);
    FrameHeader out_header;
    out_header.call_id = frame.header.call_id;
    out_header.method_id = frame.header.method_id;
    out_header.tenant_id = frame.header.tenant_id;
    out_header.idempotency_key = frame.header.idempotency_key;
    out_header.schema_fp = schema_fp_;

    // Schema negotiation (wire v5): a sender announcing a schema
    // version this server's registry has never seen must get a
    // structured rejection *before* any parse or dedup work — decoding
    // bytes against the wrong schema could misparse silently, which is
    // strictly worse than failing. Fingerprint 0 (legacy,
    // non-negotiating sender) is accepted as the server's own version.
    if (schemas_ != nullptr && frame.header.schema_fp != 0 &&
        !schemas_->Knows(frame.header.schema_fp)) {
        ++schema_rejects_;
        const std::string detail =
            "unknown schema fingerprint " +
            SchemaFingerprintName(frame.header.schema_fp) + " (" +
            std::to_string(schemas_->size()) +
            " versions registered); re-negotiate schema version";
        return AppendError(reply, out_header,
                           StatusCode::kFailedPrecondition,
                           detail.c_str());
    }

    // Exactly-once: a retry of an already-committed call replays the
    // cached response instead of re-executing the handler. Only
    // committed successes are cached (below), so transient failures
    // still re-execute on retry — that is the retry's whole point.
    if (dedup_ != nullptr &&
        frame.header.kind == FrameKind::kRequest &&
        frame.header.idempotency_key != 0) {
        // The probe is priced on whatever sink frames this call's reply
        // — the host model on the software path, the device frame
        // engine when the datapath is offloaded.
        if (reply->cost_sink() != nullptr)
            reply->cost_sink()->OnDedupProbe();
        FrameHeader cached_header;
        std::vector<uint8_t> cached_payload;
        if (dedup_->Lookup(frame.header.tenant_id,
                           frame.header.idempotency_key, &cached_header,
                           &cached_payload)) {
            // Re-stamp with this attempt's call id so the client's
            // reply matching works; everything else is the committed
            // answer byte for byte.
            cached_header.call_id = frame.header.call_id;
            reply->Append(cached_header, cached_payload.data());
            return StatusCode::kOk;
        }
    }

    if (it == methods_.end())
        return AppendError(reply, out_header, StatusCode::kUnknownMethod);
    const Method &method = it->second;

    proto::Message request =
        proto::Message::Create(&arena_, *pool_, method.request_type);
    const StatusCode parse_status = backend_->Deserialize(
        frame.payload, frame.header.payload_bytes, &request);
    if (!StatusOk(parse_status))
        return AppendError(reply, out_header, parse_status);

    proto::Message response =
        proto::Message::Create(&arena_, *pool_, method.response_type);
    if (exec_observer_)
        exec_observer_(frame.header.tenant_id,
                       frame.header.idempotency_key);
    method.handler(request, response);

    // Zero-copy response: reserve the frame in the reply stream and
    // serialize straight into it; CommitFrame backpatches
    // payload_bytes.
    const size_t size = backend_->SerializedSize(response);
    out_header.kind = FrameKind::kResponse;
    const size_t reply_start = reply->bytes();
    uint8_t *dst = reply->ReserveFrame(out_header, size);
    const size_t written = backend_->SerializeTo(response, dst, size);
    if (written != size) {
        // The engine failed mid-serialization (e.g. an injected unit
        // kill): withdraw the half-built frame and report the cause.
        reply->CancelFrame();
        StatusCode cause = backend_->last_status();
        if (StatusOk(cause))
            cause = StatusCode::kInternal;
        return AppendError(reply, out_header, cause);
    }
    reply->CommitFrame(written);
    if (dedup_ != nullptr && out_header.idempotency_key != 0) {
        // Remember the committed answer for this key: the payload sits
        // in the reply stream right where we reserved it.
        if (reply->cost_sink() != nullptr)
            reply->cost_sink()->OnDedupProbe();
        out_header.payload_bytes = static_cast<uint32_t>(written);
        dedup_->Insert(out_header.tenant_id,
                       out_header.idempotency_key, out_header,
                       reply->data() + reply_start +
                           FrameHeader::kWireBytes,
                       written);
    }
    return StatusCode::kOk;
}

bool
RpcSession::ApplyChannelFault(FrameBuffer *buf)
{
    if (fault_injector_ == nullptr)
        return true;
    switch (fault_injector_->SampleChannelFault()) {
      case sim::ChannelFaultKind::kDrop:
        return false;
      case sim::ChannelFaultKind::kTruncate:
        buf->Truncate(fault_injector_->TruncatedLength(buf->bytes()));
        return true;
      case sim::ChannelFaultKind::kCorrupt:
        fault_injector_->CorruptBytes(buf->mutable_data(), buf->bytes());
        return true;
      case sim::ChannelFaultKind::kNone:
        break;
    }
    return true;
}

StatusCode
RpcSession::CallOnce(uint16_t method_id, uint32_t call_id,
                     uint64_t idempotency_key,
                     const proto::Message &request,
                     proto::Message *response)
{
    ++breakdown_.attempts;

    // Client serializes and frames the request; the frame CRC is
    // stamped by Append and charged (OnCrc) to the client's host cost
    // model inside the same measurement window as the codec work.
    const double client_before = backend_->codec_cycles();
    const std::vector<uint8_t> payload = backend_->Serialize(request);
    if (!StatusOk(backend_->last_status())) {
        breakdown_.client_codec_ns +=
            CyclesToNs(backend_->codec_cycles() - client_before,
                       backend_->freq_ghz());
        return backend_->last_status();
    }

    FrameBuffer to_server;
    to_server.set_crc_enabled(crc_enabled_);
    to_server.SetCostSink(backend_->host_cost_sink());
    FrameHeader header;
    header.call_id = call_id;
    header.method_id = method_id;
    header.kind = FrameKind::kRequest;
    header.payload_bytes = static_cast<uint32_t>(payload.size());
    header.tenant_id = tenant_id_;
    header.idempotency_key = idempotency_key;
    header.schema_fp = schema_fp_;
    to_server.Append(header, payload.data());
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - client_before,
                   backend_->freq_ghz());
    breakdown_.network_ns += channel_.TransferNs(to_server.bytes());
    if (!ApplyChannelFault(&to_server))
        return StatusCode::kUnavailable;  // request lost in flight

    // Server scans the stream — CRC verification happens here, priced
    // on the server's host model — and handles the frame. A mangled
    // stream either fails the integrity check (detected corruption,
    // kDataLoss) or never parses into a frame (from the server's view
    // the request simply never arrived).
    CodecBackend &server_backend = server_->mutable_backend();
    to_server.SetCostSink(server_backend.host_cost_sink());
    const double server_before = server_backend.codec_cycles();
    size_t offset = 0;
    StatusCode scan_error = StatusCode::kOk;
    const std::optional<Frame> frame =
        to_server.Next(&offset, &scan_error);
    if (!frame.has_value()) {
        breakdown_.server_codec_ns +=
            CyclesToNs(server_backend.codec_cycles() - server_before,
                       server_backend.freq_ghz());
        if (scan_error == StatusCode::kDataLoss)
            ++breakdown_.integrity_rejects;
        return StatusOk(scan_error) ? StatusCode::kUnavailable
                                    : scan_error;
    }
    FrameBuffer to_client;
    to_client.set_crc_enabled(crc_enabled_);
    to_client.SetCostSink(server_backend.host_cost_sink());
    (void)server_->HandleFrame(*frame, &to_client);
    breakdown_.server_codec_ns +=
        CyclesToNs(server_backend.codec_cycles() - server_before,
                   server_backend.freq_ghz());
    breakdown_.network_ns += channel_.TransferNs(to_client.bytes());
    if (!ApplyChannelFault(&to_client))
        return StatusCode::kUnavailable;  // reply lost in flight

    // Client decodes the reply frame — verifying its CRC on the client
    // host model — and the structured status on error frames tells it
    // exactly why the call failed (and whether a retry can help).
    to_client.SetCostSink(backend_->host_cost_sink());
    const double deser_before = backend_->codec_cycles();
    size_t reply_offset = 0;
    StatusCode reply_scan_error = StatusCode::kOk;
    const std::optional<Frame> reply =
        to_client.Next(&reply_offset, &reply_scan_error);
    if (!reply.has_value()) {
        breakdown_.client_codec_ns +=
            CyclesToNs(backend_->codec_cycles() - deser_before,
                       backend_->freq_ghz());
        if (reply_scan_error == StatusCode::kDataLoss) {
            ++breakdown_.integrity_rejects;
            if (crc_reject_reporter_)
                crc_reject_reporter_();
        }
        return StatusOk(reply_scan_error) ? StatusCode::kUnavailable
                                          : reply_scan_error;
    }
    if (reply->header.kind == FrameKind::kError) {
        return StatusOk(reply->header.status) ? StatusCode::kInternal
                                              : reply->header.status;
    }
    if (reply->header.kind != FrameKind::kResponse ||
        reply->header.call_id != call_id) {
        return StatusCode::kUnavailable;  // corrupted in flight
    }
    const StatusCode decode_status = backend_->Deserialize(
        reply->payload, reply->header.payload_bytes, response);
    breakdown_.client_codec_ns +=
        CyclesToNs(backend_->codec_cycles() - deser_before,
                   backend_->freq_ghz());
    return decode_status;
}

StatusCode
RpcSession::Call(uint16_t method_id, const proto::Message &request,
                 proto::Message *response)
{
    ++breakdown_.calls;
    // One logical call = one call id = one idempotency key, however
    // many wire attempts it takes: the key (session id in the high
    // half, so concurrent sessions sharing a server never collide) is
    // what the dedup cache recognizes a retry by.
    const uint32_t call_id = next_call_id_++;
    const uint64_t idempotency_key =
        (static_cast<uint64_t>(session_id_) << 32) | call_id;
    const uint32_t max_attempts =
        std::max<uint32_t>(retry_policy_.max_attempts, 1);
    // Retry budget: each completed call earns a fractional token, each
    // retry spends a whole one, so at steady state retries add at most
    // retry_budget_ratio extra load — the client half of retry-storm
    // containment (the server half is the circuit breaker).
    if (retry_policy_.retry_budget_ratio > 0)
        retry_tokens_ =
            std::min(retry_policy_.retry_budget_cap,
                     retry_tokens_ + retry_policy_.retry_budget_ratio);
    double backoff = retry_policy_.initial_backoff_ns;
    StatusCode status = StatusCode::kInternal;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            if (retry_policy_.retry_budget_ratio > 0) {
                if (retry_tokens_ < 1.0) {
                    ++breakdown_.retries_suppressed;
                    break;  // budget empty: fail rather than amplify
                }
                retry_tokens_ -= 1.0;
            }
            // Exponential backoff with uniform jitter: modeled sleep,
            // accumulated into the breakdown rather than slept. The
            // jitter is a counter-based hash of (seed, key, attempt) —
            // deterministic per call, independent of every other
            // call's retry behavior.
            ++breakdown_.retries;
            const uint64_t h = Mix64(
                jitter_seed_ ^ Mix64(idempotency_key + attempt));
            const double unit =
                static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
            const double jitter =
                1.0 +
                retry_policy_.jitter_fraction * (2.0 * unit - 1.0);
            double delay = backoff * jitter;
            if (retry_policy_.max_backoff_ns > 0)
                delay = std::min(delay, retry_policy_.max_backoff_ns);
            breakdown_.backoff_ns += delay;
            backoff *= retry_policy_.backoff_multiplier;
        }
        status = CallOnce(method_id, call_id, idempotency_key, request,
                          response);
        if (StatusOk(status) || !StatusIsRetryable(status))
            break;
    }
    last_error_ = status;
    if (!StatusOk(status))
        ++breakdown_.failures;
    return status;
}

}  // namespace protoacc::rpc
