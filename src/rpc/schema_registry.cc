#include "rpc/schema_registry.h"

#include "common/check.h"
#include "proto/codec_generated.h"

namespace protoacc::rpc {

uint64_t
SchemaRegistry::Register(const proto::DescriptorPool &pool,
                         std::string label)
{
    PA_CHECK(pool.compiled());
    const uint64_t fp = proto::SchemaFingerprint(pool);
    if (Knows(fp))
        return fp;
    versions_.push_back(VersionEntry{fp, &pool, std::move(label)});
    return fp;
}

bool
SchemaRegistry::Knows(uint64_t fingerprint) const
{
    return Find(fingerprint) != nullptr;
}

const SchemaRegistry::VersionEntry *
SchemaRegistry::Find(uint64_t fingerprint) const
{
    for (const VersionEntry &v : versions_)
        if (v.fingerprint == fingerprint)
            return &v;
    return nullptr;
}

std::string
SchemaFingerprintName(uint64_t fingerprint)
{
    static const char kHex[] = "0123456789abcdef";
    std::string out = "0x";
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(kHex[(fingerprint >> shift) & 0xF]);
    return out;
}

}  // namespace protoacc::rpc
