#include "rpc/health.h"

#include <vector>

#include "common/check.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "rpc/codec_backend.h"

namespace protoacc::rpc {

const char *
HealthStateName(HealthState state)
{
    switch (state) {
      case HealthState::kHealthy: return "healthy";
      case HealthState::kSuspect: return "suspect";
      case HealthState::kQuarantined: return "quarantined";
      case HealthState::kScrubbing: return "scrubbing";
      case HealthState::kSelfTest: return "self-test";
      case HealthState::kProbation: return "probation";
      case HealthState::kFenced: return "fenced";
      case HealthState::kNumHealthStates: break;
    }
    return "?";
}

const char *
IncidentKindName(IncidentKind kind)
{
    switch (kind) {
      case IncidentKind::kWatchdogReset: return "watchdog-reset";
      case IncidentKind::kUnitFault: return "unit-fault";
      case IncidentKind::kCrcFailure: return "crc-failure";
      case IncidentKind::kNumIncidentKinds: break;
    }
    return "?";
}

namespace {

/// Cycles to clear a byte-addressed streaming buffer at scrub width.
uint64_t
BufferScrubCycles(uint32_t bytes, uint32_t bytes_per_cycle)
{
    const uint32_t width = bytes_per_cycle == 0 ? 1 : bytes_per_cycle;
    return (bytes + width - 1) / width;
}

ScrubCost
ScrubCostFromSizes(const HealthConfig &config, uint32_t adt_entries,
                   uint32_t stack_entries)
{
    ScrubCost cost;
    cost.adt_buffer_cycles =
        static_cast<uint64_t>(adt_entries) *
        config.scrub_cycles_per_adt_entry;
    cost.context_stack_cycles =
        static_cast<uint64_t>(stack_entries) *
        config.scrub_cycles_per_stack_entry;
    cost.spill_region_cycles =
        static_cast<uint64_t>(config.spill_region_entries) *
        config.scrub_cycles_per_spill_entry;
    cost.memloader_cycles = BufferScrubCycles(
        config.memloader_buffer_bytes, config.scrub_bytes_per_cycle);
    cost.memwriter_cycles = BufferScrubCycles(
        config.memwriter_buffer_bytes, config.scrub_bytes_per_cycle);
    return cost;
}

}  // namespace

ScrubCost
ComputeScrubCost(const accel::AccelConfig &accel,
                 const HealthConfig &config)
{
    // Both units' ADT response buffers and both context stacks must be
    // scrubbed: after a wedge neither side's state can be trusted.
    return ScrubCostFromSizes(
        config,
        accel.deser.adt_buffer_entries + accel.ser.adt_buffer_entries,
        accel.deser.on_chip_stack_depth + accel.ser.on_chip_stack_depth);
}

ScrubCost
ComputeScrubCost(const HealthConfig &config)
{
    return ComputeScrubCost(accel::AccelConfig{}, config);
}

void
DeviceHealth::Observe(double error)
{
    ++observations_;
    ewma_ = config_.ewma_alpha * error +
            (1.0 - config_.ewma_alpha) * ewma_;
}

void
DeviceHealth::OnSuccess()
{
    if (!config_.enabled || !InService())
        return;
    Observe(0.0);
    if (state_ == HealthState::kSuspect &&
        ewma_ < config_.suspect_threshold) {
        state_ = HealthState::kHealthy;
    } else if (state_ == HealthState::kProbation) {
        if (++probation_ops_done_ >= config_.probation_ops) {
            state_ = HealthState::kHealthy;
            ++reintegrations_;
        }
    }
}

bool
DeviceHealth::OnIncident(IncidentKind kind)
{
    if (!config_.enabled)
        return false;
    ++incidents_[static_cast<size_t>(kind)];
    if (!InService())
        return false;  // already fenced; nothing new to decide
    Observe(1.0);
    if (state_ == HealthState::kProbation) {
        // Reduced trust: a domain fresh out of self-test gets no
        // benefit of the doubt — any incident re-quarantines.
        state_ = HealthState::kQuarantined;
        ++quarantines_;
        return true;
    }
    if (observations_ >= config_.min_observations &&
        ewma_ >= config_.quarantine_threshold) {
        state_ = HealthState::kQuarantined;
        ++quarantines_;
        return true;
    }
    if (ewma_ >= config_.suspect_threshold)
        state_ = HealthState::kSuspect;
    return false;
}

void
DeviceHealth::BeginScrub()
{
    PA_CHECK(state_ == HealthState::kQuarantined);
    state_ = HealthState::kScrubbing;
}

void
DeviceHealth::CompleteScrub(const ScrubCost &cost)
{
    PA_CHECK(state_ == HealthState::kScrubbing);
    scrub_cycles_ += cost.total();
    ++scrubs_completed_;
    state_ = HealthState::kSelfTest;
}

HealthState
DeviceHealth::CompleteSelfTest(bool passed, uint64_t cycles)
{
    PA_CHECK(state_ == HealthState::kSelfTest);
    self_test_cycles_ += cycles;
    if (passed) {
        ++self_tests_passed_;
        consecutive_self_test_failures_ = 0;
        probation_ops_done_ = 0;
        // Reintegrate with the error memory partially forgiven: the
        // EWMA restarts below the suspect line so probation successes
        // (not the stale pre-quarantine history) decide what follows.
        ewma_ = 0;
        state_ = HealthState::kProbation;
    } else {
        ++self_tests_failed_;
        if (++consecutive_self_test_failures_ >=
            config_.max_self_test_failures) {
            state_ = HealthState::kFenced;
        } else {
            // Another scrub + self-test round.
            state_ = HealthState::kQuarantined;
            ++quarantines_;
        }
    }
    return state_;
}

HealthSnapshot
DeviceHealth::snapshot() const
{
    HealthSnapshot snap;
    snap.state = state_;
    snap.error_ewma = ewma_;
    snap.observations = observations_;
    snap.incidents = incidents_;
    snap.quarantines = quarantines_;
    snap.scrubs_completed = scrubs_completed_;
    snap.scrub_cycles = scrub_cycles_;
    snap.self_tests_passed = self_tests_passed_;
    snap.self_tests_failed = self_tests_failed_;
    snap.self_test_cycles = self_test_cycles_;
    snap.reintegrations = reintegrations_;
    snap.probation_ops_remaining =
        state_ == HealthState::kProbation
            ? config_.probation_ops - probation_ops_done_
            : 0;
    snap.fenced_from_traffic = !InService();
    return snap;
}

SelfTester::SelfTester(const proto::DescriptorPool *pool, int msg_type)
    : pool_(pool), msg_type_(msg_type)
{
    PA_CHECK_GE(msg_type, 0);
}

bool
SelfTester::Run(CodecBackend *engine, uint32_t vectors,
                uint64_t *cycles) const
{
    PA_CHECK(engine != nullptr);
    const double cycles_before = engine->codec_cycles();
    bool passed = true;
    for (uint32_t v = 0; v < vectors && passed; ++v) {
        // Deterministic golden vector: the seed depends only on the
        // vector index, so every run of the test (and every unit in the
        // fleet) sees the same inputs.
        Rng rng(0x5E1F7E57u + v);
        proto::Arena arena;
        proto::Message golden =
            proto::Message::Create(&arena, *pool_, msg_type_);
        proto::MessageGenOptions gen;
        gen.field_present_prob = 1.0;  // exercise every ADT entry
        proto::PopulateRandomMessage(golden, &rng, gen);
        const std::vector<uint8_t> expect =
            proto::Serialize(golden, nullptr);

        // Serialize through the unit: must match the reference codec
        // byte for byte (a faulted or corrupting unit fails here).
        const std::vector<uint8_t> got = engine->Serialize(golden);
        if (!StatusOk(engine->last_status()) || got != expect) {
            passed = false;
            break;
        }

        // Deserialize through the unit, then canonicalize with the
        // reference serializer: a unit that drops or mangles fields
        // fails the round trip.
        proto::Message parsed =
            proto::Message::Create(&arena, *pool_, msg_type_);
        if (!StatusOk(
                engine->Deserialize(expect.data(), expect.size(),
                                    &parsed)) ||
            proto::Serialize(parsed, nullptr) != expect) {
            passed = false;
        }
    }
    *cycles = static_cast<uint64_t>(engine->codec_cycles() -
                                    cycles_before);
    return passed;
}

}  // namespace protoacc::rpc
