/**
 * @file
 * A minimal protobuf-RPC substrate: method registry, client/server
 * endpoints with pluggable codec backends, and a simulated network
 * channel — enough to measure, end to end, how much of an RPC's time
 * is serialization (the "datacenter tax" the paper attacks) and what
 * accelerating it buys.
 */
#ifndef PROTOACC_RPC_RPC_H
#define PROTOACC_RPC_RPC_H

#include <atomic>
#include <functional>
#include <map>
#include <memory>

#include "common/rng.h"
#include "rpc/codec_backend.h"
#include "rpc/dedup_cache.h"
#include "rpc/frame.h"
#include "rpc/schema_registry.h"
#include "sim/fault.h"

namespace protoacc::rpc {

/**
 * Simulated network: fixed one-way latency plus bandwidth-limited
 * transfer. Times are nanoseconds so endpoints at different clocks
 * compose.
 */
struct SimulatedChannel
{
    double latency_ns = 10'000;      ///< ~10 µs datacenter RTT/2
    double bytes_per_ns = 12.5;      ///< ~100 Gbit/s

    double
    TransferNs(size_t bytes) const
    {
        return latency_ns + static_cast<double>(bytes) / bytes_per_ns;
    }
};

/// A method's application logic.
using Handler =
    std::function<void(const proto::Message &request,
                       proto::Message response)>;

/**
 * Server endpoint: methods keyed by id, each with request/response
 * message types and a handler. Owns its codec backend.
 */
class RpcServer
{
  public:
    RpcServer(const proto::DescriptorPool *pool,
              std::unique_ptr<CodecBackend> backend)
        : pool_(pool), backend_(std::move(backend))
    {}

    void
    RegisterMethod(uint16_t method_id, int request_type,
                   int response_type, Handler handler)
    {
        methods_[method_id] =
            Method{request_type, response_type, std::move(handler)};
    }

    /**
     * Handle one request frame: deserialize, run the handler,
     * serialize the response in place into @p reply (via
     * ReserveFrame/CommitFrame — no intermediate payload copy).
     *
     * The server arena is Reset() at the start of every call, so
     * request/response objects (and anything a handler stores in them)
     * are valid only for the duration of the call, and steady-state
     * serving performs no per-call arena construction.
     *
     * @return the specific failure class on error (an error frame
     *         carrying the code and a detail string is appended instead
     *         of a response); StatusCode::kOk on success.
     */
    StatusCode HandleFrame(const Frame &frame, FrameBuffer *reply);

    /**
     * Attach a dedup/response cache (nullptr detaches). With a cache,
     * request frames carrying a nonzero idempotency key are looked up
     * before the handler runs: a hit replays the committed response
     * (re-stamped with the retry's call id) without re-executing, and
     * every committed success is inserted. The cache may be shared by
     * many servers (one per runtime worker) — it locks internally.
     */
    void SetDedupCache(DedupCache *cache) { dedup_ = cache; }

    /**
     * Attach the schema-version registry (nullptr detaches, accepting
     * every fingerprint — the pre-negotiation behavior). With a
     * registry, request frames carrying a nonzero schema fingerprint
     * the registry does not know are rejected kFailedPrecondition
     * before any parse or dedup work: an unknown schema version must
     * become a structured error, never a silent misparse. Fingerprint
     * 0 (non-negotiating legacy sender) is always accepted.
     */
    void SetSchemaRegistry(const SchemaRegistry *registry)
    {
        schemas_ = registry;
    }

    /// Fingerprint of the schema this server itself speaks; stamped
    /// into every response/error frame it writes (0 = unversioned).
    void set_schema_fingerprint(uint64_t fp) { schema_fp_ = fp; }
    uint64_t schema_fingerprint() const { return schema_fp_; }

    /// Requests rejected for an unknown schema fingerprint.
    uint64_t schema_rejects() const { return schema_rejects_; }

    /// Observer invoked once per *handler execution* with the call's
    /// (tenant, idempotency key), after dedup lookup and parse but
    /// before the handler runs. Dedup hits and failed parses do not
    /// fire it, which makes it ground truth for duplicate-execution
    /// detection: a soak harness counting executions per key proves
    /// exactly-once semantics across retries and replays. nullptr
    /// detaches.
    void SetExecObserver(
        std::function<void(uint16_t tenant, uint64_t key)> observer)
    {
        exec_observer_ = std::move(observer);
    }

    const CodecBackend &backend() const { return *backend_; }
    CodecBackend &mutable_backend() { return *backend_; }
    /// Per-call scratch arena (observable for steady-state tests).
    const proto::Arena &arena() const { return arena_; }

  private:
    struct Method
    {
        int request_type;
        int response_type;
        Handler handler;
    };

    const proto::DescriptorPool *pool_;
    std::unique_ptr<CodecBackend> backend_;
    std::map<uint16_t, Method> methods_;
    proto::Arena arena_;
    DedupCache *dedup_ = nullptr;
    const SchemaRegistry *schemas_ = nullptr;
    uint64_t schema_fp_ = 0;
    uint64_t schema_rejects_ = 0;
    std::function<void(uint16_t, uint64_t)> exec_observer_;
};

/**
 * Client-side retry policy: exponential backoff with jitter, applied
 * only to transient failures (StatusIsRetryable). max_attempts == 1
 * disables retry.
 */
struct RetryPolicy
{
    uint32_t max_attempts = 1;
    double initial_backoff_ns = 50'000;  ///< first retry delay
    double backoff_multiplier = 2.0;
    /// Uniform jitter: each delay is scaled by 1 ± this fraction.
    double jitter_fraction = 0.25;
    /// Backoff delay ceiling; 0 = uncapped.
    double max_backoff_ns = 0;
    /// Retry budget: tokens earned per completed call (e.g. 0.1 = at
    /// most ~10% extra load from retries at steady state). A retry
    /// spends one token; with an empty budget the call fails instead of
    /// retrying (counted as retries_suppressed). 0 = unlimited retries,
    /// the pre-budget behavior.
    double retry_budget_ratio = 0;
    double retry_budget_cap = 10;  ///< token accumulation ceiling
};

/// Per-session modeled time breakdown.
struct RpcTimeBreakdown
{
    double client_codec_ns = 0;
    double server_codec_ns = 0;
    double network_ns = 0;
    /// Modeled time the client spent sleeping between retry attempts.
    double backoff_ns = 0;
    uint64_t calls = 0;
    /// Wire attempts, including retries (>= calls).
    uint64_t attempts = 0;
    uint64_t retries = 0;
    /// Retries the budget refused: the failure was retryable but the
    /// session was out of retry tokens (storm containment).
    uint64_t retries_suppressed = 0;
    uint64_t failures = 0;
    /// Frames rejected by the CRC integrity check (detected in-flight
    /// corruption; each is an attempt that ended in kDataLoss).
    uint64_t integrity_rejects = 0;

    double
    total_ns() const
    {
        return client_codec_ns + server_codec_ns + network_ns;
    }
    double
    codec_share() const
    {
        const double total = total_ns();
        return total == 0
                   ? 0
                   : (client_codec_ns + server_codec_ns) / total;
    }
};

/**
 * A client session bound to one server over one channel. Call()
 * performs the full round trip and accumulates the time breakdown.
 */
class RpcSession
{
  public:
    RpcSession(const proto::DescriptorPool *pool,
               std::unique_ptr<CodecBackend> client_backend,
               RpcServer *server, SimulatedChannel channel)
        : pool_(pool),
          backend_(std::move(client_backend)),
          server_(server),
          channel_(channel),
          session_id_(NextSessionId())
    {}

    /**
     * Issue one call: serialize @p request, ship it, let the server
     * handle it, ship the response back, deserialize into @p response.
     * Transient failures (lost frames, accelerator faults, overload)
     * are retried per the session's RetryPolicy with exponential
     * backoff and jitter; deterministic rejections are returned
     * immediately. @return the final attempt's status.
     */
    StatusCode Call(uint16_t method_id, const proto::Message &request,
                    proto::Message *response);

    void set_retry_policy(const RetryPolicy &policy)
    {
        retry_policy_ = policy;
    }

    /// Bind this session to an isolation domain: every request frame it
    /// sends carries this tenant id (wire v2), which scopes server-side
    /// admission, scheduling, and dedup. Default 0 (the legacy/anonymous
    /// tenant).
    void set_tenant(uint16_t tenant) { tenant_id_ = tenant; }
    uint16_t tenant() const { return tenant_id_; }

    /// Announce this session's schema version: every request frame it
    /// sends carries this structural fingerprint (wire v5), letting the
    /// server's SchemaRegistry reject versions it has never seen before
    /// any parse. Default 0 = non-negotiating legacy sender.
    void set_schema_fingerprint(uint64_t fp) { schema_fp_ = fp; }
    uint64_t schema_fingerprint() const { return schema_fp_; }

    /// Re-seed the backoff jitter hash (default fixed). Jitter is a
    /// counter-based hash of (seed, idempotency key, attempt) — no
    /// streaming RNG draws — so concurrent sessions and fault-shuffled
    /// retry interleavings cannot perturb each other's delays: same
    /// seed, same per-call jitter, bit-identical replay.
    void set_jitter_seed(uint64_t seed) { jitter_seed_ = seed; }

    /// Attach a channel fault injector (nullptr detaches): each frame
    /// crossing the channel draws one drop/truncate/corrupt sample.
    void SetFaultInjector(sim::FaultInjector *injector)
    {
        fault_injector_ = injector;
    }

    /// Automatic device-incident reporting: invoked once per *response*
    /// frame this session rejects on CRC (kDataLoss on the reply scan).
    /// The server produced that frame, so the reject is attributable to
    /// its device — bind this to ReportDeviceIncident(worker,
    /// kCrcFailure) once and every future reject feeds the health EWMA
    /// without per-event operator wiring. Request-side rejects are
    /// channel corruption of the client's own frame and do not fire it.
    /// nullptr detaches.
    void SetCrcRejectReporter(std::function<void()> reporter)
    {
        crc_reject_reporter_ = std::move(reporter);
    }

    /// Toggle frame CRCs on this session's buffers (on by default):
    /// stamping on the frames it writes, verification on the frames it
    /// scans. Off models the pre-integrity stack for silent-corruption
    /// measurements.
    void set_crc_enabled(bool enabled) { crc_enabled_ = enabled; }

    /// Status of the most recent Call (kOk after a success).
    StatusCode last_error() const { return last_error_; }

    const RpcTimeBreakdown &breakdown() const { return breakdown_; }
    const CodecBackend &backend() const { return *backend_; }
    CodecBackend &mutable_backend() { return *backend_; }

  private:
    /// One wire attempt of a call (no retry). @p call_id and
    /// @p idempotency_key are allocated once per logical call by Call()
    /// and stable across its retries — that stability is what lets the
    /// server-side dedup cache recognize a retry.
    StatusCode CallOnce(uint16_t method_id, uint32_t call_id,
                        uint64_t idempotency_key,
                        const proto::Message &request,
                        proto::Message *response);

    /// Apply one sampled channel fault to an in-flight frame stream.
    /// @return false when the frame was dropped entirely.
    bool ApplyChannelFault(FrameBuffer *buf);

    static uint32_t
    NextSessionId()
    {
        static std::atomic<uint32_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
    }

    const proto::DescriptorPool *pool_;
    std::unique_ptr<CodecBackend> backend_;
    RpcServer *server_;
    SimulatedChannel channel_;
    RpcTimeBreakdown breakdown_;
    RetryPolicy retry_policy_;
    sim::FaultInjector *fault_injector_ = nullptr;
    std::function<void()> crc_reject_reporter_;
    /// Jitter hash seed; counter-based (see set_jitter_seed), so no
    /// draw-order coupling between sessions or retry interleavings.
    uint64_t jitter_seed_ = 0x6a177e5u;
    /// Retry-budget token bucket (see RetryPolicy::retry_budget_ratio).
    double retry_tokens_ = 0;
    StatusCode last_error_ = StatusCode::kOk;
    uint32_t next_call_id_ = 1;
    /// Process-unique (from a static counter): the high half of every
    /// idempotency key, so keys never collide across sessions sharing
    /// one server's dedup cache.
    uint32_t session_id_;
    /// Isolation domain stamped into every request frame this session
    /// sends (see set_tenant).
    uint16_t tenant_id_ = 0;
    /// Schema fingerprint stamped into every request frame (wire v5).
    uint64_t schema_fp_ = 0;
    bool crc_enabled_ = true;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_RPC_H
