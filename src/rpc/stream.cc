#include "rpc/stream.h"

#include <algorithm>
#include <cstring>

#include "accel/frame_engine.h"
#include "common/check.h"
#include "common/crc32c.h"

namespace protoacc::rpc {

namespace {

/// Chunk identity fed to the hash-gated fault verdict: the stream
/// offset plus the sender's per-attempt call id in the high bits, so a
/// retransmission of the same offset re-rolls its verdict.
uint64_t
ChunkFaultIndex(uint64_t offset, uint32_t call_id)
{
    return offset ^ (static_cast<uint64_t>(call_id) << 32);
}

}  // namespace

// ---------------------------------------------------------------------
// StreamReceiver
// ---------------------------------------------------------------------

struct StreamReceiver::StreamState
{
    uint16_t tenant = 0;
    uint16_t method_id = 0;
    uint32_t call_id = 0;
    uint64_t key = 0;
    uint64_t announced_bytes = 0;
    /// Committed watermark: stream bytes received, verified, decoded.
    uint64_t committed = 0;
    /// Whole-stream CRC composed over committed chunks (Crc32cExtend).
    uint32_t running_crc = 0;
    /// Cumulative credit already granted (monotone; credits are
    /// idempotent max() folds on the sender).
    uint64_t granted_window = 0;
    std::unique_ptr<proto::StreamSink> sink;
    std::unique_ptr<proto::StreamDecoder> decoder;
    /// Bytes currently reserved against the memory gauge.
    size_t gauge_bytes = 0;
    double last_progress_ns = 0;
    /// Injected receiver-window wedge: credit stops extending at
    /// wedge_chunk committed chunks until wedge_release_ns.
    bool wedge_armed = false;
    bool wedge_holding = false;
    uint64_t wedge_chunk = 0;
    double wedge_release_ns = 0;
    uint64_t chunks_committed = 0;
};

StreamReceiver::StreamReceiver(const proto::DescriptorPool *pool,
                               CodecBackend *backend,
                               const StreamConfig &config,
                               SinkFactory sinks)
    : pool_(pool), backend_(backend), config_(config),
      sinks_(std::move(sinks))
{
    PA_CHECK(pool_ != nullptr);
    PA_CHECK(backend_ != nullptr);
}

StreamReceiver::~StreamReceiver()
{
    // Deterministic teardown: release every live reservation so a
    // shared gauge never leaks bytes from streams open at shutdown.
    for (auto &entry : streams_)
        gauge_->Release(entry.second->gauge_bytes);
}

void
StreamReceiver::RegisterMethod(uint16_t method_id, int request_type)
{
    method_types_[method_id] = request_type;
}

void
StreamReceiver::SetGauge(StreamMemoryGauge *gauge)
{
    gauge_ = gauge != nullptr ? gauge : &own_gauge_;
}

StatusCode
StreamReceiver::HandleFrame(const Frame &frame, FrameBuffer *out,
                            double now_ns)
{
    switch (frame.header.kind) {
    case FrameKind::kStreamBegin:
        return HandleBegin(frame, out, now_ns);
    case FrameKind::kStreamChunk:
        return HandleChunk(frame, out, now_ns);
    case FrameKind::kStreamEnd:
        return HandleEnd(frame, out, now_ns);
    case FrameKind::kStreamCancel:
        return HandleCancel(frame, out);
    default:
        // kStreamCredit flows receiver->sender only; anything else is
        // a protocol violation on this endpoint.
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
}

StatusCode
StreamReceiver::HandleBegin(const Frame &frame, FrameBuffer *out,
                            double now_ns)
{
    if (engine_ != nullptr)
        engine_->ChargeStreamControl(frame.header.payload_bytes);

    StreamBeginInfo info;
    if (frame.header.idempotency_key == 0 ||
        !UnpackStreamBegin(frame.payload, frame.header.payload_bytes,
                           &info)) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
    const uint64_t key = frame.header.idempotency_key;

    // Duplicate BEGIN on a live stream: the sender restarted (lost our
    // credit, timeout). Resume, don't restart — re-ack the committed
    // watermark so only unacknowledged chunks replay.
    auto it = streams_.find(key);
    if (it != streams_.end()) {
        StreamState &st = *it->second;
        if (info.total_bytes != st.announced_bytes ||
            frame.header.tenant_id != st.tenant) {
            ++stats_.malformed_frames;
            SendError(frame, StatusCode::kMalformedInput, out);
            return StatusCode::kMalformedInput;
        }
        ++stats_.streams_resumed;
        st.call_id = frame.header.call_id;
        st.last_progress_ns = now_ns;
        SendCredit(st, out);
        return StatusCode::kOk;
    }

    // BEGIN for a stream that already completed (our response frame was
    // lost): exactly-once replay of the committed response from the
    // dedup cache, never a re-execution.
    if (dedup_ != nullptr) {
        FrameHeader cached;
        std::vector<uint8_t> payload;
        if (dedup_->Lookup(frame.header.tenant_id, key, &cached,
                           &payload)) {
            ++stats_.replayed_responses;
            cached.call_id = frame.header.call_id;
            out->Append(cached, payload.data());
            return StatusCode::kOk;
        }
    }

    // Admission gate 1: the announce against the hostile-input payload
    // bound — an oversized transfer sheds at the door, before a single
    // chunk is buffered.
    const uint64_t payload_cap = backend_->parse_limits().max_payload_bytes;
    if (payload_cap != 0 && info.total_bytes > payload_cap) {
        ++stats_.shed_announce;
        SendError(frame, StatusCode::kResourceExhausted, out);
        return StatusCode::kResourceExhausted;
    }

    auto type_it = method_types_.find(frame.header.method_id);
    if (type_it == method_types_.end()) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kUnimplemented, out);
        return StatusCode::kUnimplemented;
    }

    // Admission gate 2: memory budgets. The reservation is the stream's
    // bounded working set — one record tail plus one chunk of
    // reassembly slack — not the announced size.
    const uint64_t chunk_hint =
        std::max<uint64_t>(config_.chunk_bytes,
                           std::min<uint64_t>(info.chunk_bytes,
                                              config_.codec
                                                  .max_record_bytes));
    const size_t reserve = config_.codec.max_record_bytes +
                           static_cast<size_t>(chunk_hint);
    if (config_.per_stream_budget_bytes != 0 &&
        reserve > config_.per_stream_budget_bytes) {
        ++stats_.shed_budget;
        SendError(frame, StatusCode::kOverloaded, out);
        return StatusCode::kOverloaded;
    }
    // Brownout: when the reservation would push the gauge into the
    // pressure band, only tenants above the lowest priority tier are
    // admitted — SLO traffic keeps streaming while best-effort sheds.
    if (config_.global_budget_bytes != 0 &&
        config_.brownout_pressure < 1.0) {
        const double pressure_floor =
            config_.brownout_pressure *
            static_cast<double>(config_.global_budget_bytes);
        const double projected = static_cast<double>(
            gauge_->current_bytes() + reserve);
        const uint32_t priority =
            tenants_ != nullptr
                ? tenants_->PriorityOf(frame.header.tenant_id)
                : 0;
        if (projected > pressure_floor && priority == 0) {
            ++stats_.shed_brownout;
            SendError(frame, StatusCode::kOverloaded, out);
            return StatusCode::kOverloaded;
        }
    }
    if (!gauge_->TryAcquire(reserve, config_.global_budget_bytes)) {
        ++stats_.shed_budget;
        SendError(frame, StatusCode::kOverloaded, out);
        return StatusCode::kOverloaded;
    }

    auto st = std::make_unique<StreamState>();
    st->tenant = frame.header.tenant_id;
    st->method_id = frame.header.method_id;
    st->call_id = frame.header.call_id;
    st->key = key;
    st->announced_bytes = info.total_bytes;
    st->gauge_bytes = reserve;
    st->last_progress_ns = now_ns;
    st->sink = sinks_(frame.header.method_id, frame.header.tenant_id);
    if (st->sink == nullptr) {
        gauge_->Release(reserve);
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kUnimplemented, out);
        return StatusCode::kUnimplemented;
    }
    st->decoder = backend_->CreateStreamDecoder(
        *pool_, type_it->second, config_.codec, st->sink.get());
    if (st->decoder == nullptr) {
        // Device-only backend: no incremental path on this endpoint.
        gauge_->Release(reserve);
        SendError(frame, StatusCode::kUnimplemented, out);
        return StatusCode::kUnimplemented;
    }

    // Arm the injected receiver-window wedge for this stream (pure
    // hash verdict — same stream wedges at the same chunk every run).
    if (injector_ != nullptr && injector_->SampleWindowWedge(key)) {
        const uint64_t total_chunks = std::max<uint64_t>(
            1, (info.total_bytes + config_.chunk_bytes - 1) /
                   config_.chunk_bytes);
        st->wedge_armed = true;
        st->wedge_chunk = injector_->WindowWedgeChunk(key, total_chunks);
        ++stats_.wedges_started;
    }

    ++stats_.streams_opened;
    StreamState &ref = *st;
    streams_[key] = std::move(st);
    SendCredit(ref, out);
    return StatusCode::kOk;
}

StatusCode
StreamReceiver::HandleChunk(const Frame &frame, FrameBuffer *out,
                            double now_ns)
{
    StreamChunkInfo info;
    if (!UnpackStreamChunk(frame.payload, frame.header.payload_bytes,
                           &info)) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
    const uint8_t *data = frame.payload + StreamChunkInfo::kWireBytes;
    const size_t len =
        frame.header.payload_bytes - StreamChunkInfo::kWireBytes;
    if (engine_ != nullptr)
        engine_->ChargeStreamChunk(len);

    auto it = streams_.find(frame.header.idempotency_key);
    if (it == streams_.end()) {
        // CHUNK before BEGIN (or after completion): protocol violation.
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
    StreamState &st = *it->second;

    if (info.offset + len > st.announced_bytes || len == 0) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }

    if (info.offset < st.committed) {
        // Duplicate of a committed chunk (retransmit overlap or channel
        // duplication): exactly-once means ack without re-decoding.
        ++stats_.duplicate_chunks;
        SendCredit(st, out);
        return StatusCode::kOk;
    }
    if (info.offset > st.committed) {
        // Gap — a chunk ahead of the watermark means something in
        // between was lost or reordered. NACK so the sender rewinds.
        ++stats_.gap_nacks;
        SendCredit(st, out, StatusCode::kUnavailable);
        return StatusCode::kUnavailable;
    }

    // In-order chunk: decode incrementally, then commit the watermark
    // and extend the composed stream CRC.
    const proto::ParseStatus ps = st.decoder->Feed(data, len);
    if (ps != proto::ParseStatus::kOk) {
        const StatusCode code = proto::ToStatusCode(ps);
        SendError(frame, code, out);
        Cleanup(st.key);
        return code;
    }
    st.running_crc = Crc32cExtend(st.running_crc, data, len);
    st.committed += len;
    st.chunks_committed += 1;
    st.last_progress_ns = now_ns;
    ++stats_.chunks_committed;
    stats_.bytes_committed += len;

    if (!RechargeBudget(st)) {
        ++stats_.budget_cancels;
        SendError(frame, StatusCode::kResourceExhausted, out);
        // Notify the sender the stream is dead, then reclaim.
        FrameHeader cancel;
        cancel.kind = FrameKind::kStreamCancel;
        cancel.status = StatusCode::kResourceExhausted;
        cancel.call_id = st.call_id;
        cancel.method_id = st.method_id;
        cancel.tenant_id = st.tenant;
        cancel.idempotency_key = st.key;
        cancel.payload_bytes = 0;
        out->Append(cancel, nullptr);
        Cleanup(st.key);
        return StatusCode::kResourceExhausted;
    }

    // Wedge trigger: at the armed chunk count the window freezes (no
    // credit extension) until AdvanceTime passes the release point —
    // the sender must survive a stalled receiver without data loss.
    if (st.wedge_armed && !st.wedge_holding &&
        st.chunks_committed >= st.wedge_chunk) {
        st.wedge_armed = false;
        st.wedge_holding = true;
        st.wedge_release_ns = now_ns + config_.wedge_hold_ns;
    }

    SendCredit(st, out);
    return StatusCode::kOk;
}

StatusCode
StreamReceiver::HandleEnd(const Frame &frame, FrameBuffer *out,
                          double now_ns)
{
    if (engine_ != nullptr)
        engine_->ChargeStreamControl(frame.header.payload_bytes);

    StreamEndInfo info;
    if (!UnpackStreamEnd(frame.payload, frame.header.payload_bytes,
                         &info)) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
    auto it = streams_.find(frame.header.idempotency_key);
    if (it == streams_.end()) {
        ++stats_.malformed_frames;
        SendError(frame, StatusCode::kMalformedInput, out);
        return StatusCode::kMalformedInput;
    }
    StreamState &st = *it->second;

    if (info.total_bytes != st.announced_bytes) {
        // END disagreeing with the announce: the transfer is incoherent
        // and nothing committed can be trusted to be the whole message.
        SendError(frame, StatusCode::kMalformedInput, out);
        Cleanup(st.key);
        return StatusCode::kMalformedInput;
    }
    if (st.committed < st.announced_bytes) {
        // END ahead of the data (tail chunks still missing): NACK back
        // to the watermark; the sender rewinds and re-sends the tail
        // plus a fresh END.
        ++stats_.gap_nacks;
        st.last_progress_ns = now_ns;
        SendCredit(st, out, StatusCode::kUnavailable);
        return StatusCode::kUnavailable;
    }
    if (info.stream_crc != st.running_crc) {
        // Every chunk frame verified clean individually, yet the
        // composed whole-stream CRC disagrees: reassembly corruption.
        ++stats_.stream_crc_mismatches;
        SendError(frame, StatusCode::kDataLoss, out);
        Cleanup(st.key);
        return StatusCode::kDataLoss;
    }
    const proto::ParseStatus ps = st.decoder->Finish();
    if (ps != proto::ParseStatus::kOk) {
        const StatusCode code = proto::ToStatusCode(ps);
        SendError(frame, code, out);
        Cleanup(st.key);
        return code;
    }

    // Commit: response echoes the close record (length + composed CRC)
    // so the sender can verify end-to-end identity, and the response is
    // remembered for exactly-once replay should it be lost in flight.
    FrameHeader resp;
    resp.kind = FrameKind::kResponse;
    resp.status = StatusCode::kOk;
    resp.call_id = st.call_id;
    resp.method_id = st.method_id;
    resp.tenant_id = st.tenant;
    resp.idempotency_key = st.key;
    uint8_t close_record[StreamEndInfo::kWireBytes];
    StreamEndInfo committed{st.committed, st.running_crc};
    PackStreamEnd(committed, close_record);
    resp.payload_bytes = StreamEndInfo::kWireBytes;
    out->Append(resp, close_record);
    if (dedup_ != nullptr)
        dedup_->Insert(st.tenant, st.key, resp, close_record,
                       StreamEndInfo::kWireBytes);

    ++stats_.streams_completed;
    Cleanup(st.key);
    return StatusCode::kOk;
}

StatusCode
StreamReceiver::HandleCancel(const Frame &frame, FrameBuffer *out)
{
    if (engine_ != nullptr)
        engine_->ChargeStreamControl(frame.header.payload_bytes);
    (void)out;
    auto it = streams_.find(frame.header.idempotency_key);
    if (it == streams_.end())
        return StatusCode::kOk;  // cancel of an already-dead stream
    ++stats_.streams_cancelled;
    Cleanup(frame.header.idempotency_key);
    return StatusCode::kOk;
}

void
StreamReceiver::SendCredit(StreamState &st, FrameBuffer *out,
                           StatusCode nack_status)
{
    // Cumulative grant: watermark plus one window ahead — unless the
    // window is wedged, in which case the grant stops extending and the
    // sender stalls against it.
    if (!st.wedge_holding) {
        const uint64_t grant = std::min<uint64_t>(
            st.announced_bytes,
            st.committed + config_.credit_window_bytes);
        st.granted_window = std::max(st.granted_window, grant);
    }
    StreamCreditInfo info{st.committed, st.granted_window};
    uint8_t payload[StreamCreditInfo::kWireBytes];
    PackStreamCredit(info, payload);

    FrameHeader h;
    h.kind = FrameKind::kStreamCredit;
    h.status = nack_status;
    h.call_id = st.call_id;
    h.method_id = st.method_id;
    h.tenant_id = st.tenant;
    h.idempotency_key = st.key;
    h.payload_bytes = StreamCreditInfo::kWireBytes;
    out->Append(h, payload);
    ++stats_.credits_sent;
}

void
StreamReceiver::SendError(const Frame &frame, StatusCode code,
                          FrameBuffer *out)
{
    FrameHeader h;
    h.kind = FrameKind::kError;
    h.status = code;
    h.call_id = frame.header.call_id;
    h.method_id = frame.header.method_id;
    h.tenant_id = frame.header.tenant_id;
    h.idempotency_key = frame.header.idempotency_key;
    h.payload_bytes = 0;
    out->Append(h, nullptr);
    if (engine_ != nullptr)
        engine_->ChargeErrorFrame();
}

void
StreamReceiver::Cleanup(uint64_t key)
{
    auto it = streams_.find(key);
    if (it == streams_.end())
        return;
    gauge_->Release(it->second->gauge_bytes);
    streams_.erase(it);
}

bool
StreamReceiver::RechargeBudget(StreamState &st)
{
    // The decoder's high-water mark (partial-record tail + scratch
    // arena) can exceed the admission reservation when records are
    // larger than the chunk hint; grow the gauge charge to match and
    // re-check both budgets.
    const size_t need = st.decoder->peak_buffered_bytes() +
                        config_.chunk_bytes;
    if (need <= st.gauge_bytes)
        return true;
    if (config_.per_stream_budget_bytes != 0 &&
        need > config_.per_stream_budget_bytes) {
        return false;
    }
    const size_t growth = need - st.gauge_bytes;
    if (!gauge_->TryAcquire(growth, config_.global_budget_bytes))
        return false;
    st.gauge_bytes = need;
    return true;
}

void
StreamReceiver::AdvanceTime(double now_ns, FrameBuffer *out)
{
    // Wedge releases first (they emit the unblocking credit).
    for (auto &entry : streams_) {
        StreamState &st = *entry.second;
        if (st.wedge_holding && now_ns >= st.wedge_release_ns) {
            st.wedge_holding = false;
            SendCredit(st, out);
        }
    }
    if (config_.deadline_ns <= 0)
        return;
    // Deadline sweep: collect first (Cleanup mutates the map), then
    // cancel deterministically in key order.
    std::vector<uint64_t> expired;
    for (const auto &entry : streams_) {
        const StreamState &st = *entry.second;
        if (now_ns - st.last_progress_ns > config_.deadline_ns)
            expired.push_back(entry.first);
    }
    for (uint64_t key : expired) {
        const StreamState &st = *streams_.at(key);
        FrameHeader h;
        h.kind = FrameKind::kStreamCancel;
        h.status = StatusCode::kDeadlineExceeded;
        h.call_id = st.call_id;
        h.method_id = st.method_id;
        h.tenant_id = st.tenant;
        h.idempotency_key = st.key;
        h.payload_bytes = 0;
        out->Append(h, nullptr);
        ++stats_.deadline_cancels;
        Cleanup(key);
    }
}

// ---------------------------------------------------------------------
// StreamSender
// ---------------------------------------------------------------------

StreamSender::StreamSender(const StreamConfig &config, uint16_t tenant,
                           uint16_t method_id, uint32_t call_id,
                           uint64_t stream_key, uint64_t total_bytes,
                           ByteSource source)
    : config_(config), tenant_(tenant), method_id_(method_id),
      call_id_(call_id), stream_key_(stream_key),
      total_bytes_(total_bytes), source_(std::move(source))
{
    PA_CHECK(stream_key_ != 0);
    PA_CHECK_GT(config_.chunk_bytes, 0u);
    chunk_buf_.resize(config_.chunk_bytes);
}

void
StreamSender::EmitChunk(FrameBuffer *out, uint64_t offset, size_t len)
{
    FrameHeader h;
    h.kind = FrameKind::kStreamChunk;
    // The per-attempt call id: bumped on every rewind so the channel's
    // hash-gated fault verdicts re-roll for retransmitted chunks.
    h.call_id = call_id_ + (stats_.attempts - 1);
    h.method_id = method_id_;
    h.tenant_id = tenant_;
    h.idempotency_key = stream_key_;
    h.payload_bytes =
        static_cast<uint32_t>(StreamChunkInfo::kWireBytes + len);

    uint8_t *slot = out->ReserveFrame(h, StreamChunkInfo::kWireBytes +
                                             len);
    StreamChunkInfo info{offset};
    PackStreamChunk(info, slot);
    const size_t got =
        source_(offset, slot + StreamChunkInfo::kWireBytes, len);
    PA_CHECK_EQ(got, len);

    // Compose the whole-stream CRC exactly once per byte: rewinds
    // re-send bytes already folded in (the source is a pure function of
    // offset, so the bytes are identical by contract).
    if (offset == crc_offset_) {
        crc_ = Crc32cExtend(crc_, slot + StreamChunkInfo::kWireBytes,
                            len);
        crc_offset_ += len;
    }
    out->CommitFrame(StreamChunkInfo::kWireBytes + len);

    ++stats_.chunks_sent;
    stats_.bytes_sent += len;
}

size_t
StreamSender::Pump(FrameBuffer *out, double now_ns)
{
    if (done_)
        return 0;
    size_t frames = 0;

    // Retransmit timeout: no ack progress for too long — the credit or
    // our chunks were lost. Rewind to the committed watermark. Two
    // cases additionally re-announce: no credit ever arrived (the
    // BEGIN or its credit was lost), and every byte already acked (the
    // END's response was lost — the receiver may have completed and
    // reclaimed the stream, so a bare END would read as garbage; the
    // fresh BEGIN resumes a live stream or replays the committed
    // response from the dedup cache).
    if (begin_sent_ &&
        now_ns - last_progress_ns_ > config_.retransmit_timeout_ns) {
        next_offset_ = acked_;
        end_sent_ = false;
        if (window_ == 0 || acked_ >= total_bytes_)
            begin_sent_ = false;
        ++stats_.retransmits;
        ++stats_.attempts;
        last_progress_ns_ = now_ns;
    }

    if (!begin_sent_) {
        FrameHeader h;
        h.kind = FrameKind::kStreamBegin;
        h.call_id = call_id_ + (stats_.attempts - 1);
        h.method_id = method_id_;
        h.tenant_id = tenant_;
        h.idempotency_key = stream_key_;
        uint8_t payload[StreamBeginInfo::kWireBytes];
        StreamBeginInfo info{total_bytes_, config_.chunk_bytes};
        PackStreamBegin(info, payload);
        h.payload_bytes = StreamBeginInfo::kWireBytes;
        out->Append(h, payload);
        begin_sent_ = true;
        last_progress_ns_ = now_ns;
        ++frames;
    }

    // Data: as many chunks as the cumulative credit window allows.
    while (next_offset_ < total_bytes_ && next_offset_ < window_) {
        const size_t len = static_cast<size_t>(
            std::min<uint64_t>(config_.chunk_bytes,
                               std::min(total_bytes_ - next_offset_,
                                        window_ - next_offset_)));
        EmitChunk(out, next_offset_, len);
        next_offset_ += len;
        ++frames;
    }

    if (next_offset_ >= total_bytes_ && !end_sent_) {
        FrameHeader h;
        h.kind = FrameKind::kStreamEnd;
        h.call_id = call_id_ + (stats_.attempts - 1);
        h.method_id = method_id_;
        h.tenant_id = tenant_;
        h.idempotency_key = stream_key_;
        uint8_t payload[StreamEndInfo::kWireBytes];
        StreamEndInfo info{total_bytes_, crc_};
        PackStreamEnd(info, payload);
        h.payload_bytes = StreamEndInfo::kWireBytes;
        out->Append(h, payload);
        end_sent_ = true;
        ++frames;
    }

    // Stall accounting: blocked on credit with data still to send.
    if (next_offset_ < total_bytes_ && next_offset_ >= window_) {
        if (stall_started_ns_ < 0) {
            stall_started_ns_ = now_ns;
            ++stats_.window_stalls;
        }
    }
    return frames;
}

void
StreamSender::HandleFrame(const Frame &frame, double now_ns)
{
    if (done_ || frame.header.idempotency_key != stream_key_)
        return;
    switch (frame.header.kind) {
    case FrameKind::kStreamCredit: {
        StreamCreditInfo info;
        if (!UnpackStreamCredit(frame.payload,
                                frame.header.payload_bytes, &info)) {
            return;
        }
        // Cumulative folds: duplicated/stale credits are idempotent.
        const bool progressed =
            info.acked_bytes > acked_ || info.window_bytes > window_;
        acked_ = std::max(acked_, info.acked_bytes);
        window_ = std::max(window_, info.window_bytes);
        if (progressed)
            last_progress_ns_ = now_ns;
        if (frame.header.status != StatusCode::kOk) {
            // NACK: the receiver saw a gap. Rewind to its watermark and
            // retransmit under a fresh attempt id.
            ++stats_.nacks_received;
            next_offset_ = acked_;
            end_sent_ = false;
            ++stats_.retransmits;
            ++stats_.attempts;
            last_progress_ns_ = now_ns;
        }
        if (stall_started_ns_ >= 0 && window_ > next_offset_) {
            stats_.stalled_ns += now_ns - stall_started_ns_;
            stall_started_ns_ = -1;
        }
        break;
    }
    case FrameKind::kResponse:
        done_ = true;
        final_status_ = frame.header.status;
        response_.assign(frame.payload,
                         frame.payload + frame.header.payload_bytes);
        break;
    case FrameKind::kError:
    case FrameKind::kStreamCancel:
        done_ = true;
        final_status_ = frame.header.status;
        break;
    default:
        break;
    }
}

// ---------------------------------------------------------------------
// StreamChannel
// ---------------------------------------------------------------------

void
StreamChannel::DeliverMangled(const Frame &frame, bool truncate,
                              const Deliver &deliver)
{
    // Re-materialize the frame (correctly sealed), mangle the raw
    // bytes, then run the mangled image through a real scan so the CRC
    // machinery — not this model — decides what the receiver sees.
    scratch_.clear();
    scratch_.Append(frame.header, frame.payload);
    if (truncate) {
        // Lose the frame's tail: half the payload (at least one byte).
        const size_t keep = FrameHeader::kWireBytes +
                            frame.header.payload_bytes / 2;
        scratch_.Truncate(keep);
    } else {
        // Flip one payload byte mid-chunk.
        scratch_.mutable_data()[FrameHeader::kWireBytes +
                                frame.header.payload_bytes / 2] ^= 0x5a;
    }
    size_t offset = 0;
    StatusCode err = StatusCode::kOk;
    auto mangled = scratch_.Next(&offset, &err);
    if (mangled.has_value()) {
        // The mangle dodged the CRC (cannot happen for a covered byte
        // flip; kept for safety): deliver what survived.
        deliver(*mangled);
        ++stats_.delivered;
        return;
    }
    // Truncation (scan starves) or CRC failure (kDataLoss): the
    // corruption was *detected*, the frame never reaches the receiver,
    // and recovery is the stream protocol's job.
    ++stats_.detected_by_crc;
}

size_t
StreamChannel::Pump(const FrameBuffer &wire, const Deliver &deliver)
{
    size_t offset = 0;
    const size_t delivered_before = stats_.delivered;
    std::optional<Frame> stashed;  // reorder: held back one slot
    for (;;) {
        StatusCode err = StatusCode::kOk;
        auto frame = wire.Next(&offset, &err);
        if (!frame.has_value())
            break;
        ++stats_.frames_pumped;

        sim::ChunkFaultKind verdict = sim::ChunkFaultKind::kNone;
        StreamChunkInfo info;
        if (injector_ != nullptr &&
            frame->header.kind == FrameKind::kStreamChunk &&
            UnpackStreamChunk(frame->payload,
                              frame->header.payload_bytes, &info)) {
            verdict = injector_->SampleChunkFault(
                frame->header.idempotency_key,
                ChunkFaultIndex(info.offset, frame->header.call_id));
        }

        switch (verdict) {
        case sim::ChunkFaultKind::kNone:
            deliver(*frame);
            ++stats_.delivered;
            break;
        case sim::ChunkFaultKind::kDrop:
            ++stats_.dropped;
            break;
        case sim::ChunkFaultKind::kTruncate:
            ++stats_.truncated;
            DeliverMangled(*frame, /*truncate=*/true, deliver);
            break;
        case sim::ChunkFaultKind::kCorrupt:
            ++stats_.corrupted;
            DeliverMangled(*frame, /*truncate=*/false, deliver);
            break;
        case sim::ChunkFaultKind::kDuplicate:
            deliver(*frame);
            deliver(*frame);
            stats_.delivered += 2;
            ++stats_.duplicated;
            break;
        case sim::ChunkFaultKind::kReorder:
            // Hold this frame back one delivery slot: it swaps places
            // with its successor (or arrives last when none follows).
            if (stashed.has_value()) {
                deliver(*stashed);
                ++stats_.delivered;
            }
            stashed = *frame;
            ++stats_.reordered;
            continue;
        }
        if (stashed.has_value()) {
            deliver(*stashed);
            ++stats_.delivered;
            stashed.reset();
        }
    }
    if (stashed.has_value()) {
        deliver(*stashed);
        ++stats_.delivered;
    }
    return stats_.delivered - delivered_before;
}

}  // namespace protoacc::rpc
