/**
 * @file
 * The paper's published fleet-wide aggregates (§3), used to seed the
 * synthetic fleet model.
 *
 * We do not have Google's GWP/protobufz/protodb data; what the paper
 * publishes are the *marginal* distributions in Figures 2-4 and 7 plus
 * scalar facts (§3.2-§3.8). The synthetic fleet is parameterized by
 * these marginals, and the figure-reproduction benches then re-derive
 * each figure through the same sampling pipeline, closing the loop.
 */
#ifndef PROTOACC_PROFILE_DISTRIBUTIONS_H
#define PROTOACC_PROFILE_DISTRIBUTIONS_H

#include <array>
#include <string>
#include <vector>

#include "proto/wire_format.h"

namespace protoacc::profile {

/// One operation class of Figure 2 with its share of fleet-wide C++
/// protobuf cycles.
struct OpShare
{
    std::string op;
    double pct;
};

/**
 * Figure 2: fleet-wide C++ protobuf cycles by operation. Derived from
 * the paper: deserialization is 2.2% of fleet cycles (26.0% of the
 * 8.45% of fleet cycles spent in C++ protobufs), serialization 8.8% and
 * ByteSize 6.0% of protobuf cycles (footnote 4), merge+copy+clear
 * 17.1% (§7), constructors 6.4%, destructors 13.9% (§7), remainder
 * "other".
 */
const std::vector<OpShare> &PaperCyclesByOp();

/// Fraction of fleet protobuf cycles spent in C++ (§3.2).
inline constexpr double kCppShareOfProtobufCycles = 0.88;
/// Protobuf share of all fleet cycles (§3.2).
inline constexpr double kProtobufShareOfFleetCycles = 0.096;
/// Fraction of serialized/deserialized bytes defined as proto2 (§3.3).
inline constexpr double kProto2ByteShare = 0.96;
/// Fractions of deser/ser cycles attributable to the RPC stack (§3.4).
inline constexpr double kDeserRpcShare = 0.163;
inline constexpr double kSerRpcShare = 0.352;

/**
 * Figure 3: top-level message encoded-size distribution over the 10
 * paper buckets (percent of messages). Chosen to satisfy the published
 * facts: 24% <= 8 B, 56% <= 32 B, 93% <= 512 B, 0.08% in the top
 * bucket, and the top bucket holding >= 13.7x the bytes of the bottom.
 */
const std::array<double, 10> &PaperMsgSizePct();

/// Figure 4a: share of observed fields by primitive type (percent).
struct FieldTypeShare
{
    proto::FieldType type;
    bool repeated;
    double field_pct;  ///< Figure 4a: share of field count
    double bytes_pct;  ///< Figure 4b: share of message bytes
};
const std::vector<FieldTypeShare> &PaperFieldTypeShares();

/**
 * Figure 4c: bytes-like field size distribution over the 10 buckets
 * (percent of bytes fields). Published anchors: 4097-32768 is 1.3%,
 * 32769-inf is 0.06%, and the top bucket holds >= 7.2x the bytes of
 * the bottom.
 */
const std::array<double, 10> &PaperBytesFieldSizePct();

/**
 * Figure 7: field-number usage density (= present fields / defined
 * field-number range), bucketed in tenths [0.0-0.1), ... [0.9-1.0].
 * At least 92% of observed messages have density > 1/64 (§3.7).
 */
const std::array<double, 10> &PaperDensityPct();

/// §3.8 sub-message depth facts: 99.9% of bytes at depth <= 12,
/// 99.999% at depth <= 25, max < 100.
inline constexpr int kDepth999 = 12;
inline constexpr int kDepth99999 = 25;
inline constexpr int kMaxDepth = 100;

/// §3.9: >90% of messages populate <52% of their defined fields.
inline constexpr double kMeanFieldPresence = 0.45;

/**
 * A complete message-shape profile: everything schema/message
 * generation needs. Defaults to the paper's fleet-wide marginals; the
 * HyperProtoBench generator (src/hpb) substitutes per-service *fitted*
 * profiles, mirroring the paper's §5.2 pipeline.
 */
struct ShapeProfile
{
    std::vector<FieldTypeShare> type_shares = PaperFieldTypeShares();
    std::array<double, 10> msg_size_pct = PaperMsgSizePct();
    std::array<double, 10> bytes_field_size_pct =
        PaperBytesFieldSizePct();
    std::array<double, 10> density_pct = PaperDensityPct();
    double mean_presence = kMeanFieldPresence;
};

}  // namespace protoacc::profile

#endif  // PROTOACC_PROFILE_DISTRIBUTIONS_H
