#include "profile/fleet_model.h"

#include <algorithm>
#include <cmath>

#include "common/histogram.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::profile {

using proto::FieldType;
using proto::Label;
using proto::Message;

namespace {

/// Draw a byte size from one of the paper's 10 buckets (log-uniform
/// within the bucket; the open top bucket is capped at 256 KiB).
uint64_t
DrawBucketedSize(Rng *rng, const std::array<double, 10> &bucket_pct)
{
    const std::vector<double> weights(bucket_pct.begin(),
                                      bucket_pct.end());
    const size_t bucket = rng->NextWeighted(weights);
    const auto &b = PaperSizeBuckets()[bucket];
    const uint64_t lo = b.lo == 0 ? 1 : b.lo;
    const uint64_t hi = b.hi == UINT64_MAX ? 256 * 1024 : b.hi;
    return rng->NextLogUniform(lo, hi);
}

/// Field-count weights from the profile's Figure 4a analog.
std::vector<double>
FieldCountWeights(const ShapeProfile &profile)
{
    std::vector<double> w;
    for (const auto &share : profile.type_shares)
        w.push_back(share.field_pct);
    return w;
}

/// A density target from the profile's Figure 7 deciles.
double
DrawDensity(Rng *rng, const ShapeProfile &profile)
{
    const std::vector<double> weights(profile.density_pct.begin(),
                                      profile.density_pct.end());
    const size_t decile = rng->NextWeighted(weights);
    const double lo = decile / 10.0;
    return std::max(0.02, lo + rng->NextDouble() * 0.1);
}

}  // namespace

SyntheticService::SyntheticService(std::string name, uint64_t seed,
                                   const FleetParams &params)
    : name_(std::move(name)), params_(params)
{
    Rng rng(seed);
    int counter = 0;
    for (int t = 0; t < params.top_level_types_per_service; ++t) {
        top_level_types_.push_back(GenerateType(&rng, 0, &counter));
        type_weights_.push_back(0.25 + rng.NextDouble());
    }
    proto2_.resize(pool_.message_count());
    for (size_t i = 0; i < proto2_.size(); ++i)
        proto2_[i] = rng.NextBool(params.proto2_share);
    pool_.Compile(proto::HasbitsMode::kSparse);
}

int
SyntheticService::GenerateType(Rng *rng, int depth, int *counter)
{
    const std::string type_name =
        name_ + "_T" + std::to_string((*counter)++);
    const int msg = pool_.AddMessage(type_name);

    const int num_fields = static_cast<int>(
        rng->NextRange(params_.min_fields, params_.max_fields));
    // Field-number layout realizes a Figure 7 density target: with
    // presence averaging kMeanFieldPresence, a range of
    // F * presence / density keeps (present / range) near the target.
    const double density = DrawDensity(rng, params_.profile);
    const int range = std::max(
        num_fields,
        static_cast<int>(num_fields * params_.profile.mean_presence /
                         density));
    const double gap_factor =
        num_fields > 1
            ? static_cast<double>(range - num_fields) / (num_fields - 1)
            : 0.0;

    const std::vector<double> type_weights =
        FieldCountWeights(params_.profile);
    const auto &shares = params_.profile.type_shares;

    double next_number = 1 + rng->NextBounded(4);
    for (int i = 0; i < num_fields; ++i) {
        const uint32_t number = static_cast<uint32_t>(next_number);
        next_number += 1 + gap_factor * 2.0 * rng->NextDouble();

        const bool make_sub =
            depth < params_.depth_limit &&
            rng->NextBool(params_.submessage_field_prob *
                          std::pow(0.55, depth));
        if (make_sub) {
            const int child = GenerateType(rng, depth + 1, counter);
            pool_.AddMessageField(msg, "f" + std::to_string(number),
                                  number, child,
                                  rng->NextBool(0.3) ? Label::kRepeated
                                                     : Label::kOptional);
            continue;
        }
        const auto &share = shares[rng->NextWeighted(type_weights)];
        const Label label =
            share.repeated ? Label::kRepeated : Label::kOptional;
        const bool packed = share.repeated &&
                            !proto::IsBytesLike(share.type) &&
                            rng->NextBool(params_.packed_prob);
        pool_.AddField(msg, "f" + std::to_string(number), number,
                       share.type, label, packed);
    }
    // Some real-world types are recursive (Figure 1); a self-edge is
    // what lets deep messages (§3.8 tail) exist at all.
    if (depth == 0 && rng->NextBool(0.35)) {
        pool_.AddMessageField(
            msg, "self",
            static_cast<uint32_t>(next_number) + 1, msg);
    }
    return msg;
}

int
SyntheticService::SampleTopLevelType(Rng *rng) const
{
    return top_level_types_[rng->NextWeighted(type_weights_)];
}

bool
SyntheticService::is_proto2(int msg_index) const
{
    return proto2_[msg_index];
}

void
SyntheticService::PopulateMessage(Message msg, Rng *rng,
                                  uint64_t size_budget,
                                  int depth_budget) const
{
    const auto &desc = msg.descriptor();
    // Per-message presence rate jittered around the fleet mean (§3.9).
    const double presence = std::clamp(
        params_.profile.mean_presence + (rng->NextDouble() - 0.5) * 0.5,
        0.05, 0.95);
    uint64_t used = 0;
    const proto::FieldDescriptor *last_bytes_field = nullptr;

    const auto remaining_budget = [&]() -> uint64_t {
        return used >= size_budget ? 0 : size_budget - used;
    };

    // Tiny messages (the dominant Figure 3 population) hold a single
    // small field sized to the budget.
    if (size_budget <= 8) {
        for (const auto &f : desc.fields()) {
            if (f.repeated() || f.type == FieldType::kMessage)
                continue;
            if (proto::IsBytesLike(f.type)) {
                msg.SetString(
                    f, std::string(
                           size_budget > 2 ? size_budget - 2 : 0, 't'));
                return;
            }
            if (proto::InMemorySize(f.type) + 1 <= size_budget) {
                msg.SetScalarBits(
                    f, f.type == FieldType::kBool
                           ? rng->NextBounded(2)
                           : rng->NextBounded(100));
                return;
            }
        }
        return;  // nothing small enough: empty message (0 bytes)
    }

    for (const auto &f : desc.fields()) {
        // Deep-tail messages may overrun the byte budget to realize
        // their drawn nesting depth (depth dominates size for them).
        if (used >= size_budget && used > 0 && depth_budget <= 4)
            break;
        if (used >= size_budget && used > 0 &&
            f.type != FieldType::kMessage)
            continue;
        // A message drawn with a deep depth budget (the §3.8 tail)
        // actually realizes it: sub-message fields are near-certain to
        // be present until the budget is spent.
        const double field_presence =
            f.type == FieldType::kMessage && depth_budget > 4
                ? 0.95
                : presence;
        if (!rng->NextBool(field_presence))
            continue;

        if (f.type == FieldType::kMessage) {
            if (depth_budget <= 0)
                continue;
            const int elems =
                f.repeated()
                    ? 1 + static_cast<int>(rng->NextBounded(3))
                    : 1;
            for (int e = 0; e < elems; ++e) {
                // Sub-messages get a share of the remaining budget;
                // deep-tail messages keep a floor so the chain can
                // actually reach its drawn depth (§3.8).
                uint64_t share =
                    1 + static_cast<uint64_t>(
                            remaining_budget() *
                            (0.2 + 0.5 * rng->NextDouble()));
                if (depth_budget > 4 && share < 12)
                    share = 12;
                Message sub = f.repeated()
                                  ? msg.AddRepeatedMessage(f)
                                  : msg.MutableMessage(f);
                PopulateMessage(sub, rng, share, depth_budget - 1);
                used += 2 + share / 2;  // rough: key + len + payload
            }
            continue;
        }
        if (proto::IsBytesLike(f.type)) {
            last_bytes_field = &f;
            const int elems =
                f.repeated()
                    ? 1 + static_cast<int>(rng->NextBounded(3))
                    : 1;
            for (int e = 0; e < elems; ++e) {
                uint64_t len = DrawBucketedSize(
                    rng, params_.profile.bytes_field_size_pct);
                if (len > remaining_budget())
                    len = std::max<uint64_t>(1, remaining_budget());
                std::string payload(len, 'p');
                // Cheap content variation without O(n) RNG calls.
                if (len > 0)
                    payload[rng->NextBounded(len)] = 'q';
                if (f.repeated())
                    msg.AddRepeatedString(f, payload);
                else
                    msg.SetString(f, payload);
                used += 2 + len;
            }
            continue;
        }
        // Scalar field.
        const int elems = f.repeated()
                              ? 1 + static_cast<int>(rng->NextBounded(5))
                              : 1;
        for (int e = 0; e < elems; ++e) {
            const uint64_t bits = proto::RandomScalarBits(
                f.type, rng, /*small_varint_prob=*/0.6);
            if (f.repeated())
                msg.AddRepeatedBits(f, bits);
            else
                msg.SetScalarBits(f, bits);
            used += 1 + proto::InMemorySize(f.type);
        }
    }

    // Large budgets are filled by growing a bytes-like field — this is
    // what makes large messages bytes-dominated (Figure 4b).
    if (last_bytes_field != nullptr && size_budget > 64 &&
        used < size_budget * 7 / 10) {
        const uint64_t fill = size_budget - used;
        std::string payload(fill, 'f');
        if (last_bytes_field->repeated())
            msg.AddRepeatedString(*last_bytes_field, payload);
        else
            msg.SetString(*last_bytes_field, payload);
    }
}

Message
SyntheticService::BuildMessage(int msg_index, proto::Arena *arena,
                               Rng *rng) const
{
    Message msg = Message::Create(arena, pool_, msg_index);
    const uint64_t budget =
        DrawBucketedSize(rng, params_.profile.msg_size_pct);
    // Depth budget: mostly shallow, occasionally deep (§3.8).
    int depth_budget = 2;
    const double draw = rng->NextDouble();
    if (draw < 0.001) {
        depth_budget = kDepth999 +
                       static_cast<int>(rng->NextBounded(
                           kDepth99999 - kDepth999 + 1));
    } else if (draw < 0.05) {
        depth_budget = 4 + static_cast<int>(rng->NextBounded(8));
    }
    PopulateMessage(msg, rng, budget, depth_budget);
    return msg;
}

Fleet::Fleet(const FleetParams &params, uint64_t seed)
{
    Rng rng(seed);
    for (int s = 0; s < params.num_services; ++s) {
        services_.push_back(std::make_unique<SyntheticService>(
            "svc" + std::to_string(s), rng.Next(), params));
        // Zipf-ish cycle shares: a few services dominate (§5.2).
        weights_.push_back(1.0 / (1 + s));
        services_.back()->set_weight(weights_.back());
    }
}

size_t
Fleet::SampleService(Rng *rng) const
{
    return rng->NextWeighted(weights_);
}

}  // namespace protoacc::profile
