#include "profile/cycle_estimator.h"

#include "harness/microbench.h"

namespace protoacc::profile {

namespace {

using harness::Microbench;

/// Per-byte deser/ser costs of one microbenchmark on @p params.
void
MeasureSlice(const Microbench &bench, const cpu::CpuParams &params,
             double *deser_cyc_per_b, double *ser_cyc_per_b)
{
    const harness::Throughput d =
        harness::CpuDeserialize(params, bench.workload, /*repeats=*/2);
    const harness::Throughput s =
        harness::CpuSerialize(params, bench.workload, /*repeats=*/2);
    *deser_cyc_per_b = d.cycles / d.wire_bytes;
    *ser_cyc_per_b = s.cycles / s.wire_bytes;
}

double
TypeBytes(const ShapeAggregate &agg, proto::FieldType type)
{
    double bytes = 0;
    for (bool repeated : {false, true}) {
        auto it = agg.by_type.find({static_cast<int>(type), repeated});
        if (it != agg.by_type.end())
            bytes += it->second.wire_bytes;
    }
    return bytes;
}

}  // namespace

std::vector<Slice>
EstimateCycleShares(const ShapeAggregate &agg,
                    const cpu::CpuParams &params)
{
    std::vector<Slice> slices;

    // 10 varint-size slices (the protobufz histogram labels varint
    // sizes exactly, §3.6.4).
    for (int n = 1; n <= 10; ++n) {
        Slice s;
        s.name = "varint-" + std::to_string(n);
        s.bytes = agg.varint_bytes_by_size[n];
        const auto bench =
            harness::MakeVarintBench(n, /*repeated=*/false);
        MeasureSlice(*bench, params, &s.deser_cyc_per_b,
                     &s.ser_cyc_per_b);
        slices.push_back(s);
    }

    // 10 bytes-like size-bucket slices, benchmarked at the bucket
    // midpoint (§3.6.4's interpolation rule).
    const auto &buckets = PaperSizeBuckets();
    for (size_t i = 0; i < buckets.size(); ++i) {
        Slice s;
        s.name = std::string("bytes-") + buckets[i].label;
        s.bytes = agg.bytes_field_sizes.weight(i);
        const uint64_t hi =
            buckets[i].hi == UINT64_MAX ? 128 * 1024 : buckets[i].hi;
        const size_t midpoint = (buckets[i].lo + hi) / 2;
        const auto bench = harness::MakeStringBench(s.name, midpoint);
        MeasureSlice(*bench, params, &s.deser_cyc_per_b,
                     &s.ser_cyc_per_b);
        slices.push_back(s);
    }

    // float-like, double-like, fixed32-like, fixed64-like (Table 1).
    struct FixedClass
    {
        const char *name;
        std::vector<proto::FieldType> types;
    };
    const std::vector<FixedClass> fixed_classes = {
        {"float", {proto::FieldType::kFloat}},
        {"double", {proto::FieldType::kDouble}},
        {"fixed32", {proto::FieldType::kFixed32,
                     proto::FieldType::kSfixed32}},
        {"fixed64", {proto::FieldType::kFixed64,
                     proto::FieldType::kSfixed64}},
    };
    for (const auto &cls : fixed_classes) {
        Slice s;
        s.name = cls.name;
        for (proto::FieldType t : cls.types)
            s.bytes += TypeBytes(agg, t);
        const auto bench = cls.types[0] == proto::FieldType::kFloat ||
                                   cls.types[0] ==
                                       proto::FieldType::kFixed32
                               ? harness::MakeFloatBench(false)
                               : harness::MakeDoubleBench(false);
        MeasureSlice(*bench, params, &s.deser_cyc_per_b,
                     &s.ser_cyc_per_b);
        slices.push_back(s);
    }
    PA_CHECK_EQ(slices.size(), 24u);  // the paper's 24 slices

    // time share = bytes x cycles/byte, normalized.
    double deser_total = 0, ser_total = 0;
    for (const auto &s : slices) {
        deser_total += s.bytes * s.deser_cyc_per_b;
        ser_total += s.bytes * s.ser_cyc_per_b;
    }
    for (auto &s : slices) {
        s.deser_time_pct =
            deser_total == 0
                ? 0
                : 100.0 * s.bytes * s.deser_cyc_per_b / deser_total;
        s.ser_time_pct =
            ser_total == 0
                ? 0
                : 100.0 * s.bytes * s.ser_cyc_per_b / ser_total;
    }
    return slices;
}

double
DeserTimeShareAboveGbps(const std::vector<Slice> &slices,
                        const cpu::CpuParams &params, double gb_per_s)
{
    // A slice runs at freq / (cycles-per-byte) bytes per second.
    double share = 0;
    for (const auto &s : slices) {
        const double bytes_per_s =
            params.freq_ghz * 1e9 / s.deser_cyc_per_b;
        if (bytes_per_s > gb_per_s * 1e9)
            share += s.deser_time_pct;
    }
    return share;
}

}  // namespace protoacc::profile
