#include "profile/distributions.h"

namespace protoacc::profile {

const std::vector<OpShare> &
PaperCyclesByOp()
{
    // Percent of fleet-wide C++ protobuf cycles (Figure 2). Deser:
    // 2.2% of fleet cycles / (9.6% * 88% C++) = 26.0%. Ser 8.8% and
    // ByteSize 6.0% per footnote 4. Merge+copy+clear together 17.1%
    // (§7); constructors 6.4% and destructors 13.9% (§7).
    static const std::vector<OpShare> kShares = {
        {"deserialize", 26.0}, {"serialize", 8.8}, {"byte_size", 6.0},
        {"merge", 7.5},        {"copy", 5.2},      {"clear", 4.4},
        {"constructors", 6.4}, {"destructors", 13.9}, {"other", 21.8},
    };
    return kShares;
}

const std::array<double, 10> &
PaperMsgSizePct()
{
    // Buckets: 0-8, 9-16, 17-32, 33-64, 65-128, 129-256, 257-512,
    // 513-4096, 4097-32768, 32769-inf. Satisfies: 24% <= 8 B,
    // cumulative 56% <= 32 B, 93% <= 512 B, 0.08% in the top bucket.
    static const std::array<double, 10> kPct = {
        24.0, 14.0, 18.0, 12.0, 10.0, 8.0, 7.0, 5.5, 1.42, 0.08};
    return kPct;
}

const std::vector<FieldTypeShare> &
PaperFieldTypeShares()
{
    using proto::FieldType;
    // (type, repeated, % of fields [Fig 4a], % of bytes [Fig 4b]).
    // Varint-like types hold >56% of fields; bytes/string (incl.
    // repeated) hold >92% of bytes.
    static const std::vector<FieldTypeShare> kShares = {
        {FieldType::kInt32, false, 18.0, 1.2},
        {FieldType::kInt64, false, 14.0, 1.3},
        {FieldType::kEnum, false, 10.0, 0.5},
        {FieldType::kBool, false, 6.0, 0.2},
        {FieldType::kUint64, false, 5.0, 0.5},
        {FieldType::kUint32, false, 2.0, 0.2},
        {FieldType::kSint64, false, 1.0, 0.1},
        {FieldType::kInt32, true, 2.0, 0.4},
        {FieldType::kInt64, true, 1.5, 0.4},
        {FieldType::kString, false, 18.0, 44.8},
        {FieldType::kBytes, false, 5.0, 28.0},
        {FieldType::kString, true, 3.0, 12.0},
        {FieldType::kBytes, true, 1.0, 7.5},
        {FieldType::kDouble, false, 5.0, 1.1},
        {FieldType::kFloat, false, 3.5, 0.5},
        {FieldType::kDouble, true, 1.0, 0.6},
        {FieldType::kFixed64, false, 1.5, 0.3},
        {FieldType::kFixed32, false, 1.0, 0.1},
        {FieldType::kSfixed64, false, 0.5, 0.1},
        {FieldType::kFloat, true, 1.0, 0.2},
    };
    return kShares;
}

const std::array<double, 10> &
PaperBytesFieldSizePct()
{
    // Same bucket bounds as Figure 3. Anchors: 1.3% in 4097-32768 and
    // 0.06% in 32769-inf (§3.6.3); small fields dominate by count.
    static const std::array<double, 10> kPct = {
        36.0, 19.0, 14.0, 10.0, 7.0, 5.0, 4.0, 3.64, 1.3, 0.06};
    return kPct;
}

const std::array<double, 10> &
PaperDensityPct()
{
    // Deciles of field-number usage density, weighted by observed
    // messages (Figure 7). Mass concentrates above 0.3; only the first
    // decile contains the sub-1/64 population ("0.00 bucket").
    static const std::array<double, 10> kPct = {
        8.0, 6.0, 7.0, 9.0, 10.0, 11.0, 12.0, 12.0, 10.0, 15.0};
    return kPct;
}

}  // namespace protoacc::profile
