/**
 * @file
 * The §3.6.4 cycle-estimation model (Figures 5 and 6).
 *
 * The paper cannot attribute fleet cycles to field types directly, so
 * it (1) groups field types into performance-similar classes (Table 1),
 * (2) splits fleet protobuf bytes into 24 [class, size] slices —
 * bytes-like x 10 size buckets, varint-like x 10 encoded sizes, float,
 * double, fixed32, fixed64 — and (3) multiplies each slice's byte share
 * by a per-byte cost measured with a purpose-built microbenchmark.
 *
 * We reproduce the model exactly: the byte shares come from a
 * protobufz-analog collection (samplers.h) and the per-byte costs are
 * measured by running single-slice microbenchmarks on the CPU cost
 * model of the machine under study.
 */
#ifndef PROTOACC_PROFILE_CYCLE_ESTIMATOR_H
#define PROTOACC_PROFILE_CYCLE_ESTIMATOR_H

#include <string>
#include <vector>

#include "cpu/cpu_model.h"
#include "profile/samplers.h"

namespace protoacc::profile {

/// One of the 24 [field-type-like, size] slices.
struct Slice
{
    std::string name;
    double bytes = 0;          ///< fleet bytes attributed to the slice
    double deser_cyc_per_b = 0;
    double ser_cyc_per_b = 0;
    double deser_time_pct = 0;  ///< Figure 5 value
    double ser_time_pct = 0;    ///< Figure 6 value
};

/**
 * Build the 24 slices from a protobufz shape aggregate and measure
 * per-byte costs on @p params.
 */
std::vector<Slice> EstimateCycleShares(const ShapeAggregate &agg,
                                       const cpu::CpuParams &params);

/// Fraction of deserialization time spent on data processed faster
/// than @p gbps on @p params (the paper: "only 14% of time is spent
/// deserializing protobuf data at higher than 1 GB/s").
double DeserTimeShareAboveGbps(const std::vector<Slice> &slices,
                               const cpu::CpuParams &params,
                               double gb_per_s);

}  // namespace protoacc::profile

#endif  // PROTOACC_PROFILE_CYCLE_ESTIMATOR_H
