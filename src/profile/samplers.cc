#include "profile/samplers.h"

#include "proto/serializer.h"

namespace protoacc::profile {

using proto::FieldType;
using proto::Message;

GwpSampler::GwpSampler(const Fleet *fleet, uint64_t seed)
    : fleet_(fleet), rng_(seed)
{
    // Each service has its own operation mix; services jitter around
    // the fleet-wide mix so the aggregate is non-trivially re-derived.
    service_jitter_.resize(fleet->service_count());
    for (auto &jitter : service_jitter_) {
        for (const auto &share : PaperCyclesByOp())
            jitter[share.op] = 0.6 + 0.8 * rng_.NextDouble();
    }
}

CycleProfile
GwpSampler::Collect(int visits)
{
    CycleProfile profile;
    for (int v = 0; v < visits; ++v) {
        const size_t svc = fleet_->SampleService(&rng_);
        for (const auto &share : PaperCyclesByOp()) {
            // Sampled cycles: service weight x op share x jitter x
            // visit-level sampling noise.
            const double cycles = fleet_->service(svc).weight() *
                                  share.pct *
                                  service_jitter_[svc][share.op] *
                                  (0.5 + rng_.NextDouble());
            profile.cycles_by_op[share.op] += cycles;
            profile.total += cycles;
        }
    }
    return profile;
}

ProtobufzSampler::ProtobufzSampler(const Fleet *fleet, uint64_t seed)
    : fleet_(fleet), rng_(seed)
{}

namespace {

/// Encoded size of one scalar value (value only).
double
ScalarValueWireBytes(const proto::FieldDescriptor &f, uint64_t bits)
{
    switch (proto::WireTypeForField(f.type)) {
      case proto::WireType::kVarint:
        return proto::VarintValueSize(f.type, bits);
      case proto::WireType::kFixed32:
        return 4;
      default:
        return 8;
    }
}

}  // namespace

void
ProtobufzSampler::WalkMessage(const Message &msg, int depth,
                              ShapeAggregate *agg)
{
    const auto &desc = msg.descriptor();
    uint64_t present = 0;
    for (const auto &f : desc.fields()) {
        const bool has =
            f.repeated() ? msg.RepeatedSize(f) > 0 : msg.Has(f);
        if (!has)
            continue;
        ++present;

        if (f.type == FieldType::kMessage) {
            // §3.6.1: sub-messages are accounted via the primitive
            // fields they contain.
            if (f.repeated()) {
                for (uint32_t i = 0; i < msg.RepeatedSize(f); ++i)
                    WalkMessage(msg.GetRepeatedMessage(f, i), depth + 1,
                                agg);
            } else {
                WalkMessage(msg.GetMessage(f), depth + 1, agg);
            }
            continue;
        }

        auto &stats = agg->by_type[{static_cast<int>(f.type),
                                    f.repeated()}];
        const int tag_size =
            proto::VarintSize(proto::MakeTag(f.number,
                                             proto::WireType::kVarint));
        if (proto::IsBytesLike(f.type)) {
            const uint32_t n = f.repeated() ? msg.RepeatedSize(f) : 1;
            for (uint32_t i = 0; i < n; ++i) {
                const size_t len =
                    f.repeated() ? msg.GetRepeatedString(f, i).size()
                                 : msg.GetString(f).size();
                ++stats.count;
                const double bytes =
                    tag_size + proto::VarintSize(len) + len;
                stats.wire_bytes += bytes;
                agg->bytes_field_sizes.AddSized(len, bytes);
                agg->bytes_by_depth[depth] += bytes;
            }
            continue;
        }

        // Scalar (varint-like or fixed).
        const uint32_t n = f.repeated() ? msg.RepeatedSize(f) : 1;
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t bits;
            if (f.repeated()) {
                const uint32_t width = proto::InMemorySize(f.type);
                bits = 0;
                memcpy(&bits, msg.repeated_field(f)->at(i, width),
                       width);
            } else {
                bits = msg.GetScalarBits(f);
            }
            ++stats.count;
            const double vbytes = ScalarValueWireBytes(f, bits);
            const double bytes = tag_size + vbytes;
            stats.wire_bytes += bytes;
            agg->bytes_by_depth[depth] += bytes;
            if (proto::IsVarintType(f.type)) {
                const int sz = static_cast<int>(vbytes);
                agg->varint_bytes_by_size[sz] += bytes;
            }
        }
    }

    // Density observation for this (sub-)message instance, joined with
    // the protodb-supplied field-number range (§3.7 / Figure 7).
    const uint32_t range = desc.field_number_range();
    if (range > 0) {
        const double density =
            static_cast<double>(present) / static_cast<double>(range);
        size_t decile = static_cast<size_t>(density * 10.0);
        if (decile > 9)
            decile = 9;
        ++agg->density_deciles[decile];
        if (density > 1.0 / 64.0)
            ++agg->density_over_1_64;
        ++agg->density_samples;
    }
    if (depth > agg->max_depth)
        agg->max_depth = depth;
}

void
ProtobufzSampler::SampleMessage(const SyntheticService &svc,
                                ShapeAggregate *agg)
{
    const int type = svc.SampleTopLevelType(&rng_);
    proto::Arena arena;
    const Message msg = svc.BuildMessage(type, &arena, &rng_);
    const size_t encoded = proto::ByteSize(msg);
    agg->msg_sizes.AddSized(encoded, static_cast<double>(encoded));
    agg->total_bytes += static_cast<double>(encoded);
    if (svc.is_proto2(type))
        agg->proto2_bytes += static_cast<double>(encoded);
    ++agg->messages_sampled;
    WalkMessage(msg, 0, agg);
}

ShapeAggregate
ProtobufzSampler::Collect(int top_level_messages)
{
    ShapeAggregate agg;
    for (int i = 0; i < top_level_messages; ++i) {
        const size_t svc_index = fleet_->SampleService(&rng_);
        SampleMessage(fleet_->service(svc_index), &agg);
    }
    return agg;
}

ShapeAggregate
ProtobufzSampler::CollectService(size_t service_index,
                                 int top_level_messages)
{
    ShapeAggregate agg;
    for (int i = 0; i < top_level_messages; ++i)
        SampleMessage(fleet_->service(service_index), &agg);
    return agg;
}

SchemaStats
CollectSchemaStats(const Fleet &fleet)
{
    SchemaStats stats;
    for (size_t s = 0; s < fleet.service_count(); ++s) {
        const SyntheticService &svc = fleet.service(s);
        const auto &pool = svc.pool();
        for (size_t m = 0; m < pool.message_count(); ++m) {
            const auto &desc = pool.message(static_cast<int>(m));
            ++stats.message_types;
            if (svc.is_proto2(static_cast<int>(m)))
                ++stats.proto2_types;
            stats.fields += desc.field_count();
            for (const auto &f : desc.fields()) {
                if (f.repeated() && !proto::IsBytesLike(f.type) &&
                    f.type != FieldType::kMessage) {
                    ++stats.repeated_scalar_fields;
                    if (f.packed)
                        ++stats.packed_repeated_fields;
                }
            }
            if (desc.field_number_range() > stats.max_field_number_range)
                stats.max_field_number_range = desc.field_number_range();
        }
    }
    return stats;
}

}  // namespace protoacc::profile
