/**
 * @file
 * Fleet-observation tooling: analogs of the paper's three data sources
 * (§3.1).
 *
 *  - GwpSampler    ~ Google-Wide Profiling CPU cycle profiles: visits
 *    weighted services and records (service, operation, cycles)
 *    samples; Figure 2 aggregates these.
 *  - ProtobufzSampler ~ the protobufz message-shape sampler: visits a
 *    service, samples top-level messages, and records complete shape
 *    information — encoded size, per-field type/size stats, density,
 *    depth — *measured from real serialized messages*.
 *  - ProtodbRegistry ~ the protodb static schema database: per-type
 *    language version, packedness and field-number ranges, joinable
 *    with protobufz samples (Figure 7, §3.3).
 */
#ifndef PROTOACC_PROFILE_SAMPLERS_H
#define PROTOACC_PROFILE_SAMPLERS_H

#include <array>
#include <map>

#include "common/histogram.h"
#include "profile/fleet_model.h"

namespace protoacc::profile {

/// Aggregated GWP cycle profile (Figure 2 input).
struct CycleProfile
{
    /// op name -> sampled cycle count.
    std::map<std::string, double> cycles_by_op;
    double total = 0;

    double
    pct(const std::string &op) const
    {
        auto it = cycles_by_op.find(op);
        return it == cycles_by_op.end() || total == 0
                   ? 0
                   : 100.0 * it->second / total;
    }
};

/**
 * GWP-analog sampler: each Visit() lands on a cycle-weighted service
 * and records one batch of (op, cycles) samples with per-service jitter
 * around the fleet op mix.
 */
class GwpSampler
{
  public:
    explicit GwpSampler(const Fleet *fleet, uint64_t seed = 1);

    /// Perform @p visits machine visits; returns the aggregate profile.
    CycleProfile Collect(int visits);

  private:
    const Fleet *fleet_;
    Rng rng_;
    /// Per-service multiplicative jitter on each op's share.
    std::vector<std::map<std::string, double>> service_jitter_;
};

/// Per-[type,repeated] field statistics from protobufz samples.
struct FieldTypeStats
{
    uint64_t count = 0;       ///< Figure 4a numerator
    double wire_bytes = 0;    ///< Figure 4b numerator
};

/// Everything the figure benches need from a protobufz collection run.
struct ShapeAggregate
{
    /// Figure 3: encoded top-level message sizes.
    Histogram msg_sizes = Histogram::ForPaperSizeBuckets();
    /// Figure 4c: bytes-like field payload sizes.
    Histogram bytes_field_sizes = Histogram::ForPaperSizeBuckets();
    /// Figures 4a/4b, keyed by (FieldType, repeated).
    std::map<std::pair<int, bool>, FieldTypeStats> by_type;
    /// Figure 7: density deciles, weighted by observed messages.
    std::array<uint64_t, 10> density_deciles{};
    uint64_t density_over_1_64 = 0;  ///< §3.7 anchor
    uint64_t density_samples = 0;
    /// §3.8: bytes observed at each nesting depth.
    std::map<int, double> bytes_by_depth;
    int max_depth = 0;
    /// Varint-like value bytes by encoded size 1..10 (Figure 5/6 input).
    std::array<double, 11> varint_bytes_by_size{};
    /// §3.3: bytes in proto2- vs proto3-defined top-level types.
    double proto2_bytes = 0;
    double total_bytes = 0;
    uint64_t messages_sampled = 0;
};

/**
 * protobufz-analog sampler: samples top-level messages from the fleet,
 * serializes them, and measures their shape.
 */
class ProtobufzSampler
{
  public:
    explicit ProtobufzSampler(const Fleet *fleet, uint64_t seed = 2);

    /// Sample @p top_level_messages messages fleet-wide.
    ShapeAggregate Collect(int top_level_messages);

    /// Sample messages from a single service (the per-service shape
    /// collection feeding the HyperProtoBench generator, §5.2).
    ShapeAggregate CollectService(size_t service_index,
                                  int top_level_messages);

  private:
    void WalkMessage(const proto::Message &msg, int depth,
                     ShapeAggregate *agg);
    void SampleMessage(const SyntheticService &svc, ShapeAggregate *agg);

    const Fleet *fleet_;
    Rng rng_;
};

/// Static schema facts (protodb analog).
struct SchemaStats
{
    uint64_t message_types = 0;
    uint64_t proto2_types = 0;
    uint64_t fields = 0;
    uint64_t packed_repeated_fields = 0;
    uint64_t repeated_scalar_fields = 0;
    /// Distribution of defined field-number ranges.
    uint64_t max_field_number_range = 0;
};

/// Scan every schema in the fleet (protodb is a static database).
SchemaStats CollectSchemaStats(const Fleet &fleet);

}  // namespace protoacc::profile

#endif  // PROTOACC_PROFILE_SAMPLERS_H
