/**
 * @file
 * The synthetic fleet: our stand-in for Google's production services.
 *
 * A Fleet is a weighted population of SyntheticServices. Each service
 * owns real schemas (DescriptorPools) generated against the paper's
 * marginals (src/profile/distributions.h) and can build real, populated
 * message objects. The samplers (samplers.h) observe the fleet exactly
 * the way GWP/protobufz/protodb observe production: by sampling
 * machines/messages and recording what they see — sizes and field stats
 * are *measured* from real serialized messages, not echoed from the
 * generator's inputs.
 */
#ifndef PROTOACC_PROFILE_FLEET_MODEL_H
#define PROTOACC_PROFILE_FLEET_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "profile/distributions.h"
#include "proto/message.h"

namespace protoacc::profile {

/// Knobs for fleet construction.
struct FleetParams
{
    int num_services = 8;
    int top_level_types_per_service = 5;
    /// Fields per synthetic message type (uniform range).
    int min_fields = 3;
    int max_fields = 24;
    /// Probability a message type at depth d < depth_limit gets a
    /// sub-message field.
    double submessage_field_prob = 0.35;
    int depth_limit = 30;
    /// Fraction of repeated scalar fields using packed encoding.
    double packed_prob = 0.85;
    /// Fraction of types defined in proto2 (§3.3).
    double proto2_share = kProto2ByteShare;
    /// Shape distributions driving schema + message generation.
    ShapeProfile profile;
};

/**
 * One synthetic service: a pool of message types plus population
 * parameters. Thread-compatible.
 */
class SyntheticService
{
  public:
    SyntheticService(std::string name, uint64_t seed,
                     const FleetParams &params);

    const std::string &name() const { return name_; }
    const proto::DescriptorPool &pool() const { return pool_; }

    /// Relative share of fleet protobuf cycles in this service.
    double weight() const { return weight_; }
    void set_weight(double w) { weight_ = w; }

    /// Pick a top-level message type (weighted).
    int SampleTopLevelType(Rng *rng) const;
    const std::vector<int> &top_level_types() const
    {
        return top_level_types_;
    }

    /**
     * Build one populated top-level message. The encoded size is driven
     * by a Figure 3 draw; bytes-like field sizes follow Figure 4c;
     * field presence follows the §3.9 sparsity facts.
     */
    proto::Message BuildMessage(int msg_index, proto::Arena *arena,
                                Rng *rng) const;

    /// True when this service's schemas are proto2 (vs proto3), §3.3.
    bool is_proto2(int msg_index) const;

  private:
    int GenerateType(Rng *rng, int depth, int *counter);
    void PopulateMessage(proto::Message msg, Rng *rng,
                         uint64_t size_budget, int depth_budget) const;

    std::string name_;
    FleetParams params_;
    proto::DescriptorPool pool_;
    std::vector<int> top_level_types_;
    std::vector<double> type_weights_;
    std::vector<bool> proto2_;
    double weight_ = 1.0;
};

/**
 * The fleet: services with a skewed (Zipf-ish) cycle-weight
 * distribution, matching the observation that a handful of services
 * dominate fleet-wide protobuf cycles (§5.2: the top five serializer
 * users cover 18% of serialization cycles).
 */
class Fleet
{
  public:
    explicit Fleet(const FleetParams &params, uint64_t seed = 2021);

    size_t service_count() const { return services_.size(); }
    const SyntheticService &service(size_t i) const
    {
        return *services_[i];
    }

    /// Pick a service index weighted by its cycle share (a GWP machine
    /// visit lands on busy services more often).
    size_t SampleService(Rng *rng) const;

  private:
    std::vector<std::unique_ptr<SyntheticService>> services_;
    std::vector<double> weights_;
};

}  // namespace protoacc::profile

#endif  // PROTOACC_PROFILE_FLEET_MODEL_H
