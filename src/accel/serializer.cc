#include "accel/serializer.h"

#include <cstring>

#include "accel/varint_unit.h"
#include "common/bits.h"
#include "proto/arena_string.h"
#include "proto/repeated.h"
#include "proto/serializer.h"
#include "proto/unknown_fields.h"

namespace protoacc::accel {

using proto::ArenaString;
using proto::FieldType;
using proto::RepeatedField;
using proto::RepeatedPtrField;
using proto::WireType;

SerializerUnit::SerializerUnit(sim::MemorySystem *memory,
                               const SerTiming &timing)
    : memory_(memory),
      timing_(timing),
      frontend_port_("ser.frontend", memory, sim::TlbConfig{}),
      fsu_port_("ser.fsu", memory, sim::TlbConfig{}),
      memwriter_port_("ser.memwriter", memory, sim::TlbConfig{}),
      adt_buffer_(timing.adt_buffer_entries, timing.adt_buffer_hit_cycles)
{
    PA_CHECK_GE(timing_.num_field_serializers, 1u);
}

SerializerUnit::~SerializerUnit() = default;

void
SerializerUnit::ResetPipeline()
{
    pipe_.reset();
    batch_completion_ = 0;
}

void
SerializerUnit::ResetStats()
{
    stats_ = SerStats{};
    frontend_port_.ResetStats();
    fsu_port_.ResetStats();
    memwriter_port_.ResetStats();
}

/**
 * Per-job pipeline state: the frontend cycle, per-FSU busy-until
 * timeline, the in-order memwriter cycle, and the descending output
 * cursor into the SerArena.
 */
struct SerializerUnit::Pipe
{
    SerializerUnit *unit;
    uint64_t frontend = 0;
    std::vector<uint64_t> fsu_free;
    uint64_t memwriter = 0;
    uint32_t rr = 0;
    uint32_t depth = 0;
    size_t pos = 0;  ///< descending write cursor
    bool overflow = false;

    const SerTiming &timing() const { return unit->timing_; }

    /// Frontend advance for one pipelined ADT/bit-field load.
    void
    FrontendLoad(uint64_t latency)
    {
        frontend += CeilDiv(latency, timing().adt_outstanding);
    }

    /**
     * Schedule one handle-field-op: round-robin FSU dispatch, FSU
     * occupancy (data load + encode), then in-order memwriter drain.
     */
    void
    FieldOp(uint64_t load_latency, uint64_t encode_cycles,
            uint64_t out_bytes)
    {
        frontend += timing().per_present_field_cycles;
        const uint32_t k = rr++ % timing().num_field_serializers;
        const uint64_t start =
            frontend > fsu_free[k] ? frontend : fsu_free[k];
        fsu_free[k] = start + load_latency + encode_cycles;
        // §4.5.4: FSUs expose serialized data "in chunks", so the
        // memwriter drains while the unit is still producing — it
        // starts one cycle after the first chunk exists, and its drain
        // time (out/width) covers the overlapped production.
        const uint64_t first_chunk = start + load_latency + 1;
        const uint64_t ready =
            first_chunk > memwriter ? first_chunk : memwriter;
        const uint64_t drain =
            ready + CeilDiv(out_bytes, timing().out_bytes_per_cycle);
        // The stream cannot finish before its producer does.
        memwriter = drain > fsu_free[k] ? drain : fsu_free[k];
    }

    /// Memwriter-side emission with no FSU involvement (key/length
    /// injection at end-of-message, §4.5.5).
    void
    WriterOp(uint64_t out_bytes)
    {
        memwriter += timing().end_of_message_cycles +
                     CeilDiv(out_bytes, timing().out_bytes_per_cycle);
    }

    // ---- functional high-to-low output helpers ----
    bool
    WriteRaw(const void *data, size_t n)
    {
        if (overflow || pos < n) {
            overflow = true;
            return false;
        }
        pos -= n;
        std::memcpy(unit->arena_->at(pos), data, n);
        unit->memwriter_port_.Write(unit->arena_->at(pos), n);
        return true;
    }

    bool
    WriteVarint(uint64_t v)
    {
        uint8_t tmp[proto::kMaxVarintBytes];
        const int n = CombinationalVarintEncode(v, tmp);
        return WriteRaw(tmp, n);
    }

    bool
    WriteKey(uint32_t number, WireType wt)
    {
        return WriteVarint(proto::MakeTag(number, wt));
    }
};

namespace {

/// Load a scalar slot's raw bits.
uint64_t
LoadSlotBits(const uint8_t *slot, uint32_t width)
{
    uint64_t bits = 0;
    std::memcpy(&bits, slot, width);
    return bits;
}

template <typename T>
T
LoadPtr(const uint8_t *slot)
{
    T p;
    std::memcpy(&p, slot, sizeof(p));
    return p;
}

}  // namespace

namespace {

/// Encoded size of a scalar value on the wire (value only, no key).
uint64_t
ScalarWireBytes(FieldType type, uint64_t bits)
{
    switch (proto::WireTypeForField(type)) {
      case WireType::kVarint:
        return proto::VarintValueSize(type, bits);
      case WireType::kFixed32:
        return 4;
      case WireType::kFixed64:
        return 8;
      default:
        PA_CHECK(false);
    }
}

}  // namespace

/**
 * Serialize one (sub-)message payload in reverse field order into the
 * arena. The recursion depth is the hardware's context-stack depth.
 */
struct SerializerImpl
{
    SerializerUnit::Pipe &pipe;
    SerializerUnit *unit;
    const SerTiming &timing;
    SerStats &stats;

    /**
     * Reverse-merge flush of preserved unknown fields: emit, in
     * reverse stored order, every record with number >= @p limit. The
     * high-to-low writer reverses output, so this lands the records in
     * stored (stable, ascending) order on the wire — byte-identical to
     * the software serializers' forward merge, which emits records
     * with number strictly below each known field before that field.
     */
    bool
    FlushUnknownsDownTo(const proto::UnknownFieldStore *u, uint32_t *ucur,
                        uint32_t limit)
    {
        while (*ucur > 0 && u->record(*ucur - 1).number >= limit) {
            const proto::UnknownRecord &r = u->record(*ucur - 1);
            const uint64_t lat =
                unit->fsu_port_.Read(u->bytes_of(r), r.size);
            pipe.FieldOp(lat,
                         CeilDiv(r.size, timing.out_bytes_per_cycle),
                         r.size);
            if (!pipe.WriteRaw(u->bytes_of(r), r.size))
                return false;
            --*ucur;
        }
        return true;
    }

    AccelStatus
    SerializeMessage(AdtView adt, const uint8_t *obj)
    {
        const AdtHeader header = adt.ReadHeader();
        const proto::UnknownFieldStore *u =
            proto::UnknownFieldStore::Get(obj, header.unknown_offset);
        uint32_t ucur = u != nullptr ? u->count() : 0;
        if (header.max_field == 0) {
            // Empty message type — but it may still carry unknowns
            // preserved from a newer schema version.
            if (u != nullptr && !FlushUnknownsDownTo(u, &ucur, 0))
                return AccelStatus::kOutputOverflow;
            return AccelStatus::kOk;
        }

        // §4.5.3: the frontend loads the is_submessage and hasbits bit
        // fields in parallel, then scans field numbers (reverse order).
        const uint32_t range = header.max_field - header.min_field + 1;
        const uint64_t bits_lat = unit->frontend_port_.Read(
            obj + header.hasbits_offset, header.hasbits_words * 4);
        unit->frontend_port_.Read(adt.SubmessageBitfieldAddr(header),
                                  adt.SubmessageBitfieldBytes(header));
        pipe.FrontendLoad(bits_lat);
        const uint64_t scan =
            CeilDiv(range, timing.scan_bits_per_cycle);
        pipe.frontend += scan;
        stats.scan_cycles += scan;

        const uint32_t *hasbits = reinterpret_cast<const uint32_t *>(
            obj + header.hasbits_offset);

        for (uint32_t number = header.max_field;
             number >= header.min_field && number > 0; --number) {
            const uint32_t index = number - header.min_field;
            if (((hasbits[index / 32] >> (index % 32)) & 1) == 0)
                continue;

            // typeInfo: pipelined ADT entry load for the present
            // field, short-circuited by the ADT response buffer.
            const uint8_t *entry_addr = adt.EntryAddr(number, header);
            const uint64_t entry_lat =
                unit->adt_buffer_.Access(entry_addr)
                    ? unit->adt_buffer_.hit_cycles()
                    : unit->frontend_port_.Read(entry_addr,
                                                kAdtEntryBytes);
            pipe.FrontendLoad(entry_lat);
            const AdtFieldEntry entry = adt.ReadEntry(number, header);
            if (!entry.defined())
                continue;
            ++stats.fields;

            // Unknowns with number >= this field land after it on the
            // wire, so the reverse writer emits them first.
            if (u != nullptr && !FlushUnknownsDownTo(u, &ucur, number))
                return AccelStatus::kOutputOverflow;

            const uint8_t *slot = obj + entry.offset;
            const AccelStatus st = SerializeField(adt, entry, number,
                                                  slot);
            if (st != AccelStatus::kOk)
                return st;
        }
        // Remaining unknowns sit below every emitted field number —
        // they open the message payload on the wire.
        if (u != nullptr && !FlushUnknownsDownTo(u, &ucur, 0))
            return AccelStatus::kOutputOverflow;
        return AccelStatus::kOk;
    }

    AccelStatus
    SerializeField(AdtView adt, const AdtFieldEntry &entry,
                   uint32_t number, const uint8_t *slot)
    {
        (void)adt;
        const FieldType type = entry.type;
        const WireType wt = proto::WireTypeForField(type);

        if (type == FieldType::kMessage)
            return SerializeSubmessageField(entry, number, slot);

        if (proto::IsBytesLike(type)) {
            if (entry.repeated()) {
                const auto *r = LoadPtr<const RepeatedPtrField *>(slot);
                const uint64_t container_lat =
                    unit->fsu_port_.Read(slot, 8) +
                    (r != nullptr ? unit->fsu_port_.Read(r, sizeof(*r))
                                  : 0);
                if (r == nullptr || r->size == 0)
                    return AccelStatus::kOk;
                // Elements written in reverse so the wire order is
                // element 0 first.
                for (uint32_t i = r->size; i-- > 0;) {
                    const auto *s =
                        static_cast<const ArenaString *>(r->data[i]);
                    if (!EmitString(number, s,
                                    i == r->size - 1 ? container_lat
                                                     : 0))
                        return AccelStatus::kOutputOverflow;
                    ++stats.repeated_elements;
                }
                return AccelStatus::kOk;
            }
            const auto *s = LoadPtr<const ArenaString *>(slot);
            const uint64_t lat = unit->fsu_port_.Read(slot, 8);
            if (!EmitString(number, s, lat))
                return AccelStatus::kOutputOverflow;
            return AccelStatus::kOk;
        }

        const uint32_t width = proto::InMemorySize(type);
        if (!entry.repeated()) {
            const uint64_t load_lat = unit->fsu_port_.Read(slot, width);
            const uint64_t bits = LoadSlotBits(slot, width);
            const uint64_t value_bytes = ScalarWireBytes(type, bits);
            const uint64_t key_bytes =
                proto::VarintSize(proto::MakeTag(number, wt));
            pipe.FieldOp(load_lat, 1, value_bytes + key_bytes);
            if (!WriteScalarValue(type, bits))
                return AccelStatus::kOutputOverflow;
            if (!pipe.WriteKey(number, wt))
                return AccelStatus::kOutputOverflow;
            return AccelStatus::kOk;
        }

        // Repeated scalar field (packed or unpacked).
        const auto *r = LoadPtr<const RepeatedField *>(slot);
        uint64_t load_lat = unit->fsu_port_.Read(slot, 8);
        if (r == nullptr || r->size == 0)
            return AccelStatus::kOk;
        load_lat += unit->fsu_port_.Read(r, sizeof(*r));
        load_lat += unit->fsu_port_.Read(
            r->data, static_cast<uint64_t>(r->size) * width);
        stats.repeated_elements += r->size;

        if (entry.packed()) {
            const size_t block_end = pipe.pos;
            for (uint32_t i = r->size; i-- > 0;) {
                const uint64_t bits = LoadSlotBits(
                    static_cast<const uint8_t *>(r->data) +
                        static_cast<size_t>(i) * width,
                    width);
                if (!WriteScalarValue(type, bits))
                    return AccelStatus::kOutputOverflow;
            }
            const uint64_t payload = block_end - pipe.pos;
            if (!pipe.WriteVarint(payload))
                return AccelStatus::kOutputOverflow;
            if (!pipe.WriteKey(number, WireType::kLengthDelimited))
                return AccelStatus::kOutputOverflow;
            const uint64_t key_len_bytes =
                proto::VarintSize(payload) +
                proto::VarintSize(proto::MakeTag(
                    number, WireType::kLengthDelimited));
            // One varint encoded per cycle; fixed values at bus width.
            const uint64_t encode =
                wt == WireType::kVarint
                    ? r->size
                    : CeilDiv(payload, timing.out_bytes_per_cycle);
            pipe.FieldOp(load_lat, encode, payload + key_len_bytes);
            return AccelStatus::kOk;
        }

        uint64_t out_bytes = 0;
        const uint64_t key_bytes =
            proto::VarintSize(proto::MakeTag(number, wt));
        for (uint32_t i = r->size; i-- > 0;) {
            const uint64_t bits = LoadSlotBits(
                static_cast<const uint8_t *>(r->data) +
                    static_cast<size_t>(i) * width,
                width);
            out_bytes += ScalarWireBytes(type, bits) + key_bytes;
            if (!WriteScalarValue(type, bits))
                return AccelStatus::kOutputOverflow;
            if (!pipe.WriteKey(number, wt))
                return AccelStatus::kOutputOverflow;
        }
        pipe.FieldOp(load_lat, r->size, out_bytes);
        return AccelStatus::kOk;
    }

    AccelStatus
    SerializeSubmessageField(const AdtFieldEntry &entry, uint32_t number,
                             const uint8_t *slot)
    {
        const AdtView sub_adt(
            reinterpret_cast<const uint8_t *>(entry.sub_adt_addr));
        if (entry.repeated()) {
            const auto *r = LoadPtr<const RepeatedPtrField *>(slot);
            unit->fsu_port_.Read(slot, 8);
            if (r == nullptr || r->size == 0)
                return AccelStatus::kOk;
            unit->fsu_port_.Read(r, sizeof(*r));
            for (uint32_t i = r->size; i-- > 0;) {
                const AccelStatus st = EmitSubmessage(
                    sub_adt, number,
                    static_cast<const uint8_t *>(r->data[i]));
                if (st != AccelStatus::kOk)
                    return st;
            }
            return AccelStatus::kOk;
        }
        const auto *sub_obj = LoadPtr<const uint8_t *>(slot);
        unit->fsu_port_.Read(slot, 8);
        return EmitSubmessage(sub_adt, number, sub_obj);
    }

    AccelStatus
    EmitSubmessage(AdtView sub_adt, uint32_t number,
                   const uint8_t *sub_obj)
    {
        ++stats.submessages;
        // §4.5.3: context-switch into the sub-message — update the
        // parent's context, load the sub ADT header + object pointer,
        // push the context stacks.
        pipe.FrontendLoad(unit->adt_buffer_.Access(sub_adt.base())
                              ? unit->adt_buffer_.hit_cycles()
                              : unit->frontend_port_.Read(
                                    sub_adt.base(), kAdtHeaderBytes));
        pipe.frontend += timing.submsg_context_switch_cycles;
        ++pipe.depth;
        if (pipe.depth > stats.max_depth)
            stats.max_depth = pipe.depth;
        if (pipe.depth > timing.on_chip_stack_depth) {
            ++stats.stack_spills;
            pipe.frontend += timing.stack_spill_cycles;
            unit->memwriter_port_.Write(&pipe, 32);
        }

        const size_t start = pipe.pos;
        AccelStatus st = AccelStatus::kOk;
        if (sub_obj != nullptr)
            st = SerializeMessage(sub_adt, sub_obj);
        if (st != AccelStatus::kOk)
            return st;
        --pipe.depth;

        // §4.5.5: the memwriter injects the sub-message's key and
        // now-known length on the end-of-message (field-zero) op.
        const uint64_t payload = start - pipe.pos;
        if (!pipe.WriteVarint(payload))
            return AccelStatus::kOutputOverflow;
        if (!pipe.WriteKey(number, WireType::kLengthDelimited))
            return AccelStatus::kOutputOverflow;
        pipe.WriterOp(proto::VarintSize(payload) +
                      proto::VarintSize(proto::MakeTag(
                          number, WireType::kLengthDelimited)));
        return AccelStatus::kOk;
    }

    bool
    WriteScalarValue(FieldType type, uint64_t bits)
    {
        switch (proto::WireTypeForField(type)) {
          case WireType::kVarint: {
            uint8_t tmp[proto::kMaxVarintBytes];
            const int n = proto::EncodeVarintValue(type, bits, tmp);
            return pipe.WriteRaw(tmp, n);
          }
          case WireType::kFixed32: {
            uint8_t tmp[4];
            proto::StoreFixed32(static_cast<uint32_t>(bits), tmp);
            return pipe.WriteRaw(tmp, 4);
          }
          case WireType::kFixed64: {
            uint8_t tmp[8];
            proto::StoreFixed64(bits, tmp);
            return pipe.WriteRaw(tmp, 8);
          }
          default:
            PA_CHECK(false);
        }
    }

    bool
    EmitString(uint32_t number, const ArenaString *s,
               uint64_t container_lat)
    {
        const std::string_view payload =
            s == nullptr ? std::string_view() : s->view();
        uint64_t load_lat = container_lat;
        if (s != nullptr) {
            load_lat += unit->fsu_port_.Read(s, sizeof(*s));
            if (!payload.empty())
                unit->fsu_port_.Read(payload.data(), payload.size());
        }
        const uint64_t key_len_bytes =
            proto::VarintSize(payload.size()) +
            proto::VarintSize(
                proto::MakeTag(number, WireType::kLengthDelimited));
        pipe.FieldOp(load_lat,
                     CeilDiv(payload.size(), timing.out_bytes_per_cycle),
                     payload.size() + key_len_bytes);
        if (!pipe.WriteRaw(payload.data(), payload.size()))
            return false;
        if (!pipe.WriteVarint(payload.size()))
            return false;
        return pipe.WriteKey(number, WireType::kLengthDelimited);
    }
};

AccelStatus
SerializerUnit::Run(const SerJob &job, uint64_t *cycles)
{
    PA_CHECK(arena_ != nullptr);
    ++stats_.jobs;

    // Batch pipelining: the frontend begins this message while the
    // FSUs/memwriter drain the previous one, so pipeline state persists
    // across jobs until the fence (ResetPipeline).
    if (pipe_ == nullptr) {
        pipe_ = std::make_unique<Pipe>();
        pipe_->unit = this;
        pipe_->fsu_free.assign(timing_.num_field_serializers, 0);
    }
    Pipe &pipe = *pipe_;
    pipe.pos = arena_->head();
    pipe.overflow = false;
    pipe.frontend += 2 * kRoccDispatchCycles;  // ser_info + do_proto_ser

    SerializerImpl ms{pipe, this, timing_, stats_};
    const size_t start = pipe.pos;
    AccelStatus st = ms.SerializeMessage(
        AdtView(job.adt), static_cast<const uint8_t *>(job.src_obj));
    if (st == AccelStatus::kOk && pipe.overflow)
        st = AccelStatus::kOutputOverflow;
    if (st != AccelStatus::kOk)
        return st;

    const size_t out_size = start - pipe.pos;
    stats_.out_bytes += out_size;
    arena_->set_head(pipe.pos);
    // §4.5.5: on top-level end-of-message, write the output pointer
    // into the next slot of the pointer buffer.
    arena_->PushOutputPointer(pipe.pos, out_size);
    memwriter_port_.Write(arena_->at(pipe.pos), 8);

    const uint64_t done =
        pipe.memwriter > pipe.frontend ? pipe.memwriter : pipe.frontend;
    const uint64_t marginal = done - batch_completion_;
    batch_completion_ = done;
    stats_.cycles += marginal;
    *cycles = marginal;
    return st;
}

}  // namespace protoacc::accel
