/**
 * @file
 * The deserializer unit (§4.4, Figure 9).
 *
 * Functional + cycle-level model of the hardware pipeline:
 *
 *   - memloader (§4.4.2): streams the serialized buffer at up to
 *     16 B/cycle behind an initial memory latency;
 *   - field-handler FSM (§4.4.3-4.4.9): parseKey (single-cycle
 *     combinational varint decode of the up-to-10-byte key) → typeInfo
 *     (blocks on the 128-bit ADT entry load) → per-type value states
 *     (scalar write, string allocate+copy, packed/unpacked repeated,
 *     sub-message setup);
 *   - hasbits writer: posted read-modify-write of the sparse presence
 *     bit, off the critical path;
 *   - message-level metadata stack (§4.4.9): on-chip up to a configured
 *     depth (the paper sizes it at 25 from the fleet study, §3.8), with
 *     DRAM spill/fill beyond.
 *
 * The model performs the real data transformation — it builds the same
 * C++ objects the software parser would, driven only by ADT bytes — so
 * equivalence is checked by tests, not assumed.
 */
#ifndef PROTOACC_ACCEL_DESERIALIZER_H
#define PROTOACC_ACCEL_DESERIALIZER_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "accel/adt.h"
#include "accel/rocc.h"
#include "common/status.h"
#include "proto/arena.h"
#include "sim/port.h"

namespace protoacc::accel {

/// Outcome of an accelerator operation.
enum class AccelStatus {
    kOk,
    kMalformedInput,
    kTruncated,
    kUnsupportedWireType,
    kOutputOverflow,
    /// proto3 string field containing malformed UTF-8 (§7).
    kInvalidUtf8,
    /// A ParseLimits bound tripped (payload size / alloc budget).
    kResourceExhausted,
    /// Sub-message nesting exceeded the configured depth bound.
    kDepthExceeded,
    /// Injected hardware fault: the unit died mid-job (sim/fault.h).
    kUnitFault,
};

const char *AccelStatusName(AccelStatus status);

/// Map into the stack-wide failure taxonomy (common/status.h).
StatusCode ToStatusCode(AccelStatus status);

/// Timing parameters of the deserializer FSM (cycles per state).
struct DeserTiming
{
    uint32_t stream_bytes_per_cycle = 16;  ///< memloader width (§4.4.2)
    uint32_t parse_key_cycles = 1;         ///< combinational key decode
    uint32_t scalar_write_cycles = 1;
    uint32_t string_alloc_cycles = 2;  ///< arena pointer bump + header
    uint32_t submsg_setup_cycles = 4;  ///< §4.4.9 stack + alloc states
    uint32_t stack_pop_cycles = 1;
    uint32_t stack_spill_cycles = 4;   ///< per spill/fill beyond on-chip
    uint32_t unknown_skip_cycles = 1;
    /// On-chip metadata stack depth (§3.8: 25 covers 99.999% of bytes).
    uint32_t on_chip_stack_depth = 25;
    /// Entries in the ADT loader's small response buffer (registers
    /// holding recently returned header/entry beats; batches reuse the
    /// same per-type ADT entries on every message). 0 disables it.
    uint32_t adt_buffer_entries = 16;
    /// Latency of an ADT response-buffer hit.
    uint32_t adt_buffer_hit_cycles = 2;
};

/**
 * Small direct-mapped response buffer in front of an ADT loader:
 * per-type ADT lines recur on every message of a batch, so the loader
 * keeps its most recent responses in registers instead of re-requesting
 * them from the L2.
 */
class AdtResponseBuffer
{
  public:
    AdtResponseBuffer(uint32_t entries, uint32_t hit_cycles)
        : tags_(entries, 0), hit_cycles_(hit_cycles)
    {}

    /// True (and returns hit latency via result) when @p addr was
    /// buffered; inserts it otherwise.
    bool
    Access(const void *addr)
    {
        if (tags_.empty())
            return false;
        const uint64_t a = reinterpret_cast<uint64_t>(addr);
        const size_t slot = (a / kAdtEntryBytes) % tags_.size();
        if (tags_[slot] == a)
            return true;
        tags_[slot] = a;
        return false;
    }

    uint32_t hit_cycles() const { return hit_cycles_; }

    /// Invalidate every entry (health-domain state scrub): the next
    /// access to any address misses, exactly as on a fresh device — a
    /// warm tag surviving a reset would let one request's access
    /// pattern leak into the next request's timing.
    void
    Clear()
    {
        std::fill(tags_.begin(), tags_.end(), 0);
    }

  private:
    std::vector<uint64_t> tags_;
    uint32_t hit_cycles_;
};

/// Counters exposed by the unit.
struct DeserStats
{
    uint64_t jobs = 0;
    uint64_t cycles = 0;
    uint64_t wire_bytes = 0;
    uint64_t fields = 0;
    uint64_t varint_fields = 0;
    uint64_t fixed_fields = 0;
    uint64_t string_fields = 0;
    uint64_t submessages = 0;
    uint64_t packed_fields = 0;
    uint64_t repeated_elements = 0;
    uint64_t unknown_fields = 0;
    uint64_t allocations = 0;
    uint64_t alloc_bytes = 0;
    uint64_t stack_spills = 0;
    uint64_t max_depth = 0;
    uint64_t adt_stall_cycles = 0;
    uint64_t stream_stall_cycles = 0;
};

/**
 * The deserializer unit. One instance models one hardware unit; jobs
 * queued between fences execute back-to-back on it.
 */
class DeserializerUnit
{
  public:
    DeserializerUnit(sim::MemorySystem *memory, const DeserTiming &timing);

    /// §4.3: deser_assign_arena — allocation target for sub-messages,
    /// strings and repeated-field storage.
    void AssignArena(proto::Arena *arena) { arena_ = arena; }

    /// Hostile-input resource bounds, enforced with the same charge
    /// points and ordering as the software parsers so all three codecs
    /// keep identical accept/reject verdicts. Zero fields mean
    /// "unlimited / codec default".
    void SetLimits(const ParseLimits &limits) { limits_ = limits; }
    const ParseLimits &limits() const { return limits_; }

    /**
     * Execute one deserialization job.
     *
     * @param[out] cycles the job's latency in accelerator cycles.
     */
    AccelStatus Run(const DeserJob &job, uint64_t *cycles);

    const DeserStats &stats() const { return stats_; }
    void ResetStats();
    const sim::Port &memloader_port() const { return memloader_port_; }

    /// Health-domain state scrub: invalidate the ADT response buffer
    /// and every port TLB (and with them any cross-request warm-up),
    /// leaving the unit indistinguishable from a freshly constructed
    /// one. The modeled cycle cost of the scrub is charged by the
    /// health subsystem (rpc/health.h ComputeScrubCost), not here.
    void
    ScrubState()
    {
        adt_buffer_.Clear();
        memloader_port_.FlushTlb();
        adt_port_.FlushTlb();
        writer_port_.FlushTlb();
    }

  private:
    struct Context;  // implementation detail in .cc

    sim::MemorySystem *memory_;
    DeserTiming timing_;
    proto::Arena *arena_ = nullptr;
    ParseLimits limits_;
    sim::Port memloader_port_;
    sim::Port adt_port_;
    sim::Port writer_port_;
    AdtResponseBuffer adt_buffer_;
    DeserStats stats_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_DESERIALIZER_H
