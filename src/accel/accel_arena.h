/**
 * @file
 * Accelerator arenas (§4.3, §4.5.1).
 *
 * The application pre-allocates memory regions and hands them to the
 * accelerator via the {ser,deser}_assign_arena instructions, removing
 * the CPU from the allocation critical path.
 *
 *  - For deserialization the accelerator bump-allocates sub-message
 *    objects, strings and repeated-field storage from the assigned
 *    region (we back it with a proto::Arena so software can read the
 *    resulting objects uniformly).
 *  - For serialization the arena holds two regions: an output-data
 *    buffer populated from HIGH to LOW addresses (§4.5.1 — the reverse
 *    field-order trick that makes sub-message lengths cheap) and a
 *    buffer of pointers to the start of each completed serialized
 *    message.
 */
#ifndef PROTOACC_ACCEL_ACCEL_ARENA_H
#define PROTOACC_ACCEL_ACCEL_ARENA_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "proto/arena.h"

namespace protoacc::accel {

/**
 * Serialization output arena: region (1) output data, written high→low;
 * region (2) pointers to the front of each serialized output.
 */
class SerArena
{
  public:
    explicit SerArena(size_t capacity = 16 * 1024 * 1024)
        : buffer_(capacity), head_(capacity)
    {}

    /// One completed serialization's location and size.
    struct Output
    {
        const uint8_t *data;
        size_t size;
    };

    uint8_t *buffer_base() { return buffer_.data(); }
    size_t capacity() const { return buffer_.size(); }

    /// Current write cursor (descending); exposed for the serializer.
    size_t head() const { return head_; }
    void set_head(size_t h) { head_ = h; }

    uint8_t *at(size_t pos) { return buffer_.data() + pos; }

    /// Record a completed top-level output starting at @p pos.
    void
    PushOutputPointer(size_t pos, size_t size)
    {
        outputs_.push_back(Output{buffer_.data() + pos, size});
    }

    /// §4.5.2: "the user program can call a function to get a pointer to
    /// the Nth serialized output (and its length) from the arena."
    const Output &
    output(size_t i) const
    {
        PA_CHECK_LT(i, outputs_.size());
        return outputs_[i];
    }
    size_t output_count() const { return outputs_.size(); }

    /// Reuse the arena for a new batch.
    void
    Reset()
    {
        head_ = buffer_.size();
        outputs_.clear();
    }

    size_t bytes_used() const { return buffer_.size() - head_; }

  private:
    std::vector<uint8_t> buffer_;
    size_t head_;  ///< descending cursor into buffer_
    std::vector<Output> outputs_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_ACCEL_ARENA_H
