/**
 * @file
 * Accelerator placement and interconnect transfer-cost model.
 *
 * The paper's accelerator is RoCC-integrated: it sits next to the core,
 * shares the L2/LLC, and a doorbell is a custom instruction — transfer
 * cost is effectively the dispatch cycles the rest of the model already
 * charges. A deployable serving accelerator often cannot live there: it
 * hangs off PCIe, where every batch pays a doorbell MMIO write, a DMA
 * round (descriptor/payload fetch + completion writeback) with real
 * latency, and payload movement at link bandwidth instead of coherent
 * LLC reads. Whether the framing/CRC/dedup offload is still a win at
 * that distance is a placement question, and this model makes it
 * answerable with a bench figure instead of a shrug (ARAPrototyper-style
 * explicit interconnect costs).
 *
 * The model is deliberately interconnect-level only: both placements
 * are assumed to have the same device-internal datapath (same FSUs,
 * same frame engine), so the delta between them is purely doorbell +
 * DMA latency + bandwidth-limited payload movement — the quantities a
 * deployment actually chooses between.
 */
#ifndef PROTOACC_ACCEL_PLACEMENT_H
#define PROTOACC_ACCEL_PLACEMENT_H

#include <cstdint>

namespace protoacc::accel {

/// Where the accelerator sits relative to the host cores.
enum class Placement : uint8_t {
    /// RoCC-integrated (the paper's §4 arrangement): doorbells are
    /// custom instructions, data moves through the shared cache
    /// hierarchy — no explicit transfer cost beyond dispatch cycles.
    kRoCC = 0,
    /// PCIe-attached: doorbells are MMIO writes, descriptors and
    /// payloads cross the link by DMA with per-batch latency and
    /// bandwidth-limited movement, completions come back as a DMA
    /// write the host observes after a delivery delay.
    kPCIe,
};

const char *PlacementName(Placement placement);

/// Interconnect costs of one placement. All times are nanoseconds so
/// the model composes with any clock; the queue converts to cycles at
/// its own frequency.
struct TransferModel
{
    Placement placement = Placement::kRoCC;

    // ---- PCIe knobs (ignored under kRoCC) ----

    /// Host-side doorbell: the MMIO write reaching the device and the
    /// device initiating its descriptor-ring fetch. Paid once per
    /// batch before the device can start.
    double pcie_doorbell_ns = 150;
    /// Per-batch DMA round latency: descriptor + payload fetch request
    /// to first data, plus the completion record's writeback. The
    /// device cannot retire the batch before this round has happened,
    /// however small the payload.
    double pcie_dma_latency_ns = 700;
    /// Link payload bandwidth (~PCIe Gen4 x16 effective).
    double pcie_bytes_per_ns = 25.0;
    /// Completion delivery: the host observing the completion record
    /// (poll of the DMA'd write, or MSI-X). Delays the requester, not
    /// the unit — the device is already free.
    double pcie_completion_ns = 250;

    /// Cycles the doorbell costs the requester before the device can
    /// see the batch, at @p freq_ghz.
    uint64_t DoorbellCycles(double freq_ghz) const;
    /// Device-side cycles moving @p wire_bytes across the interconnect
    /// for one batch (DMA latency + bandwidth-limited payload time).
    /// Zero under kRoCC: data arrives through the cache hierarchy,
    /// priced by the device's own memory model.
    uint64_t TransferCycles(uint64_t wire_bytes, double freq_ghz) const;
    /// Cycles between the device retiring a batch and the requester
    /// observing the completion.
    uint64_t CompletionCycles(double freq_ghz) const;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_PLACEMENT_H
