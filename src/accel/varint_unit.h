/**
 * @file
 * The combinational varint unit (§2.1.2, §4.4.4, §4.4.6).
 *
 * "Varint handling is a prime candidate for acceleration — fixed-
 * function hardware can easily handle varint encoding/decoding in a
 * single cycle." The unit peeks at up to 10 bytes from the memloader
 * and produces the decoded 64-bit value plus the consumed length in one
 * cycle; the encoder is the mirror image. Functionally these delegate
 * to the shared wire-format primitives, which is precisely what makes
 * the accelerator wire-compatible with standard protobufs.
 */
#ifndef PROTOACC_ACCEL_VARINT_UNIT_H
#define PROTOACC_ACCEL_VARINT_UNIT_H

#include <cstdint>

#include "proto/wire_format.h"

namespace protoacc::accel {

/// Result of a combinational varint decode.
struct VarintDecodeResult
{
    uint64_t value = 0;
    /// Encoded length in bytes (0 = malformed/insufficient input).
    int length = 0;
};

/// Single-cycle combinational decode of up to 10 bytes at @p p.
inline VarintDecodeResult
CombinationalVarintDecode(const uint8_t *p, const uint8_t *end)
{
    VarintDecodeResult r;
    r.length = proto::DecodeVarint(p, end, &r.value);
    return r;
}

/// Single-cycle combinational encode; returns the byte length (1..10).
inline int
CombinationalVarintEncode(uint64_t value, uint8_t *out)
{
    return proto::EncodeVarint(value, out);
}

/// Combinational zig-zag stages (§4.4.6: "an additional combinational
/// zig-zag decoding unit").
inline int64_t
CombinationalZigZagDecode(uint64_t v)
{
    return proto::ZigZagDecode64(v);
}

inline uint64_t
CombinationalZigZagEncode(int64_t v)
{
    return proto::ZigZagEncode64(v);
}

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_VARINT_UNIT_H
