/**
 * @file
 * The message-operations unit: the §7 extension the paper sketches.
 *
 * "Re-using the hardware building blocks from serialization and
 * deserialization and adding new custom instructions for each, a future
 * version of our accelerator would be able to handle merge, copy, and
 * clear, addressing another 17.1% of fleet-wide C++ protobuf cycles."
 *
 * The unit reuses the serializer frontend's structure (hasbits +
 * is_submessage bit-field walk, pipelined ADT entry loads with the
 * response buffer, context stacks) and the deserializer's allocator
 * datapath (arena object/string construction):
 *
 *   do_proto_clear  rs1=ADT ptr, rs2=object ptr
 *   do_proto_merge  rs1=ADT ptr, rs2=(dst object, src object)
 *   do_proto_copy   = clear + merge
 *
 * Like the codec units, it performs the real data transformation and
 * its results are asserted equal to the software reference
 * (proto/message_ops.h) by tests.
 */
#ifndef PROTOACC_ACCEL_OPS_UNIT_H
#define PROTOACC_ACCEL_OPS_UNIT_H

#include "accel/adt.h"
#include "accel/deserializer.h"  // AccelStatus, AdtResponseBuffer
#include "proto/arena.h"
#include "sim/port.h"

namespace protoacc::accel {

/// The three §7 operations.
enum class MessageOp : uint8_t {
    kClear,
    kMerge,
    kCopy,
};

const char *MessageOpName(MessageOp op);

/// One queued message operation.
struct OpsJob
{
    MessageOp op = MessageOp::kClear;
    const uint8_t *adt = nullptr;
    void *dst_obj = nullptr;
    const void *src_obj = nullptr;  ///< merge/copy only
};

/// Timing parameters (mirrors the serializer frontend's costs).
struct OpsTiming
{
    uint32_t scan_bits_per_cycle = 64;
    uint32_t per_present_field_cycles = 1;
    uint32_t copy_bytes_per_cycle = 16;
    uint32_t submsg_context_switch_cycles = 3;
    uint32_t stack_spill_cycles = 4;
    uint32_t alloc_cycles = 2;
    uint32_t on_chip_stack_depth = 25;
    uint32_t adt_buffer_entries = 16;
    uint32_t adt_buffer_hit_cycles = 1;
};

struct OpsStats
{
    uint64_t jobs = 0;
    uint64_t cycles = 0;
    uint64_t fields = 0;
    uint64_t submessages = 0;
    uint64_t bytes_copied = 0;
    uint64_t allocations = 0;
    uint64_t stack_spills = 0;
};

/**
 * The ops unit. Operates purely from ADT bytes (never descriptors),
 * like the codec units.
 */
class OpsUnit
{
  public:
    OpsUnit(sim::MemorySystem *memory, const OpsTiming &timing);

    /// Arena for objects/strings allocated during merge/copy.
    void AssignArena(proto::Arena *arena) { arena_ = arena; }

    /// Execute one operation; @p cycles receives its latency.
    AccelStatus Run(const OpsJob &job, uint64_t *cycles);

    const OpsStats &stats() const { return stats_; }
    void ResetStats();

    /// Health-domain state scrub: invalidate the ADT response buffer
    /// and the port TLB so no cross-request warm-up survives.
    void
    ScrubState()
    {
        adt_buffer_.Clear();
        port_.FlushTlb();
    }

  private:
    struct Walk;  // in .cc

    sim::MemorySystem *memory_;
    OpsTiming timing_;
    proto::Arena *arena_ = nullptr;
    sim::Port port_;
    AdtResponseBuffer adt_buffer_;
    OpsStats stats_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_OPS_UNIT_H
