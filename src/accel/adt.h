/**
 * @file
 * Accelerator Descriptor Tables (§4.2).
 *
 * One ADT per message *type* (not per instance), generated at
 * "program-load time" from the compiled layout — our analog of the
 * paper's modified protoc. Each ADT is a real byte array in
 * accelerator-visible memory with three regions:
 *
 *   1. a 64 B header: default-instance pointer, C++ object size, hasbits
 *      offset, min/max defined field number;
 *   2. 128-bit field entries indexed by (field_number - min), each with
 *      the field's C++ type, repeated/packed flags, slot offset, and for
 *      sub-message fields a pointer to the sub-type's ADT;
 *   3. the is_submessage bit field, letting the serializer frontend
 *      context-switch without waiting for a full entry read.
 *
 * The accelerator units read these tables through their memory ports —
 * never through DescriptorPool — so the hardware model's only contract
 * with software is the ADT byte format plus the object layout, exactly
 * as in the paper.
 */
#ifndef PROTOACC_ACCEL_ADT_H
#define PROTOACC_ACCEL_ADT_H

#include <cstdint>
#include <vector>

#include "proto/arena.h"
#include "proto/descriptor.h"

namespace protoacc::accel {

/// Byte size of the ADT header region.
inline constexpr uint32_t kAdtHeaderBytes = 64;
/// Byte size of one ADT field entry (128 bits, §4.2).
inline constexpr uint32_t kAdtEntryBytes = 16;

/// Field-entry flag bits.
enum AdtFieldFlags : uint8_t {
    kAdtFieldDefined = 1 << 0,   ///< a field with this number exists
    kAdtFieldRepeated = 1 << 1,
    kAdtFieldPacked = 1 << 2,
    /// §7 proto3 support: string field whose payload the deserializer
    /// must pass through the combinational UTF-8 checker.
    kAdtFieldValidateUtf8 = 1 << 3,
};

/// Decoded view of one 128-bit ADT field entry.
struct AdtFieldEntry
{
    proto::FieldType type = proto::FieldType::kInt32;
    uint8_t flags = 0;
    uint32_t offset = 0;        ///< field slot offset in the C++ object
    uint64_t sub_adt_addr = 0;  ///< ADT of the sub-message type, or 0

    bool defined() const { return flags & kAdtFieldDefined; }
    bool repeated() const { return flags & kAdtFieldRepeated; }
    bool packed() const { return flags & kAdtFieldPacked; }
    bool validate_utf8() const { return flags & kAdtFieldValidateUtf8; }
};

/// Decoded view of the 64 B ADT header.
struct AdtHeader
{
    uint64_t default_instance_addr = 0;
    uint32_t object_size = 0;
    uint32_t hasbits_offset = 0;
    uint32_t hasbits_words = 0;
    uint32_t min_field = 0;
    uint32_t max_field = 0;
    /// Offset of the unknown-field-store pointer slot in the C++
    /// object (schema-evolution preservation, mirrors
    /// MessageLayout::unknown_offset).
    uint32_t unknown_offset = 0;
};

/**
 * Reader over a raw ADT byte image. The accelerator units use this to
 * decode header/entry/bitfield bytes they load through their ports.
 */
class AdtView
{
  public:
    explicit AdtView(const uint8_t *base) : base_(base) {}

    const uint8_t *base() const { return base_; }

    AdtHeader ReadHeader() const;

    /// Entry for @p field_number; entry addresses are indexed by
    /// (field_number - min_field).
    AdtFieldEntry ReadEntry(uint32_t field_number,
                            const AdtHeader &header) const;

    /// Address of the entry (for memory-port pricing).
    const uint8_t *EntryAddr(uint32_t field_number,
                             const AdtHeader &header) const;

    /// True if @p field_number is a sub-message field, from region 3.
    bool IsSubmessage(uint32_t field_number,
                      const AdtHeader &header) const;

    /// Address of the is_submessage bitfield region.
    const uint8_t *SubmessageBitfieldAddr(const AdtHeader &header) const;
    uint32_t SubmessageBitfieldBytes(const AdtHeader &header) const;

  private:
    const uint8_t *base_;
};

/**
 * Generates ADT byte images for every message type of a compiled pool
 * into an arena (the paper's load-time population, §4.2).
 */
class AdtBuilder
{
  public:
    /**
     * Build ADTs for all types in @p pool. The images live in @p arena
     * for the lifetime of the builder's user.
     */
    AdtBuilder(const proto::DescriptorPool &pool, proto::Arena *arena);

    /// ADT image base address for message type @p msg_index.
    const uint8_t *adt(int msg_index) const { return adts_[msg_index]; }

    /// Convenience view.
    AdtView view(int msg_index) const { return AdtView(adts_[msg_index]); }

    /// Total bytes of ADT state generated (programming-table footprint,
    /// compared against per-instance schemes in the §3.7 ablation).
    size_t total_bytes() const { return total_bytes_; }

  private:
    std::vector<uint8_t *> adts_;
    size_t total_bytes_ = 0;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_ADT_H
