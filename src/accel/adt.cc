#include "accel/adt.h"

#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::accel {

namespace {

// Header field offsets within the 64 B header region.
constexpr uint32_t kHdrDefaultInstance = 0;
constexpr uint32_t kHdrObjectSize = 8;
constexpr uint32_t kHdrHasbitsOffset = 12;
constexpr uint32_t kHdrHasbitsWords = 16;
constexpr uint32_t kHdrMinField = 20;
constexpr uint32_t kHdrMaxField = 24;
constexpr uint32_t kHdrUnknownOffset = 28;

// Entry field offsets within a 16 B entry.
constexpr uint32_t kEntType = 0;
constexpr uint32_t kEntFlags = 1;
constexpr uint32_t kEntOffset = 4;
constexpr uint32_t kEntSubAdt = 8;

template <typename T>
void
StoreAt(uint8_t *base, uint32_t offset, T value)
{
    std::memcpy(base + offset, &value, sizeof(T));
}

template <typename T>
T
LoadAt(const uint8_t *base, uint32_t offset)
{
    T value;
    std::memcpy(&value, base + offset, sizeof(T));
    return value;
}

uint32_t
FieldRange(const proto::MessageDescriptor &desc)
{
    return desc.field_number_range();
}

}  // namespace

AdtHeader
AdtView::ReadHeader() const
{
    AdtHeader h;
    h.default_instance_addr = LoadAt<uint64_t>(base_, kHdrDefaultInstance);
    h.object_size = LoadAt<uint32_t>(base_, kHdrObjectSize);
    h.hasbits_offset = LoadAt<uint32_t>(base_, kHdrHasbitsOffset);
    h.hasbits_words = LoadAt<uint32_t>(base_, kHdrHasbitsWords);
    h.min_field = LoadAt<uint32_t>(base_, kHdrMinField);
    h.max_field = LoadAt<uint32_t>(base_, kHdrMaxField);
    h.unknown_offset = LoadAt<uint32_t>(base_, kHdrUnknownOffset);
    return h;
}

const uint8_t *
AdtView::EntryAddr(uint32_t field_number, const AdtHeader &header) const
{
    PA_CHECK_GE(field_number, header.min_field);
    PA_CHECK_LE(field_number, header.max_field);
    const uint32_t index = field_number - header.min_field;
    return base_ + kAdtHeaderBytes +
           static_cast<size_t>(index) * kAdtEntryBytes;
}

AdtFieldEntry
AdtView::ReadEntry(uint32_t field_number, const AdtHeader &header) const
{
    const uint8_t *e = EntryAddr(field_number, header);
    AdtFieldEntry entry;
    entry.type = static_cast<proto::FieldType>(LoadAt<uint8_t>(e, kEntType));
    entry.flags = LoadAt<uint8_t>(e, kEntFlags);
    entry.offset = LoadAt<uint32_t>(e, kEntOffset);
    entry.sub_adt_addr = LoadAt<uint64_t>(e, kEntSubAdt);
    return entry;
}

const uint8_t *
AdtView::SubmessageBitfieldAddr(const AdtHeader &header) const
{
    const uint32_t range =
        header.max_field >= header.min_field && header.max_field != 0
            ? header.max_field - header.min_field + 1
            : 0;
    return base_ + kAdtHeaderBytes +
           static_cast<size_t>(range) * kAdtEntryBytes;
}

uint32_t
AdtView::SubmessageBitfieldBytes(const AdtHeader &header) const
{
    const uint32_t range =
        header.max_field >= header.min_field && header.max_field != 0
            ? header.max_field - header.min_field + 1
            : 0;
    return static_cast<uint32_t>(CeilDiv(range, 8));
}

bool
AdtView::IsSubmessage(uint32_t field_number, const AdtHeader &header) const
{
    const uint32_t index = field_number - header.min_field;
    const uint8_t *bits = SubmessageBitfieldAddr(header);
    return (bits[index / 8] >> (index % 8)) & 1;
}

AdtBuilder::AdtBuilder(const proto::DescriptorPool &pool,
                       proto::Arena *arena)
{
    PA_CHECK(pool.compiled());
    const size_t n = pool.message_count();
    adts_.resize(n);

    // Pass 1: allocate all images so sub-ADT pointers can be linked
    // (types may be mutually or self-recursive).
    std::vector<size_t> sizes(n);
    for (size_t i = 0; i < n; ++i) {
        const auto &desc = pool.message(static_cast<int>(i));
        const uint32_t range = FieldRange(desc);
        sizes[i] = kAdtHeaderBytes +
                   static_cast<size_t>(range) * kAdtEntryBytes +
                   CeilDiv(range, 8);
        adts_[i] = static_cast<uint8_t *>(arena->Allocate(sizes[i], 16));
        total_bytes_ += sizes[i];
    }

    // Pass 2: populate headers, entries and is_submessage bitfields.
    for (size_t i = 0; i < n; ++i) {
        const auto &desc = pool.message(static_cast<int>(i));
        const auto &layout = desc.layout();
        PA_CHECK_EQ(static_cast<int>(layout.hasbits_mode),
                    static_cast<int>(proto::HasbitsMode::kSparse));
        uint8_t *base = adts_[i];

        StoreAt<uint64_t>(base, kHdrDefaultInstance,
                          reinterpret_cast<uint64_t>(
                              desc.default_instance()));
        StoreAt<uint32_t>(base, kHdrObjectSize, layout.object_size);
        StoreAt<uint32_t>(base, kHdrHasbitsOffset, layout.hasbits_offset);
        StoreAt<uint32_t>(base, kHdrHasbitsWords, layout.hasbits_words);
        StoreAt<uint32_t>(base, kHdrMinField, desc.min_field_number());
        StoreAt<uint32_t>(base, kHdrMaxField, desc.max_field_number());
        StoreAt<uint32_t>(base, kHdrUnknownOffset, layout.unknown_offset);

        const uint32_t range = FieldRange(desc);
        uint8_t *entries = base + kAdtHeaderBytes;
        uint8_t *subbits =
            entries + static_cast<size_t>(range) * kAdtEntryBytes;
        for (const auto &f : desc.fields()) {
            const uint32_t index = f.number - desc.min_field_number();
            uint8_t *e =
                entries + static_cast<size_t>(index) * kAdtEntryBytes;
            StoreAt<uint8_t>(e, kEntType, static_cast<uint8_t>(f.type));
            uint8_t flags = kAdtFieldDefined;
            if (f.repeated())
                flags |= kAdtFieldRepeated;
            if (f.packed)
                flags |= kAdtFieldPacked;
            if (f.type == proto::FieldType::kString &&
                desc.syntax() == proto::Syntax::kProto3) {
                flags |= kAdtFieldValidateUtf8;
            }
            StoreAt<uint8_t>(e, kEntFlags, flags);
            StoreAt<uint32_t>(e, kEntOffset, f.offset);
            if (f.type == proto::FieldType::kMessage) {
                StoreAt<uint64_t>(e, kEntSubAdt,
                                  reinterpret_cast<uint64_t>(
                                      adts_[f.message_type]));
                subbits[index / 8] |=
                    static_cast<uint8_t>(1u << (index % 8));
            }
        }
    }
}

}  // namespace protoacc::accel
