/**
 * @file
 * The serializer unit (§4.5, Figure 10).
 *
 * Functional + cycle-level model of the hardware pipeline:
 *
 *   - frontend (§4.5.3): loads the is_submessage and hasbits bit fields,
 *     walks defined field numbers in REVERSE order, issues an ADT load
 *     per present field (pipelined, several outstanding) and a
 *     handle-field-op into the pipeline; maintains context stacks for
 *     sub-message nesting; emits a field-number-zero op at each
 *     (sub-)message boundary;
 *   - K parallel field serializer units (§4.5.4): load field data from
 *     the C++ object, encode (single-cycle varint encode), and expose
 *     serialized chunks — modeled with busy-until scheduling;
 *   - round-robin output sequencer + memwriter (§4.5.5): merges FSU
 *     output in dispatch order and writes it to the arena from HIGH to
 *     LOW addresses at bus width; at end-of-message it injects the
 *     sub-message key with the now-known length (§4.5.1).
 *
 * The output bytes are written for real and must equal the software
 * serializer's output byte-for-byte — asserted by tests.
 */
#ifndef PROTOACC_ACCEL_SERIALIZER_H
#define PROTOACC_ACCEL_SERIALIZER_H

#include <cstdint>
#include <memory>

#include "accel/accel_arena.h"
#include "accel/adt.h"
#include "accel/deserializer.h"  // AccelStatus
#include "accel/rocc.h"
#include "sim/port.h"

namespace protoacc::accel {

/// Timing parameters of the serializer pipeline.
struct SerTiming
{
    /// Parallel field serializer units (Figure 10 shows several;
    /// swept in the FSU-count ablation bench).
    uint32_t num_field_serializers = 4;
    /// Outstanding ADT entry loads the frontend sustains.
    uint32_t adt_outstanding = 4;
    /// Hasbits/is_submessage scan throughput (bits of field-number
    /// range examined per cycle; a priority encoder skips zero words).
    uint32_t scan_bits_per_cycle = 64;
    uint32_t per_present_field_cycles = 1;
    uint32_t submsg_context_switch_cycles = 3;
    uint32_t stack_spill_cycles = 4;
    uint32_t end_of_message_cycles = 1;  ///< memwriter key injection
    uint32_t out_bytes_per_cycle = 16;   ///< memwriter width
    uint32_t on_chip_stack_depth = 25;
    /// ADT response-buffer entries/hit latency (see AdtResponseBuffer).
    uint32_t adt_buffer_entries = 16;
    uint32_t adt_buffer_hit_cycles = 1;
};

/// Counters exposed by the unit.
struct SerStats
{
    uint64_t jobs = 0;
    uint64_t cycles = 0;
    uint64_t out_bytes = 0;
    uint64_t fields = 0;
    uint64_t submessages = 0;
    uint64_t repeated_elements = 0;
    uint64_t scan_cycles = 0;
    uint64_t stack_spills = 0;
    uint64_t max_depth = 0;
};

/**
 * The serializer unit. Jobs queued between fences execute back-to-back.
 */
class SerializerUnit
{
  public:
    SerializerUnit(sim::MemorySystem *memory, const SerTiming &timing);
    ~SerializerUnit();  // out-of-line: Pipe is incomplete here

    /// §4.3/§4.5.1: ser_assign_arena — output data + pointer regions.
    void AssignArena(SerArena *arena) { arena_ = arena; }

    /**
     * Execute one serialization job; on success the output is recorded
     * in the assigned SerArena's pointer region.
     *
     * Within one batch (between fences) jobs overlap in the pipeline:
     * the frontend starts the next message while the FSUs and memwriter
     * drain the previous one. @p cycles receives this job's marginal
     * latency; the batch total is the sum of the marginals.
     */
    AccelStatus Run(const SerJob &job, uint64_t *cycles);

    /// Drain the pipeline at a block_for_ser_completion fence.
    void ResetPipeline();

    /// Health-domain state scrub: drain the pipeline and invalidate the
    /// ADT response buffer and port TLBs so no cross-request state
    /// survives. Cycle cost is charged by the health subsystem
    /// (rpc/health.h).
    void
    ScrubState()
    {
        ResetPipeline();
        adt_buffer_.Clear();
        frontend_port_.FlushTlb();
        fsu_port_.FlushTlb();
        memwriter_port_.FlushTlb();
    }

    const SerStats &stats() const { return stats_; }
    void ResetStats();

  private:
    struct Pipe;            // per-job pipeline state, in .cc
    friend struct SerializerImpl;  // recursive walk, in .cc

    sim::MemorySystem *memory_;
    SerTiming timing_;
    SerArena *arena_ = nullptr;
    sim::Port frontend_port_;  ///< bit-field + ADT loads
    sim::Port fsu_port_;       ///< field serializer data loads
    sim::Port memwriter_port_;
    AdtResponseBuffer adt_buffer_;
    std::unique_ptr<Pipe> pipe_;       ///< live batch pipeline state
    uint64_t batch_completion_ = 0;    ///< last job's completion cycle
    SerStats stats_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_SERIALIZER_H
