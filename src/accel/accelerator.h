/**
 * @file
 * Top-level protobuf accelerator (Figure 8): the deserializer and
 * serializer units behind the RoCC command router, sharing the SoC's
 * L2/LLC with the application core.
 *
 * Mirrors the software-visible contract of §4.4.1/§4.5.2: the CPU
 * enqueues any number of {deser_info, do_proto_deser} or
 * {ser_info, do_proto_ser} pairs, then issues a single
 * block_for_*_completion, which returns once all in-flight operations
 * retire — the batching middle ground that amortizes offload cost for
 * tiny messages (§3.5).
 */
#ifndef PROTOACC_ACCEL_ACCELERATOR_H
#define PROTOACC_ACCEL_ACCELERATOR_H

#include <memory>
#include <vector>

#include "accel/deserializer.h"
#include "accel/ops_unit.h"
#include "accel/serializer.h"
#include "sim/fault.h"

namespace protoacc::accel {

/**
 * Cycle-budget watchdog over the (de)serializer FSMs. A permanently
 * wedged unit (sim::UnitFaultKind::kWedge — an FSM livelock no fence
 * ever retires) is detected when a job exceeds budget_cycles; the
 * watchdog resets the unit (reset_cycles: flush the FSM, re-arm the
 * frontends) and replays the victim job from its descriptor, which is
 * safe because jobs are idempotent — inputs in memory are untouched
 * and outputs are rewritten whole.
 */
struct WatchdogConfig
{
    /// Per-job cycle budget; 0 disables the watchdog (a wedge then
    /// hangs until the coarse command-router timeout abandons the job).
    uint64_t budget_cycles = 0;
    /// Modeled unit-reset cost charged before the replay.
    uint64_t reset_cycles = 512;
};

/// What the watchdog did (monotonic per device).
struct WatchdogStats
{
    uint64_t resets = 0;
    uint64_t replayed_jobs = 0;
    /// Cycles burned on blown budgets + resets (not useful work).
    uint64_t wasted_cycles = 0;
};

/// Accelerator-wide configuration.
struct AccelConfig
{
    /// Clock of the accelerator and SoC (§5: modeled at 2 GHz, supported
    /// by the §5.3 synthesis results of 1.95/1.84 GHz).
    double freq_ghz = 2.0;
    DeserTiming deser;
    SerTiming ser;
    OpsTiming ops;
    WatchdogConfig watchdog;
};

/**
 * The accelerator device model. Owns both units; jobs within a batch
 * execute back-to-back on their unit (one FSM each), and the blocking
 * fence returns the batch's total latency.
 */
class ProtoAccelerator
{
  public:
    ProtoAccelerator(sim::MemorySystem *memory, const AccelConfig &config);

    const AccelConfig &config() const { return config_; }

    // ---- §4.3 arena assignment instructions ----
    void DeserAssignArena(proto::Arena *arena);
    void SerAssignArena(SerArena *arena);

    // ---- deserialization (§4.4.1) ----
    /// deser_info + do_proto_deser: queue one deserialization.
    void EnqueueDeser(const DeserJob &job);
    /**
     * block_for_deser_completion: run all queued jobs back-to-back.
     *
     * @param[out] cycles total batch latency (including the fence).
     * @return the first non-OK status, if any.
     */
    AccelStatus BlockForDeserCompletion(uint64_t *cycles);

    // ---- serialization (§4.5.2) ----
    void EnqueueSer(const SerJob &job);
    AccelStatus BlockForSerCompletion(uint64_t *cycles);

    // ---- §7 message operations (merge/copy/clear) ----
    void EnqueueOp(const OpsJob &job);
    AccelStatus BlockForOpsCompletion(uint64_t *cycles);

    /**
     * Attach a fault injector (nullptr detaches). Each queued job draws
     * one unit-fault sample at fence time: a kill abandons the job (its
     * destination is left untouched and the fence reports kUnitFault),
     * a stall adds the drawn cycles to the batch latency. The injector
     * is not owned and must outlive the accelerator.
     */
    void SetFaultInjector(sim::FaultInjector *injector)
    {
        fault_injector_ = injector;
    }
    sim::FaultInjector *fault_injector() const { return fault_injector_; }

    /// Watchdog activity so far (unit resets, replayed jobs).
    const WatchdogStats &watchdog_stats() const { return watchdog_stats_; }

    /// Health-domain state scrub across all units: drop any queued
    /// jobs (they belong to the quarantined epoch) and clear every
    /// piece of cross-request device state — ADT response buffers,
    /// pipeline context, port TLBs and the device-side cache hierarchy.
    /// Anything less leaves a timing channel: a warm L2 line or TLB
    /// entry from the quarantined epoch makes the next request
    /// measurably faster than on a fresh device. The modeled cycle
    /// cost is charged by the health subsystem (rpc/health.h
    /// ComputeScrubCost).
    void
    ScrubUnits()
    {
        deser_queue_.clear();
        ser_queue_.clear();
        ops_queue_.clear();
        deser_->ScrubState();
        ser_->ScrubState();
        ops_->ScrubState();
        memory_->Flush();
    }

    DeserializerUnit &deserializer() { return *deser_; }
    SerializerUnit &serializer() { return *ser_; }
    OpsUnit &ops() { return *ops_; }
    const DeserializerUnit &deserializer() const { return *deser_; }
    const SerializerUnit &serializer() const { return *ser_; }
    const OpsUnit &ops() const { return *ops_; }

    /// Convert a cycle count to seconds at the modeled clock.
    double
    Seconds(uint64_t cycles) const
    {
        return static_cast<double>(cycles) / (config_.freq_ghz * 1e9);
    }

  private:
    AccelConfig config_;
    sim::MemorySystem *memory_;
    std::unique_ptr<DeserializerUnit> deser_;
    std::unique_ptr<SerializerUnit> ser_;
    std::unique_ptr<OpsUnit> ops_;
    std::vector<DeserJob> deser_queue_;
    std::vector<SerJob> ser_queue_;
    std::vector<OpsJob> ops_queue_;
    sim::FaultInjector *fault_injector_ = nullptr;
    WatchdogStats watchdog_stats_;
};

/**
 * Convenience builder for SerJob from a compiled message type (the code
 * the modified protobuf library generates around do_proto_ser).
 */
SerJob MakeSerJob(const AdtBuilder &adts, int msg_index,
                  const proto::DescriptorPool &pool, const void *obj);

/// Likewise for DeserJob.
DeserJob MakeDeserJob(const AdtBuilder &adts, int msg_index,
                      const proto::DescriptorPool &pool, void *dest_obj,
                      const uint8_t *src, size_t len);

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_ACCELERATOR_H
