/**
 * @file
 * Frame engine: the on-device framing/CRC/dedup stage of the offloaded
 * RPC datapath.
 *
 * With the host-path serving stack, the accelerator only does proto
 * (de)serialization; every request still burns host cycles on frame
 * header parsing, CRC32C verify/stamp, dedup-key probing and
 * error-frame synthesis. This engine models the RPCAcc-style fix: a
 * hardware stage sitting between the wire and the (de)serializer units
 * that performs that framing work on the device — header fields are
 * extracted combinationally, the CRC runs over a wide datapath inline
 * with the streaming bytes, and the dedup probe hits a device-resident
 * mirror of the response cache's key set.
 *
 * Functionally nothing changes: the same FrameBuffer code parses and
 * stamps the same bytes, and the same DedupCache answers the same
 * probes — the engine is a proto::CostSink, so attaching it to the
 * ingress/reply buffers *reprices* the framing work at device rates
 * (and into device time) instead of host cycles. That keeps the
 * differential guarantee trivial to state: the offload path is
 * byte-identical on the wire because it runs the identical functional
 * code; only the cost accounting and the queueing model move.
 *
 * Single-owner, like the per-worker counters it sits next to: each
 * runtime worker owns one engine (its shard of the frame-engine
 * pipeline), so accumulation needs no synchronization.
 */
#ifndef PROTOACC_ACCEL_FRAME_ENGINE_H
#define PROTOACC_ACCEL_FRAME_ENGINE_H

#include <cstddef>
#include <cstdint>

#include "proto/cost_sink.h"

namespace protoacc::accel {

/// Cycle rates of the frame-engine datapath (device clock domain — the
/// same clock as AccelConfig::freq_ghz).
struct FrameEngineTiming
{
    /// Header parse or stamp: the 28-byte fixed header is one
    /// combinational field extract/insert plus the version/kind/length
    /// checks — a single pipeline stage, vs the branchy byte-poking a
    /// core does.
    uint32_t header_cycles = 1;
    /// CRC32C datapath priming per frame (one fold-register load).
    uint32_t crc_setup_cycles = 1;
    /// Wide folded CRC32C datapath, bytes per cycle: a 512-bit slice,
    /// the width line-rate NIC MACs run their FCS at (cores with CRC32
    /// instructions manage ~8 bytes/cycle).
    double crc_bytes_per_cycle = 64.0;
    /// Probe of the device-resident dedup-key mirror (hash + one
    /// single-cycle SRAM/CAM read), or the insert updating it on the
    /// commit path.
    uint32_t dedup_probe_cycles = 2;
    /// Error-frame synthesis premium for reject paths (status lookup +
    /// detail-string fetch), on top of the header/CRC the error frame
    /// pays like any other frame.
    uint32_t error_frame_cycles = 4;
    /// Stream bookkeeping per v4 stream frame: subheader extract,
    /// offset/window compare, running-CRC fold-register swap. One extra
    /// stage over a unary frame — the chunk payload CRC itself still
    /// rides the wide crc_bytes_per_cycle datapath.
    uint32_t stream_ctrl_cycles = 2;
};

/**
 * Accumulates modeled device cycles for the framing work routed
 * through it. Attach to a FrameBuffer (SetCostSink) and to the
 * server's dedup probes; read cycles() deltas per batch to ride the
 * frame-engine time on the device timeline.
 */
class FrameEngine : public proto::CostSink
{
  public:
    struct Stats
    {
        uint64_t frame_headers = 0;
        uint64_t crc_ops = 0;
        uint64_t crc_bytes = 0;
        uint64_t dedup_probes = 0;
        uint64_t error_frames = 0;
        /// v4 stream data chunks priced through the engine.
        uint64_t stream_chunks = 0;
        uint64_t stream_chunk_bytes = 0;
        /// v4 stream control frames (BEGIN/END/CANCEL/CREDIT).
        uint64_t stream_ctrl_frames = 0;
    };

    FrameEngine() = default;
    explicit FrameEngine(const FrameEngineTiming &timing)
        : timing_(timing)
    {}

    void
    OnCrc(size_t bytes) override
    {
        cycles_ += timing_.crc_setup_cycles +
                   static_cast<double>(bytes) /
                       timing_.crc_bytes_per_cycle;
        ++stats_.crc_ops;
        stats_.crc_bytes += bytes;
    }
    void
    OnFrameHeader() override
    {
        cycles_ += timing_.header_cycles;
        ++stats_.frame_headers;
    }
    void
    OnDedupProbe() override
    {
        cycles_ += timing_.dedup_probe_cycles;
        ++stats_.dedup_probes;
    }

    /// Price one inbound frame of @p frame_bytes (header + payload) as
    /// the engine pulls it off the wire: header parse/validate plus
    /// the streaming CRC verify. Used when the ingress scan's
    /// functional verify ran elsewhere (the submitter) but the work
    /// belongs on the device.
    void
    ChargeIngressFrame(size_t frame_bytes)
    {
        OnFrameHeader();
        OnCrc(frame_bytes);
    }

    /// One reject-path error frame was synthesized (its header/CRC
    /// charges arrive via the sink hooks like any frame; this adds the
    /// synthesis premium).
    void
    ChargeErrorFrame()
    {
        cycles_ += timing_.error_frame_cycles;
        ++stats_.error_frames;
    }

    /// Price one v4 stream data chunk of @p chunk_bytes payload: the
    /// ingress header/CRC work plus the stream-bookkeeping stage
    /// (offset check, window update, running-CRC fold).
    void
    ChargeStreamChunk(size_t chunk_bytes)
    {
        ChargeIngressFrame(chunk_bytes);
        cycles_ += timing_.stream_ctrl_cycles;
        ++stats_.stream_chunks;
        stats_.stream_chunk_bytes += chunk_bytes;
    }

    /// Price one v4 stream control frame (BEGIN/END/CANCEL/CREDIT) of
    /// @p subheader_bytes payload.
    void
    ChargeStreamControl(size_t subheader_bytes)
    {
        ChargeIngressFrame(subheader_bytes);
        cycles_ += timing_.stream_ctrl_cycles;
        ++stats_.stream_ctrl_frames;
    }

    /// Accumulated device cycles.
    double cycles() const { return cycles_; }
    const Stats &stats() const { return stats_; }
    const FrameEngineTiming &timing() const { return timing_; }

    void
    Reset()
    {
        cycles_ = 0;
        stats_ = Stats{};
    }

  private:
    FrameEngineTiming timing_;
    double cycles_ = 0;
    Stats stats_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_FRAME_ENGINE_H
