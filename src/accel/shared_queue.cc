#include "accel/shared_queue.h"

#include <algorithm>

#include "common/check.h"

namespace protoacc::accel {

SharedAccelQueue::SharedAccelQueue(const SharedQueueConfig &config)
    : config_(config)
{
    PA_CHECK_GE(config_.num_units, 1u);
    unit_free_.assign(config_.num_units, 0);
}

SharedAccelQueue::Completion
SharedAccelQueue::SubmitBatch(uint64_t arrival_cycle, uint32_t jobs,
                              uint64_t service_cycles)
{
    PA_CHECK_GE(jobs, 1u);
    std::lock_guard<std::mutex> lock(mu_);

    // The requester's core issues the doorbell instruction pairs
    // before any unit can start.
    const uint64_t ready =
        arrival_cycle +
        static_cast<uint64_t>(config_.dispatch_cycles_per_job) * jobs;

    auto unit = std::min_element(unit_free_.begin(), unit_free_.end());
    const bool contended = *unit > ready;
    const uint64_t start = contended ? *unit : ready;
    // Watchdog: a batch blowing its cycle budget models a wedged unit —
    // the budget elapses, the unit resets, then the batch replays clean.
    uint64_t penalty = 0;
    if (config_.watchdog_budget_cycles > 0 &&
        service_cycles > config_.watchdog_budget_cycles) {
        penalty = config_.watchdog_budget_cycles +
                  config_.watchdog_reset_cycles;
        ++stats_.watchdog_resets;
        stats_.watchdog_wasted_cycles += penalty;
    }
    const uint64_t done =
        start + penalty + service_cycles + config_.fence_cycles;
    *unit = done;

    Completion c;
    c.start_cycle = start;
    c.done_cycle = done;
    c.wait_cycles = start - ready;

    ++stats_.batches;
    stats_.jobs += jobs;
    stats_.total_wait_cycles += c.wait_cycles;
    stats_.total_service_cycles += service_cycles;
    if (contended)
        ++stats_.contended_batches;
    stats_.busy_until_cycle = std::max(stats_.busy_until_cycle, done);
    return c;
}

SharedAccelQueue::Stats
SharedAccelQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SharedAccelQueue::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    unit_free_.assign(config_.num_units, 0);
    stats_ = Stats{};
}

}  // namespace protoacc::accel
