#include "accel/shared_queue.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace protoacc::accel {

namespace {

/// Wedge hang bound when no watchdog budget is configured (mirrors the
/// device model's command-router last-resort timeout).
constexpr uint64_t kWedgeHangCycles = 1'000'000;

}  // namespace

SharedAccelQueue::SharedAccelQueue(const SharedQueueConfig &config)
    : config_(config)
{
    PA_CHECK_GE(config_.num_units, 1u);
    unit_free_.assign(config_.num_units, 0);
    unit_epoch_.assign(config_.num_units, 0);
    unit_fenced_.assign(config_.num_units, false);
    unit_probation_.assign(config_.num_units, false);
    unit_injectors_.assign(config_.num_units, nullptr);
    stats_.unit_batches.assign(config_.num_units, 0);
    stats_.unit_watchdog_resets.assign(config_.num_units, 0);
}

uint32_t
SharedAccelQueue::PickUnitLocked()
{
    // Earliest-free arbitration over the in-service units only: a
    // fenced (or maintenance-blocked) unit simply never wins, which is
    // how live traffic routes around a quarantined one. A probation
    // unit competes with its free time pushed out by the bias, so a
    // fully-trusted unit that is nearly as free takes the work while
    // the probationer re-earns trust on the remainder.
    const uint64_t bias = config_.probation_bias_cycles;
    uint32_t unit = config_.num_units;      // biased winner
    uint32_t unbiased = config_.num_units;  // would-be winner, no bias
    uint64_t best_score = 0;
    for (uint32_t u = 0; u < config_.num_units; ++u) {
        // The epoch fence: a unit whose table memory lags the fleet
        // epoch must never serve — its descriptors describe the wrong
        // schema version. Excluded exactly like a fenced unit.
        if (unit_fenced_[u] || unit_epoch_[u] != current_epoch_)
            continue;
        const uint64_t score =
            unit_free_[u] + (unit_probation_[u] ? bias : 0);
        if (unit == config_.num_units || score < best_score) {
            unit = u;
            best_score = score;
        }
        if (unbiased == config_.num_units ||
            unit_free_[u] < unit_free_[unbiased])
            unbiased = u;
    }
    PA_CHECK_LT(unit, config_.num_units);  // last unit is unfenceable
    if (unit != unbiased)
        ++stats_.probation_deflections;
    return unit;
}

SharedAccelQueue::Completion
SharedAccelQueue::SubmitBatch(uint64_t arrival_cycle, uint32_t jobs,
                              uint64_t service_cycles)
{
    PA_CHECK_GE(jobs, 1u);
    std::lock_guard<std::mutex> lock(mu_);

    // The requester's core issues the doorbell instruction pairs
    // before any unit can start.
    const uint64_t ready =
        arrival_cycle +
        static_cast<uint64_t>(config_.dispatch_cycles_per_job) * jobs;

    // The host-driven path blocks on the completion fence, which
    // occupies the unit until the requester returns.
    return FinishBatchLocked(PickUnitLocked(), ready, jobs,
                             service_cycles, config_.fence_cycles, 0);
}

SharedAccelQueue::Completion
SharedAccelQueue::SubmitOffloadBatch(uint64_t arrival_cycle,
                                     const OffloadBatch &batch)
{
    PA_CHECK_GE(batch.jobs, 1u);
    std::lock_guard<std::mutex> lock(mu_);

    const double freq = config_.freq_ghz;
    const uint32_t calls = std::max<uint32_t>(batch.calls, 1);
    const double n = static_cast<double>(calls);

    // The device pulls the batch from a descriptor ring: one doorbell,
    // however many jobs. RoCC models it as a single instruction-pair
    // issue; PCIe as the MMIO doorbell write.
    const uint64_t doorbell =
        config_.transfer.placement == Placement::kRoCC
            ? static_cast<uint64_t>(kRoccDispatchCycles)
            : config_.transfer.DoorbellCycles(freq);
    const uint64_t ready = arrival_cycle + doorbell;

    // Pipelined makespan over the batch's calls: the frame engine,
    // deserializer and serializer (and, PCIe-attached, the DMA engine)
    // are independent stages, so steady-state throughput is set by the
    // slowest stage and only the first call pays the full stage sum.
    // With uniform per-call stage times t_j this is the classic
    // (n - 1) * max_j(t_j) + sum_j(t_j).
    const uint64_t dma = config_.transfer.TransferCycles(
        batch.wire_bytes, freq);
    const double stages[] = {
        static_cast<double>(batch.frame_cycles),
        static_cast<double>(batch.deser_cycles),
        static_cast<double>(batch.ser_cycles),
        static_cast<double>(dma),
    };
    double total = 0;
    double slowest = 0;
    for (const double s : stages) {
        total += s;
        slowest = std::max(slowest, s);
    }
    const uint64_t makespan = static_cast<uint64_t>(
        std::llround((n - 1.0) * slowest / n + total / n));

    // No completion fence occupies the unit (the egress frame IS the
    // completion); PCIe delays only the requester's observation of it.
    const uint64_t completion_tail =
        config_.transfer.CompletionCycles(freq);
    const Completion c = FinishBatchLocked(
        PickUnitLocked(), ready, batch.jobs, makespan, 0,
        completion_tail);

    ++stats_.offload_batches;
    stats_.offload_frame_cycles += batch.frame_cycles;
    stats_.offload_wire_bytes += batch.wire_bytes;
    stats_.transfer_cycles += doorbell + dma + completion_tail;
    return c;
}

SharedAccelQueue::Completion
SharedAccelQueue::FinishBatchLocked(uint32_t unit, uint64_t ready,
                                    uint32_t jobs,
                                    uint64_t service_cycles,
                                    uint64_t occupancy_tail,
                                    uint64_t completion_tail)
{
    const bool contended = unit_free_[unit] > ready;
    const uint64_t start = contended ? unit_free_[unit] : ready;

    // Correctness tripwire, not a control path: the epoch fence in
    // PickUnitLocked makes a stale-table dispatch impossible, and the
    // skew soak asserts this counter stays 0.
    if (unit_epoch_[unit] != current_epoch_)
        ++stats_.stale_epoch_dispatches;

    // Injected unit faults on the serving unit: a bounded stall
    // inflates this batch's service time; a wedge (or a kill — on the
    // timing-only shared model both wedge the FSM) hangs until the
    // watchdog budget.
    uint64_t effective_service = service_cycles;
    bool injected_wedge = false;
    if (unit_injectors_[unit] != nullptr) {
        const sim::UnitFault fault =
            unit_injectors_[unit]->SampleUnitFault();
        if (fault.kind == sim::UnitFaultKind::kStall)
            effective_service += fault.stall_cycles;
        else if (fault.kind != sim::UnitFaultKind::kNone)
            injected_wedge = true;
    }

    // Watchdog: a batch blowing its cycle budget models a wedged unit —
    // the budget elapses, the unit resets, then the batch replays clean.
    uint64_t penalty = 0;
    bool watchdog_fired = false;
    if (config_.watchdog_budget_cycles > 0 &&
        (injected_wedge ||
         effective_service > config_.watchdog_budget_cycles)) {
        penalty = config_.watchdog_budget_cycles +
                  config_.watchdog_reset_cycles;
        watchdog_fired = true;
        ++stats_.watchdog_resets;
        ++stats_.unit_watchdog_resets[unit];
        stats_.watchdog_wasted_cycles += penalty;
    } else if (injected_wedge) {
        // No watchdog armed: the wedge hangs the unit to the coarse
        // last-resort timeout before the batch replays.
        penalty = kWedgeHangCycles;
    }
    const uint64_t busy_end =
        start + penalty + effective_service + occupancy_tail;
    unit_free_[unit] = busy_end;

    Completion c;
    c.start_cycle = start;
    c.done_cycle = busy_end + completion_tail;
    c.wait_cycles = start - ready;
    c.unit = unit;
    c.watchdog_fired = watchdog_fired;

    ++stats_.batches;
    ++stats_.unit_batches[unit];
    stats_.jobs += jobs;
    stats_.total_wait_cycles += c.wait_cycles;
    stats_.total_service_cycles += service_cycles;
    if (contended)
        ++stats_.contended_batches;
    stats_.busy_until_cycle =
        std::max(stats_.busy_until_cycle, busy_end);
    return c;
}

void
SharedAccelQueue::SetUnitFaultInjector(uint32_t unit,
                                       sim::FaultInjector *injector)
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    unit_injectors_[unit] = injector;
}

uint64_t
SharedAccelQueue::BlockUnit(uint32_t unit, uint64_t cycles)
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    unit_free_[unit] += cycles;
    stats_.health_blocked_cycles += cycles;
    stats_.busy_until_cycle =
        std::max(stats_.busy_until_cycle, unit_free_[unit]);
    return unit_free_[unit];
}

bool
SharedAccelQueue::SetUnitFenced(uint32_t unit, bool fenced)
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    if (fenced && !unit_fenced_[unit]) {
        // Refuse to fence the last in-service unit: the fleet must
        // keep serving, so the final survivor stays on probation.
        uint32_t available = 0;
        for (const bool f : unit_fenced_)
            if (!f)
                ++available;
        if (available <= 1)
            return false;
    }
    if (unit_fenced_[unit] != fenced) {
        unit_fenced_[unit] = fenced;
        stats_.fenced_units += fenced ? 1u : -1u;
    }
    return true;
}

bool
SharedAccelQueue::unit_fenced(uint32_t unit) const
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    return unit_fenced_[unit];
}

void
SharedAccelQueue::SetUnitProbation(uint32_t unit, bool probation)
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    unit_probation_[unit] = probation;
}

bool
SharedAccelQueue::unit_probation(uint32_t unit) const
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    return unit_probation_[unit];
}

uint32_t
SharedAccelQueue::available_units() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t available = 0;
    for (const bool f : unit_fenced_)
        if (!f)
            ++available;
    return available;
}

uint64_t
SharedAccelQueue::earliest_free_cycle() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t earliest = 0;
    bool any = false;
    for (uint32_t u = 0; u < config_.num_units; ++u) {
        if (unit_fenced_[u] || unit_epoch_[u] != current_epoch_)
            continue;
        if (!any || unit_free_[u] < earliest)
            earliest = unit_free_[u];
        any = true;
    }
    return earliest;
}

uint32_t
SharedAccelQueue::SampleUnitFaults(uint32_t unit, uint32_t n)
{
    sim::FaultInjector *injector;
    {
        std::lock_guard<std::mutex> lock(mu_);
        PA_CHECK_LT(unit, config_.num_units);
        injector = unit_injectors_[unit];
    }
    if (injector == nullptr)
        return 0;
    uint32_t faulted = 0;
    for (uint32_t i = 0; i < n; ++i)
        if (injector->SampleUnitFault().kind !=
            sim::UnitFaultKind::kNone)
            ++faulted;
    return faulted;
}

uint64_t
SharedAccelQueue::LoadTableLocked(uint32_t unit, uint64_t start_cycle,
                                  uint64_t load_cycles)
{
    // The load begins when the unit drains its in-flight work: those
    // batches dispatched under the old epoch and complete against it.
    const uint64_t begin = std::max(unit_free_[unit], start_cycle);
    const uint64_t end = begin + load_cycles;
    unit_free_[unit] = end;
    stats_.table_load_cycles += load_cycles;
    stats_.busy_until_cycle = std::max(stats_.busy_until_cycle, end);
    return end;
}

SharedAccelQueue::TableSwap
SharedAccelQueue::BeginTableSwap(uint64_t start_cycle,
                                 uint64_t table_bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++current_epoch_;
    ++stats_.table_swaps;

    const uint64_t load_cycles = static_cast<uint64_t>(std::ceil(
        static_cast<double>(table_bytes) *
        config_.table_load_cycles_per_byte));

    TableSwap swap;
    swap.epoch = current_epoch_;

    // In-service units only: a fenced unit (or one stranded stale by
    // an earlier aborted load) is the health policy's problem — it
    // rejoins through scrub + self-test + RetryTableLoad.
    std::vector<uint32_t> fleet;
    for (uint32_t u = 0; u < config_.num_units; ++u)
        if (!unit_fenced_[u] && unit_epoch_[u] + 1 == current_epoch_)
            fleet.push_back(u);

    for (size_t i = 0; i < fleet.size(); ++i) {
        const uint32_t u = fleet[i];
        bool killed = false;
        if (unit_injectors_[u] != nullptr)
            killed = unit_injectors_[u]->SampleUnitFault().kind !=
                     sim::UnitFaultKind::kNone;
        const bool last_hope =
            swap.loads_committed == 0 && i + 1 == fleet.size();
        if (killed) {
            // Mid-load kill: half the image streamed, then the unit
            // died. A partially-written table must never serve, so the
            // unit keeps its old epoch and is fenced for quarantine.
            LoadTableLocked(u, start_cycle, load_cycles / 2);
            ++stats_.table_loads_aborted;
            ++swap.loads_aborted;
            if (!last_hope) {
                if (!unit_fenced_[u]) {
                    unit_fenced_[u] = true;
                    ++stats_.fenced_units;
                }
                continue;
            }
            // The fleet must keep serving: the final survivor pays a
            // full clean reload on top of the aborted half and commits.
        }
        const uint64_t end = LoadTableLocked(u, start_cycle, load_cycles);
        unit_epoch_[u] = current_epoch_;
        ++stats_.table_loads_committed;
        ++swap.loads_committed;
        swap.done_cycle = std::max(swap.done_cycle, end);
    }
    return swap;
}

bool
SharedAccelQueue::RetryTableLoad(uint32_t unit, uint64_t start_cycle,
                                 uint64_t table_bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    if (unit_epoch_[unit] == current_epoch_)
        return true;  // nothing to reload

    const uint64_t load_cycles = static_cast<uint64_t>(std::ceil(
        static_cast<double>(table_bytes) *
        config_.table_load_cycles_per_byte));
    bool killed = false;
    if (unit_injectors_[unit] != nullptr)
        killed = unit_injectors_[unit]->SampleUnitFault().kind !=
                 sim::UnitFaultKind::kNone;
    if (killed) {
        LoadTableLocked(unit, start_cycle, load_cycles / 2);
        ++stats_.table_loads_aborted;
        return false;  // still stale — caller keeps the fence up
    }
    LoadTableLocked(unit, start_cycle, load_cycles);
    unit_epoch_[unit] = current_epoch_;
    ++stats_.table_loads_committed;
    return true;
}

uint64_t
SharedAccelQueue::current_epoch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return current_epoch_;
}

uint64_t
SharedAccelQueue::unit_epoch(uint32_t unit) const
{
    std::lock_guard<std::mutex> lock(mu_);
    PA_CHECK_LT(unit, config_.num_units);
    return unit_epoch_[unit];
}

SharedAccelQueue::Stats
SharedAccelQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SharedAccelQueue::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    unit_free_.assign(config_.num_units, 0);
    const uint32_t fenced = stats_.fenced_units;
    stats_ = Stats{};
    stats_.unit_batches.assign(config_.num_units, 0);
    stats_.unit_watchdog_resets.assign(config_.num_units, 0);
    stats_.fenced_units = fenced;
}

}  // namespace protoacc::accel
