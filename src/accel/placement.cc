#include "accel/placement.h"

#include <cmath>

namespace protoacc::accel {

namespace {

uint64_t
NsToCycles(double ns, double freq_ghz)
{
    return static_cast<uint64_t>(std::llround(ns * freq_ghz));
}

}  // namespace

const char *
PlacementName(Placement placement)
{
    switch (placement) {
      case Placement::kRoCC:
        return "rocc";
      case Placement::kPCIe:
        return "pcie";
    }
    return "unknown";
}

uint64_t
TransferModel::DoorbellCycles(double freq_ghz) const
{
    if (placement == Placement::kRoCC)
        return 0;
    return NsToCycles(pcie_doorbell_ns, freq_ghz);
}

uint64_t
TransferModel::TransferCycles(uint64_t wire_bytes, double freq_ghz) const
{
    if (placement == Placement::kRoCC)
        return 0;
    const double move_ns =
        pcie_dma_latency_ns +
        static_cast<double>(wire_bytes) / pcie_bytes_per_ns;
    return NsToCycles(move_ns, freq_ghz);
}

uint64_t
TransferModel::CompletionCycles(double freq_ghz) const
{
    if (placement == Placement::kRoCC)
        return 0;
    return NsToCycles(pcie_completion_ns, freq_ghz);
}

}  // namespace protoacc::accel
