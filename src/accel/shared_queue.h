/**
 * @file
 * Shared-accelerator queue model: the doorbell/completion contention
 * layer in front of the (de)serializer units.
 *
 * The device model (accelerator.h) prices one requester's batch in
 * isolation — service time only. In the serving scenario the paper
 * motivates (§1, "datacenter tax"), K cores contend for one accelerator
 * instance: each worker rings a doorbell with a batch of
 * {deser_info, do_proto_deser} / {ser_info, do_proto_ser} pairs (§4.4.1,
 * §4.5.2) and blocks on the completion fence, so modeled latency under
 * load is queueing delay *plus* service, not service alone.
 *
 * This class arbitrates a shared virtual timeline: submissions carry an
 * arrival cycle (the requester's own clock) and a service-cycle cost
 * (measured on the requester's device model); the queue assigns each
 * batch the earliest-free unit at or after its arrival and returns the
 * completion cycle. Per-job doorbell issue cost and the per-batch fence
 * come from the RoCC constants the rest of the model already uses, so a
 * lone uncontended batch costs exactly its isolated-model latency plus
 * those fixed overheads — the queue only ever *adds* wait under
 * contention, leaving single-call figure benches untouched.
 *
 * Thread-safe: serving-runtime workers submit concurrently.
 */
#ifndef PROTOACC_ACCEL_SHARED_QUEUE_H
#define PROTOACC_ACCEL_SHARED_QUEUE_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "accel/placement.h"
#include "accel/rocc.h"
#include "sim/fault.h"

namespace protoacc::accel {

/// Configuration of the shared queue.
struct SharedQueueConfig
{
    /// Accelerator instances behind the doorbell (each one full
    /// deserializer + serializer pair, Figure 8).
    uint32_t num_units = 1;
    /// Cycles to issue one job's RoCC instruction pair from the core
    /// (deser_info + do_proto_deser, or ser_info + do_proto_ser).
    uint32_t dispatch_cycles_per_job = 2 * kRoccDispatchCycles;
    /// Cycles for the blocking block_for_*_completion fence, paid once
    /// per batch (§3.5 batching amortizes it).
    uint32_t fence_cycles = kFenceCycles;

    /// Per-batch watchdog budget on the shared units; 0 disables. A
    /// batch whose service time blows the budget is treated as a
    /// wedged unit: the watchdog fires at the budget, resets the unit
    /// (reset_cycles) and the batch replays — so its completion is
    /// budget + reset + service later than a clean run, and the unit
    /// stays occupied for that whole window.
    uint64_t watchdog_budget_cycles = 0;
    uint64_t watchdog_reset_cycles = 512;

    /// Clock of the shared timeline, used to convert the transfer
    /// model's nanosecond costs into cycles (matches
    /// accel::AccelConfig::freq_ghz by default).
    double freq_ghz = 2.0;
    /// Interconnect placement of the units (RoCC-integrated vs
    /// PCIe-attached). Only the offload submit path consults it: the
    /// classic host-driven path is RoCC by construction (its dispatch
    /// cycles ARE the RoCC instruction pairs).
    TransferModel transfer;
    /// Health-aware dispatch: a probation-state unit (reintegrated
    /// after scrub + self-test, reduced trust) only wins arbitration
    /// when it is free this many cycles earlier than the best
    /// fully-trusted unit — fresh work prefers units without an error
    /// history while the probationer re-earns trust. 0 disables the
    /// bias.
    uint32_t probation_bias_cycles = 64;

    /// Cycles to stream one byte of a descriptor-table image into a
    /// unit's local table memory during an epoch swap (BeginTableSwap).
    /// Default matches the memloader width the device model already
    /// uses: 16 B/cycle.
    double table_load_cycles_per_byte = 1.0 / 16.0;
};

/**
 * One offloaded batch: the full RPC pipeline (frame engine -> deser ->
 * handler -> ser -> frame engine) runs device-side, so the stage
 * totals arrive separately and the unit models them as a pipeline over
 * the batch's calls instead of a host-fenced serial sum.
 */
struct OffloadBatch
{
    /// Codec jobs that ran on the device (deser + ser count).
    uint32_t jobs = 0;
    /// Deserializer-side unit cycles for the whole batch.
    uint64_t deser_cycles = 0;
    /// Serializer-side unit cycles for the whole batch.
    uint64_t ser_cycles = 0;
    /// Frame-engine stage cycles (header parse/stamp, CRC verify and
    /// stamp, dedup probes, error synthesis) for the whole batch.
    uint64_t frame_cycles = 0;
    /// Request + response bytes crossing the interconnect (PCIe DMA
    /// pays latency + bandwidth for them; RoCC moves them through the
    /// cache hierarchy for free at this layer).
    uint64_t wire_bytes = 0;
    /// Calls in the batch — the pipelined item count.
    uint32_t calls = 1;
};

/**
 * Arbitrates batches of accelerator jobs from concurrent requesters
 * onto num_units shared units along a virtual cycle timeline.
 */
class SharedAccelQueue
{
  public:
    /// Outcome of one batch submission on the shared timeline.
    struct Completion
    {
        uint64_t start_cycle = 0;  ///< when a unit began the batch
        uint64_t done_cycle = 0;   ///< fence return (completion)
        uint64_t wait_cycles = 0;  ///< queueing delay (start - ready)
        /// Unit that served the batch — the identity the health
        /// subsystem tracks error history against.
        uint32_t unit = 0;
        /// The watchdog fired on this batch (blown budget, or an
        /// injected wedge on the serving unit): one incident for the
        /// unit's health domain.
        bool watchdog_fired = false;
    };

    /// Aggregate counters (monotonic until Reset).
    struct Stats
    {
        uint64_t batches = 0;
        uint64_t jobs = 0;
        uint64_t total_wait_cycles = 0;
        uint64_t total_service_cycles = 0;
        /// Batches that found every unit busy on arrival.
        uint64_t contended_batches = 0;
        /// Latest completion on the shared timeline.
        uint64_t busy_until_cycle = 0;
        /// Watchdog firings (budget blown => unit reset + replay).
        uint64_t watchdog_resets = 0;
        /// Cycles burned on blown budgets + resets.
        uint64_t watchdog_wasted_cycles = 0;
        /// Offloaded-datapath batches (SubmitOffloadBatch).
        uint64_t offload_batches = 0;
        /// Frame-engine stage cycles carried by offloaded batches.
        uint64_t offload_frame_cycles = 0;
        /// Bytes offloaded batches moved across the interconnect.
        uint64_t offload_wire_bytes = 0;
        /// Interconnect cycles the placement added (doorbell + DMA +
        /// completion delivery; 0 under RoCC).
        uint64_t transfer_cycles = 0;
        /// Dispatches steered away from a probation unit that was
        /// nominally earliest-free (health-aware arbitration).
        uint64_t probation_deflections = 0;
        /// Per-unit batch and watchdog-reset counts (indexed by unit).
        std::vector<uint64_t> unit_batches;
        std::vector<uint64_t> unit_watchdog_resets;
        /// Cycles units spent blocked for health maintenance
        /// (scrub + self-test windows, via BlockUnit).
        uint64_t health_blocked_cycles = 0;
        /// Units currently fenced out of arbitration.
        uint32_t fenced_units = 0;
        /// Descriptor-table epoch swaps begun (BeginTableSwap).
        uint64_t table_swaps = 0;
        /// Per-unit table loads that committed their epoch.
        uint64_t table_loads_committed = 0;
        /// Loads killed mid-stream (unit left on its old epoch and
        /// fenced for quarantine — fail-closed).
        uint64_t table_loads_aborted = 0;
        /// Unit cycles spent streaming table images (committed loads,
        /// aborted half-loads and forced clean retries alike).
        uint64_t table_load_cycles = 0;
        /// Batches that started on a unit whose table epoch lagged the
        /// current one. The epoch fence makes this impossible by
        /// construction; the counter exists so soaks can assert it
        /// stays 0.
        uint64_t stale_epoch_dispatches = 0;
    };

    /// Outcome of one epoch-fenced descriptor-table swap.
    struct TableSwap
    {
        uint64_t epoch = 0;           ///< the new table epoch
        uint32_t loads_committed = 0; ///< units now serving the epoch
        uint32_t loads_aborted = 0;   ///< killed mid-load, quarantined
        uint64_t done_cycle = 0;      ///< last committed load's landing
    };

    explicit SharedAccelQueue(const SharedQueueConfig &config = {});

    /**
     * Submit a batch of @p jobs jobs totalling @p service_cycles of
     * unit time, arriving at @p arrival_cycle on the shared timeline.
     * Jobs in a batch run back-to-back on one unit (the device model's
     * batching contract) and complete together at the fence.
     */
    Completion SubmitBatch(uint64_t arrival_cycle, uint32_t jobs,
                           uint64_t service_cycles);

    /// Single-job convenience wrapper.
    Completion
    Submit(uint64_t arrival_cycle, uint64_t service_cycles)
    {
        return SubmitBatch(arrival_cycle, 1, service_cycles);
    }

    /**
     * Submit one offloaded batch (see OffloadBatch). Differences from
     * the host-driven SubmitBatch:
     *
     *  - The device pulls work from a descriptor ring: one doorbell
     *    per batch (RoCC: a single instruction-pair; PCIe: the MMIO
     *    write) instead of per-job instruction pairs.
     *  - The frame-engine, deserializer and serializer stages overlap
     *    across the batch's calls (call k serializes while call k+1
     *    deserializes), so unit occupancy is the pipelined makespan —
     *    (n-1) * max-stage + one call through every stage — not the
     *    serial stage sum the blocking host fences force.
     *  - Completion is the egress frame / completion record itself:
     *    no block_for_*_completion fence occupies the unit. A PCIe
     *    placement instead delays the *requester* by the completion
     *    delivery latency, and pays the batch's DMA as one more
     *    pipeline stage.
     *
     * Watchdog budget, per-unit fault injection, fencing and
     * maintenance windows apply exactly as on SubmitBatch — offloaded
     * frames keep the whole health story.
     */
    Completion SubmitOffloadBatch(uint64_t arrival_cycle,
                                  const OffloadBatch &batch);

    Stats stats() const;
    const SharedQueueConfig &config() const { return config_; }

    // ---- health-domain hooks (driven by rpc/health.h via the
    //      serving runtime's deterministic replay) ----

    /**
     * Attach a fault injector to unit @p unit (nullptr detaches; not
     * owned). Each batch the unit serves draws one sample: a wedge (or
     * a stall beyond the watchdog budget) fires the watchdog — the
     * batch completes late and the completion reports watchdog_fired —
     * and a bounded stall inflates service time. Self-test verdicts for
     * the unit draw from the same injector (SampleUnitFaults), so an
     * injected permanent fault keeps failing self-tests until the
     * health policy fences the unit.
     */
    void SetUnitFaultInjector(uint32_t unit,
                              sim::FaultInjector *injector);

    /**
     * Occupy @p unit for @p cycles of health maintenance (state scrub +
     * self-test) starting when the unit is next free: live traffic
     * routes around it to the other units for the duration — the
     * dispatcher simply never finds it earliest-free.
     *
     * @return the cycle at which the maintenance window ends.
     */
    uint64_t BlockUnit(uint32_t unit, uint64_t cycles);

    /**
     * Fence @p unit out of arbitration (or lift the fence). The last
     * in-service unit cannot be fenced — a fleet must keep serving, so
     * the final survivor stays on indefinite probation instead.
     *
     * @return false when the fence was refused (last available unit).
     */
    bool SetUnitFenced(uint32_t unit, bool fenced);
    bool unit_fenced(uint32_t unit) const;
    /// Units currently in arbitration.
    uint32_t available_units() const;

    /**
     * Earliest cycle at which any in-service unit becomes free — the
     * contention horizon. A batch arriving at or before this cycle
     * will wait for a unit; one arriving after it finds a unit idle.
     * The serving runtime's replay arbiter uses this to decide whether
     * contending batches need weighted-fair scheduling or plain
     * arrival-order dispatch suffices. Thread-safe.
     */
    uint64_t earliest_free_cycle() const;

    /**
     * Mark @p unit as probation-state (reintegrated with reduced
     * trust) or clear the mark. A probation unit stays in arbitration
     * but the dispatcher biases against it by probation_bias_cycles —
     * it serves when it is the clearly better choice (or the only
     * one), not merely the momentarily earliest-free one.
     */
    void SetUnitProbation(uint32_t unit, bool probation);
    bool unit_probation(uint32_t unit) const;

    /// Draw @p n unit-fault samples from @p unit's injector (the
    /// self-test verdict source). @return how many faulted; 0 when no
    /// injector is attached (a unit with no fault source passes).
    uint32_t SampleUnitFaults(uint32_t unit, uint32_t n);

    // ---- epoch-fenced descriptor-table swap ----

    /**
     * Swap the fleet's descriptor tables to a new epoch: every
     * in-service unit streams the @p table_bytes image into its table
     * memory (priced at table_load_cycles_per_byte) starting when it is
     * next free at or after @p start_cycle — so in-flight batches
     * complete against the epoch they dispatched under, and new
     * dispatches fence behind the load (the unit's free time IS the
     * load commit point).
     *
     * Each unit's load draws one sample from its fault injector: a
     * kill or wedge mid-load aborts it — the unit burns half the load,
     * keeps its OLD epoch (a partially-written table never serves) and
     * is fenced out of arbitration for the health policy to quarantine.
     * Fail-closed with one exception: the fleet must keep serving, so
     * if every unit's load would abort, the last one pays the abort
     * and then a full clean reload, and commits.
     *
     * Units already fenced (or on a stale epoch from a previous aborted
     * load) are skipped — RetryTableLoad reintegrates them.
     */
    TableSwap BeginTableSwap(uint64_t start_cycle, uint64_t table_bytes);

    /**
     * Re-run the priced table load on a unit stranded on a stale epoch
     * by an aborted load (after the health lifecycle's scrub +
     * self-test, before the fence lifts). Draws a fault sample like
     * BeginTableSwap: a faulted retry burns half the load and leaves
     * the unit stale — the caller must keep it fenced.
     *
     * @return true when the load committed the current epoch.
     */
    bool RetryTableLoad(uint32_t unit, uint64_t start_cycle,
                        uint64_t table_bytes);

    /// Fleet-wide table epoch (0 until the first swap).
    uint64_t current_epoch() const;
    /// Epoch @p unit's table memory holds.
    uint64_t unit_epoch(uint32_t unit) const;

    /// Clear the timeline and counters (units all free at cycle 0);
    /// fences, probation marks and injectors are preserved.
    void Reset();

  private:
    /// Earliest-free arbitration over in-service units with the
    /// probation bias applied. Caller holds mu_.
    uint32_t PickUnitLocked();
    /// Common completion path: injected faults, watchdog, occupancy
    /// update and stats. @p occupancy_tail extends the unit's busy
    /// window past the service (the host-path fence);
    /// @p completion_tail delays only the requester's observed
    /// completion (PCIe completion delivery). Caller holds mu_.
    Completion FinishBatchLocked(uint32_t unit, uint64_t ready,
                                 uint32_t jobs, uint64_t service_cycles,
                                 uint64_t occupancy_tail,
                                 uint64_t completion_tail);

    /// Priced table-image stream onto one unit starting when it is
    /// next free at or after @p start_cycle. Caller holds mu_.
    /// @return the cycle the load (or half-load) ends.
    uint64_t LoadTableLocked(uint32_t unit, uint64_t start_cycle,
                             uint64_t load_cycles);

    SharedQueueConfig config_;
    mutable std::mutex mu_;
    /// Cycle at which each unit next becomes free.
    std::vector<uint64_t> unit_free_;
    /// Fleet-wide descriptor-table epoch; bumped by BeginTableSwap.
    uint64_t current_epoch_ = 0;
    /// Epoch each unit's table memory holds. A unit lagging
    /// current_epoch_ never wins arbitration (epoch fence).
    std::vector<uint64_t> unit_epoch_;
    /// Units fenced out of arbitration by the health policy.
    std::vector<bool> unit_fenced_;
    /// Units on reduced-trust probation (biased against, still serving).
    std::vector<bool> unit_probation_;
    /// Per-unit fault sources (not owned; nullptr = fault-free).
    std::vector<sim::FaultInjector *> unit_injectors_;
    Stats stats_;
};

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_SHARED_QUEUE_H
