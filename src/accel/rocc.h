/**
 * @file
 * The RoCC command interface (§4.1, §4.4.1, §4.5.2).
 *
 * The BOOM core dispatches custom RISC-V instructions to the accelerator
 * through the RoCC interface; each instruction carries two 64-bit
 * register operands. We model the instruction set as typed job
 * descriptors assembled from instruction pairs:
 *
 *   deser_assign_arena / ser_assign_arena   — §4.3 arena setup
 *   deser_info   rs1=ADT ptr, rs2=dest object ptr
 *   do_proto_deser rs1=serialized buffer ptr, rs2=(min_field, length)
 *   ser_info     rs1=hasbits offset, rs2=(max_field, min_field)
 *   do_proto_ser rs1=ADT ptr, rs2=C++ object ptr
 *   block_for_deser_completion / block_for_ser_completion
 *
 * Issuing instructions costs ones-of-cycles; batches of jobs can be in
 * flight before a single blocking fence, which is how the paper
 * amortizes offload overhead for tiny messages (§3.5).
 */
#ifndef PROTOACC_ACCEL_ROCC_H
#define PROTOACC_ACCEL_ROCC_H

#include <cstdint>

namespace protoacc::accel {

/// One queued deserialization (a deser_info + do_proto_deser pair).
struct DeserJob
{
    const uint8_t *adt = nullptr;   ///< ADT of the top-level type
    void *dest_obj = nullptr;       ///< user-allocated destination object
    const uint8_t *src = nullptr;   ///< serialized input buffer
    uint64_t src_len = 0;
    uint32_t min_field = 0;         ///< smallest defined field number
};

/// One queued serialization (a ser_info + do_proto_ser pair).
struct SerJob
{
    const uint8_t *adt = nullptr;  ///< ADT of the top-level type
    const void *src_obj = nullptr; ///< C++ object to serialize
    uint32_t hasbits_offset = 0;
    uint32_t min_field = 0;
    uint32_t max_field = 0;
};

/// Cycle cost of issuing one RoCC instruction pair ("ones-of-cycles",
/// §4.1).
inline constexpr uint32_t kRoccDispatchCycles = 2;

/// Cycle cost of the fence between CPU protobuf use and accelerator use
/// (§4.1: "only a fence instruction is required").
inline constexpr uint32_t kFenceCycles = 12;

}  // namespace protoacc::accel

#endif  // PROTOACC_ACCEL_ROCC_H
