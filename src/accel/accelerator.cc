#include "accel/accelerator.h"

namespace protoacc::accel {

namespace {

/// Modeled latency for the command router to detect a dead unit and
/// retire its abandoned job (timeout + status write, not data-dependent).
constexpr uint64_t kUnitFaultDetectCycles = 64;

/// With no watchdog, a permanently wedged FSM hangs until the command
/// router's coarse last-resort timeout abandons the job — long enough
/// to be an availability event, which is the watchdog's selling point.
constexpr uint64_t kWedgeHangCycles = 1'000'000;

/**
 * Run one job through the fault model shared by both fence loops.
 * @p run executes the job on its unit and returns its AccelStatus with
 * cycles in its out-param. Returns this job's total cycle charge and
 * sets @p st to the job's outcome.
 *
 * Fault handling:
 *  - kKill: job abandoned, command router retires it (kUnitFault);
 *  - kStall within the watchdog budget (or no watchdog): the drawn
 *    cycles are added and the job completes;
 *  - kWedge, or a stall beyond the budget, with the watchdog armed:
 *    the budget elapses, the unit is reset, and the job is replayed —
 *    jobs are idempotent (inputs untouched, outputs rewritten whole),
 *    so the replay is a clean run;
 *  - kWedge with no watchdog: the job hangs to the last-resort timeout
 *    and is abandoned (kUnitFault), surfacing only via fallback.
 */
template <typename RunFn>
uint64_t
RunJobWithFaults(RunFn &&run, sim::FaultInjector *injector,
                 const WatchdogConfig &watchdog, WatchdogStats *stats,
                 AccelStatus *st)
{
    sim::UnitFault fault;
    if (injector != nullptr)
        fault = injector->SampleUnitFault();

    if (fault.kind == sim::UnitFaultKind::kKill) {
        *st = AccelStatus::kUnitFault;
        return kUnitFaultDetectCycles;
    }

    const bool armed = watchdog.budget_cycles > 0;
    const bool wedged = fault.kind == sim::UnitFaultKind::kWedge;
    const bool stall_blown = fault.kind == sim::UnitFaultKind::kStall &&
                             armed &&
                             fault.stall_cycles > watchdog.budget_cycles;
    if (wedged && !armed) {
        *st = AccelStatus::kUnitFault;
        return kWedgeHangCycles;
    }
    if (wedged || stall_blown) {
        // Budget elapses, unit resets, job replays clean.
        const uint64_t penalty =
            watchdog.budget_cycles + watchdog.reset_cycles;
        ++stats->resets;
        ++stats->replayed_jobs;
        stats->wasted_cycles += penalty;
        uint64_t replay_cycles = 0;
        *st = run(&replay_cycles);
        return penalty + replay_cycles;
    }

    uint64_t job_cycles = 0;
    *st = run(&job_cycles);
    return job_cycles + fault.stall_cycles;
}

}  // namespace

ProtoAccelerator::ProtoAccelerator(sim::MemorySystem *memory,
                                   const AccelConfig &config)
    : config_(config),
      memory_(memory),
      deser_(std::make_unique<DeserializerUnit>(memory, config.deser)),
      ser_(std::make_unique<SerializerUnit>(memory, config.ser)),
      ops_(std::make_unique<OpsUnit>(memory, config.ops))
{}

void
ProtoAccelerator::DeserAssignArena(proto::Arena *arena)
{
    deser_->AssignArena(arena);
    // §7: the ops unit shares the deserialization arena (it constructs
    // the same kinds of objects).
    ops_->AssignArena(arena);
}

void
ProtoAccelerator::SerAssignArena(SerArena *arena)
{
    ser_->AssignArena(arena);
}

void
ProtoAccelerator::EnqueueDeser(const DeserJob &job)
{
    deser_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForDeserCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const DeserJob &job : deser_queue_) {
        AccelStatus st;
        total += RunJobWithFaults(
            [this, &job](uint64_t *c) { return deser_->Run(job, c); },
            fault_injector_, config_.watchdog, &watchdog_stats_, &st);
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    deser_queue_.clear();
    *cycles = total;
    return status;
}

void
ProtoAccelerator::EnqueueSer(const SerJob &job)
{
    ser_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForSerCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const SerJob &job : ser_queue_) {
        AccelStatus st;
        total += RunJobWithFaults(
            [this, &job](uint64_t *c) { return ser_->Run(job, c); },
            fault_injector_, config_.watchdog, &watchdog_stats_, &st);
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    ser_queue_.clear();
    ser_->ResetPipeline();  // the fence drains the pipeline
    *cycles = total;
    return status;
}

void
ProtoAccelerator::EnqueueOp(const OpsJob &job)
{
    ops_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForOpsCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const OpsJob &job : ops_queue_) {
        uint64_t job_cycles = 0;
        const AccelStatus st = ops_->Run(job, &job_cycles);
        total += job_cycles;
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    ops_queue_.clear();
    *cycles = total;
    return status;
}

SerJob
MakeSerJob(const AdtBuilder &adts, int msg_index,
           const proto::DescriptorPool &pool, const void *obj)
{
    const auto &desc = pool.message(msg_index);
    SerJob job;
    job.adt = adts.adt(msg_index);
    job.src_obj = obj;
    job.hasbits_offset = desc.layout().hasbits_offset;
    job.min_field = desc.min_field_number();
    job.max_field = desc.max_field_number();
    return job;
}

DeserJob
MakeDeserJob(const AdtBuilder &adts, int msg_index,
             const proto::DescriptorPool &pool, void *dest_obj,
             const uint8_t *src, size_t len)
{
    const auto &desc = pool.message(msg_index);
    DeserJob job;
    job.adt = adts.adt(msg_index);
    job.dest_obj = dest_obj;
    job.src = src;
    job.src_len = len;
    job.min_field = desc.min_field_number();
    return job;
}

}  // namespace protoacc::accel
