#include "accel/accelerator.h"

namespace protoacc::accel {

namespace {

/// Modeled latency for the command router to detect a dead unit and
/// retire its abandoned job (timeout + status write, not data-dependent).
constexpr uint64_t kUnitFaultDetectCycles = 64;

}  // namespace

ProtoAccelerator::ProtoAccelerator(sim::MemorySystem *memory,
                                   const AccelConfig &config)
    : config_(config),
      deser_(std::make_unique<DeserializerUnit>(memory, config.deser)),
      ser_(std::make_unique<SerializerUnit>(memory, config.ser)),
      ops_(std::make_unique<OpsUnit>(memory, config.ops))
{}

void
ProtoAccelerator::DeserAssignArena(proto::Arena *arena)
{
    deser_->AssignArena(arena);
    // §7: the ops unit shares the deserialization arena (it constructs
    // the same kinds of objects).
    ops_->AssignArena(arena);
}

void
ProtoAccelerator::SerAssignArena(SerArena *arena)
{
    ser_->AssignArena(arena);
}

void
ProtoAccelerator::EnqueueDeser(const DeserJob &job)
{
    deser_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForDeserCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const DeserJob &job : deser_queue_) {
        uint64_t job_cycles = 0;
        AccelStatus st;
        sim::UnitFault fault;
        if (fault_injector_ != nullptr)
            fault = fault_injector_->SampleUnitFault();
        if (fault.kind == sim::UnitFaultKind::kKill) {
            // The unit died mid-job: the destination object is left
            // untouched and the fence reports the failure.
            st = AccelStatus::kUnitFault;
            job_cycles = kUnitFaultDetectCycles;
        } else {
            st = deser_->Run(job, &job_cycles);
            job_cycles += fault.stall_cycles;
        }
        total += job_cycles;
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    deser_queue_.clear();
    *cycles = total;
    return status;
}

void
ProtoAccelerator::EnqueueSer(const SerJob &job)
{
    ser_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForSerCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const SerJob &job : ser_queue_) {
        uint64_t job_cycles = 0;
        AccelStatus st;
        sim::UnitFault fault;
        if (fault_injector_ != nullptr)
            fault = fault_injector_->SampleUnitFault();
        if (fault.kind == sim::UnitFaultKind::kKill) {
            st = AccelStatus::kUnitFault;
            job_cycles = kUnitFaultDetectCycles;
        } else {
            st = ser_->Run(job, &job_cycles);
            job_cycles += fault.stall_cycles;
        }
        total += job_cycles;
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    ser_queue_.clear();
    ser_->ResetPipeline();  // the fence drains the pipeline
    *cycles = total;
    return status;
}

void
ProtoAccelerator::EnqueueOp(const OpsJob &job)
{
    ops_queue_.push_back(job);
}

AccelStatus
ProtoAccelerator::BlockForOpsCompletion(uint64_t *cycles)
{
    uint64_t total = kFenceCycles;
    AccelStatus status = AccelStatus::kOk;
    for (const OpsJob &job : ops_queue_) {
        uint64_t job_cycles = 0;
        const AccelStatus st = ops_->Run(job, &job_cycles);
        total += job_cycles;
        if (st != AccelStatus::kOk && status == AccelStatus::kOk)
            status = st;
    }
    ops_queue_.clear();
    *cycles = total;
    return status;
}

SerJob
MakeSerJob(const AdtBuilder &adts, int msg_index,
           const proto::DescriptorPool &pool, const void *obj)
{
    const auto &desc = pool.message(msg_index);
    SerJob job;
    job.adt = adts.adt(msg_index);
    job.src_obj = obj;
    job.hasbits_offset = desc.layout().hasbits_offset;
    job.min_field = desc.min_field_number();
    job.max_field = desc.max_field_number();
    return job;
}

DeserJob
MakeDeserJob(const AdtBuilder &adts, int msg_index,
             const proto::DescriptorPool &pool, void *dest_obj,
             const uint8_t *src, size_t len)
{
    const auto &desc = pool.message(msg_index);
    DeserJob job;
    job.adt = adts.adt(msg_index);
    job.dest_obj = dest_obj;
    job.src = src;
    job.src_len = len;
    job.min_field = desc.min_field_number();
    return job;
}

}  // namespace protoacc::accel
