#include "accel/ops_unit.h"

#include <cstring>

#include "common/bits.h"
#include "proto/arena_string.h"
#include "proto/repeated.h"

namespace protoacc::accel {

using proto::ArenaString;
using proto::FieldType;
using proto::RepeatedField;
using proto::RepeatedPtrField;

const char *
MessageOpName(MessageOp op)
{
    switch (op) {
      case MessageOp::kClear: return "clear";
      case MessageOp::kMerge: return "merge";
      case MessageOp::kCopy: return "copy";
    }
    return "?";
}

OpsUnit::OpsUnit(sim::MemorySystem *memory, const OpsTiming &timing)
    : memory_(memory),
      timing_(timing),
      port_("ops", memory, sim::TlbConfig{}),
      adt_buffer_(timing.adt_buffer_entries, timing.adt_buffer_hit_cycles)
{}

void
OpsUnit::ResetStats()
{
    stats_ = OpsStats{};
    port_.ResetStats();
}

/// Per-job walk state: cycle counter, context depth, unit back-pointer.
struct OpsUnit::Walk
{
    OpsUnit *unit;
    uint64_t cycle = 0;
    uint32_t depth = 0;

    void Tick(uint64_t n) { cycle += n; }

    uint64_t
    AdtLoad(const uint8_t *addr, uint64_t size)
    {
        return unit->adt_buffer_.Access(addr)
                   ? unit->adt_buffer_.hit_cycles()
                   : unit->port_.Read(addr, size);
    }

    /// Stream-copy @p n bytes (read + posted write at copy width).
    void
    Copy(void *dst, const void *src, uint64_t n)
    {
        std::memcpy(dst, src, n);
        unit->port_.Read(src, n);
        unit->port_.Write(dst, n);
        Tick(CeilDiv(n, unit->timing_.copy_bytes_per_cycle));
        unit->stats_.bytes_copied += n;
    }

    void
    EnterSubmessage()
    {
        Tick(unit->timing_.submsg_context_switch_cycles);
        ++depth;
        if (depth > unit->timing_.on_chip_stack_depth) {
            ++unit->stats_.stack_spills;
            Tick(unit->timing_.stack_spill_cycles);
        }
    }
    void ExitSubmessage() { --depth; }

    AccelStatus ClearObject(AdtView adt, uint8_t *obj);
    AccelStatus MergeObject(AdtView adt, uint8_t *dst,
                            const uint8_t *src);
    ArenaString *CopyString(const ArenaString *src, ArenaString *dst);
    uint8_t *AllocObject(const AdtHeader &header);
};

AccelStatus
OpsUnit::Walk::ClearObject(AdtView adt, uint8_t *obj)
{
    // Clear re-uses the deserializer's default-instance copy datapath:
    // stream the type's default instance over the object, which resets
    // hasbits, scalar defaults and pointer slots in one pass. (The
    // software Clear keeps repeated containers allocated; the results
    // are indistinguishable through the message API.)
    Tick(AdtLoad(adt.base(), kAdtHeaderBytes));
    const AdtHeader header = adt.ReadHeader();
    const void *default_inst =
        reinterpret_cast<const void *>(header.default_instance_addr);
    Copy(obj, default_inst, header.object_size);
    return AccelStatus::kOk;
}

ArenaString *
OpsUnit::Walk::CopyString(const ArenaString *src, ArenaString *dst)
{
    const std::string_view payload =
        src == nullptr ? std::string_view() : src->view();
    if (dst == nullptr) {
        dst = ArenaString::Create(unit->arena_);
        ++unit->stats_.allocations;
        Tick(unit->timing_.alloc_cycles);
    }
    dst->Assign(unit->arena_, payload);
    unit->port_.Read(src, sizeof(*src));
    unit->port_.Write(dst, sizeof(*dst));
    if (!payload.empty())
        Copy(dst->data_ptr, payload.data(), payload.size());
    return dst;
}

uint8_t *
OpsUnit::Walk::AllocObject(const AdtHeader &header)
{
    auto *obj = static_cast<uint8_t *>(
        unit->arena_->Allocate(header.object_size, 8));
    ++unit->stats_.allocations;
    Tick(unit->timing_.alloc_cycles);
    Copy(obj,
         reinterpret_cast<const void *>(header.default_instance_addr),
         header.object_size);
    return obj;
}

AccelStatus
OpsUnit::Walk::MergeObject(AdtView adt, uint8_t *dst, const uint8_t *src)
{
    Tick(AdtLoad(adt.base(), kAdtHeaderBytes));
    const AdtHeader header = adt.ReadHeader();
    if (header.max_field == 0)
        return AccelStatus::kOk;

    const uint32_t range = header.max_field - header.min_field + 1;
    unit->port_.Read(src + header.hasbits_offset,
                     header.hasbits_words * 4);
    Tick(CeilDiv(range, unit->timing_.scan_bits_per_cycle));

    const uint32_t *src_bits = reinterpret_cast<const uint32_t *>(
        src + header.hasbits_offset);
    uint32_t *dst_bits =
        reinterpret_cast<uint32_t *>(dst + header.hasbits_offset);

    for (uint32_t number = header.min_field;
         number <= header.max_field; ++number) {
        const uint32_t index = number - header.min_field;
        if (((src_bits[index / 32] >> (index % 32)) & 1) == 0)
            continue;
        Tick(AdtLoad(adt.EntryAddr(number, header), kAdtEntryBytes));
        const AdtFieldEntry entry = adt.ReadEntry(number, header);
        if (!entry.defined())
            continue;
        ++unit->stats_.fields;
        Tick(unit->timing_.per_present_field_cycles);

        const uint8_t *src_slot = src + entry.offset;
        uint8_t *dst_slot = dst + entry.offset;
        const FieldType type = entry.type;
        const uint32_t width =
            type == FieldType::kMessage ? 8 : proto::InMemorySize(type);

        if (entry.repeated()) {
            if (type == FieldType::kMessage) {
                ++unit->stats_.submessages;
                const AdtView sub_adt(reinterpret_cast<const uint8_t *>(
                    entry.sub_adt_addr));
                const RepeatedPtrField *src_r;
                std::memcpy(&src_r, src_slot, sizeof(src_r));
                if (src_r == nullptr || src_r->size == 0)
                    continue;
                RepeatedPtrField *dst_r;
                std::memcpy(&dst_r, dst_slot, sizeof(dst_r));
                if (dst_r == nullptr) {
                    dst_r = RepeatedPtrField::Create(unit->arena_);
                    ++unit->stats_.allocations;
                    std::memcpy(dst_slot, &dst_r, sizeof(dst_r));
                    unit->port_.Write(dst_slot, sizeof(dst_r));
                }
                Tick(AdtLoad(sub_adt.base(), kAdtHeaderBytes));
                const AdtHeader sub_header = sub_adt.ReadHeader();
                for (uint32_t i = 0; i < src_r->size; ++i) {
                    EnterSubmessage();
                    uint8_t *elem = AllocObject(sub_header);
                    const AccelStatus st = MergeObject(
                        sub_adt, elem,
                        static_cast<const uint8_t *>(src_r->data[i]));
                    ExitSubmessage();
                    if (st != AccelStatus::kOk)
                        return st;
                    dst_r->Append(unit->arena_, elem);
                }
                unit->port_.Write(dst_r, sizeof(*dst_r));
            } else if (proto::IsBytesLike(type)) {
                const RepeatedPtrField *src_r;
                std::memcpy(&src_r, src_slot, sizeof(src_r));
                if (src_r == nullptr || src_r->size == 0)
                    continue;
                RepeatedPtrField *dst_r;
                std::memcpy(&dst_r, dst_slot, sizeof(dst_r));
                if (dst_r == nullptr) {
                    dst_r = RepeatedPtrField::Create(unit->arena_);
                    ++unit->stats_.allocations;
                    std::memcpy(dst_slot, &dst_r, sizeof(dst_r));
                    unit->port_.Write(dst_slot, sizeof(dst_r));
                }
                for (uint32_t i = 0; i < src_r->size; ++i) {
                    dst_r->Append(
                        unit->arena_,
                        CopyString(static_cast<const ArenaString *>(
                                       src_r->data[i]),
                                   nullptr));
                }
                unit->port_.Write(dst_r, sizeof(*dst_r));
            } else {
                const RepeatedField *src_r;
                std::memcpy(&src_r, src_slot, sizeof(src_r));
                if (src_r == nullptr || src_r->size == 0)
                    continue;
                RepeatedField *dst_r;
                std::memcpy(&dst_r, dst_slot, sizeof(dst_r));
                if (dst_r == nullptr) {
                    dst_r = RepeatedField::Create(unit->arena_);
                    ++unit->stats_.allocations;
                    std::memcpy(dst_slot, &dst_r, sizeof(dst_r));
                    unit->port_.Write(dst_slot, sizeof(dst_r));
                }
                // Bulk append: one streaming copy of the elements.
                const uint32_t ewidth = proto::InMemorySize(type);
                dst_r->Reserve(unit->arena_, dst_r->size + src_r->size,
                               ewidth);
                Copy(static_cast<char *>(dst_r->data) +
                         static_cast<size_t>(dst_r->size) * ewidth,
                     src_r->data,
                     static_cast<uint64_t>(src_r->size) * ewidth);
                dst_r->size += src_r->size;
                unit->port_.Write(dst_r, sizeof(*dst_r));
            }
        } else if (type == FieldType::kMessage) {
            ++unit->stats_.submessages;
            const AdtView sub_adt(
                reinterpret_cast<const uint8_t *>(entry.sub_adt_addr));
            const uint8_t *src_sub;
            std::memcpy(&src_sub, src_slot, sizeof(src_sub));
            if (src_sub == nullptr)
                continue;
            uint8_t *dst_sub;
            std::memcpy(&dst_sub, dst_slot, sizeof(dst_sub));
            Tick(AdtLoad(sub_adt.base(), kAdtHeaderBytes));
            if (dst_sub == nullptr) {
                dst_sub = AllocObject(sub_adt.ReadHeader());
                std::memcpy(dst_slot, &dst_sub, sizeof(dst_sub));
                unit->port_.Write(dst_slot, sizeof(dst_sub));
            }
            EnterSubmessage();
            const AccelStatus st = MergeObject(sub_adt, dst_sub, src_sub);
            ExitSubmessage();
            if (st != AccelStatus::kOk)
                return st;
        } else if (proto::IsBytesLike(type)) {
            const ArenaString *src_s;
            std::memcpy(&src_s, src_slot, sizeof(src_s));
            ArenaString *dst_s;
            std::memcpy(&dst_s, dst_slot, sizeof(dst_s));
            ArenaString *result = CopyString(src_s, dst_s);
            if (result != dst_s) {
                std::memcpy(dst_slot, &result, sizeof(result));
                unit->port_.Write(dst_slot, sizeof(result));
            }
        } else {
            unit->port_.Read(src_slot, width);
            std::memcpy(dst_slot, src_slot, width);
            unit->port_.Write(dst_slot, width);
        }
        // Hasbits writer: posted RMW of the destination presence bit.
        dst_bits[index / 32] |= 1u << (index % 32);
        unit->port_.Write(&dst_bits[index / 32], 4);
    }
    return AccelStatus::kOk;
}

AccelStatus
OpsUnit::Run(const OpsJob &job, uint64_t *cycles)
{
    PA_CHECK(job.adt != nullptr && job.dst_obj != nullptr);
    ++stats_.jobs;
    Walk walk;
    walk.unit = this;
    walk.Tick(2 * kRoccDispatchCycles);

    const AdtView adt(job.adt);
    AccelStatus status = AccelStatus::kOk;
    auto *dst = static_cast<uint8_t *>(job.dst_obj);
    const auto *src = static_cast<const uint8_t *>(job.src_obj);
    switch (job.op) {
      case MessageOp::kClear:
        status = walk.ClearObject(adt, dst);
        break;
      case MessageOp::kMerge:
        PA_CHECK(arena_ != nullptr && src != nullptr);
        status = walk.MergeObject(adt, dst, src);
        break;
      case MessageOp::kCopy:
        PA_CHECK(arena_ != nullptr && src != nullptr);
        status = walk.ClearObject(adt, dst);
        if (status == AccelStatus::kOk)
            status = walk.MergeObject(adt, dst, src);
        break;
    }
    stats_.cycles += walk.cycle;
    *cycles = walk.cycle;
    return status;
}

}  // namespace protoacc::accel
