#include "accel/deserializer.h"

#include <cstring>
#include <vector>

#include "accel/varint_unit.h"
#include "proto/parser.h"
#include "proto/utf8.h"
#include "common/bits.h"
#include "proto/arena_string.h"
#include "proto/repeated.h"
#include "proto/unknown_fields.h"

namespace protoacc::accel {

using proto::ArenaString;
using proto::FieldType;
using proto::RepeatedField;
using proto::RepeatedPtrField;
using proto::WireType;

const char *
AccelStatusName(AccelStatus status)
{
    switch (status) {
      case AccelStatus::kOk: return "ok";
      case AccelStatus::kMalformedInput: return "malformed input";
      case AccelStatus::kTruncated: return "truncated";
      case AccelStatus::kUnsupportedWireType: return "unsupported wire type";
      case AccelStatus::kOutputOverflow: return "output overflow";
      case AccelStatus::kInvalidUtf8: return "invalid utf-8";
      case AccelStatus::kResourceExhausted: return "resource exhausted";
      case AccelStatus::kDepthExceeded: return "depth exceeded";
      case AccelStatus::kUnitFault: return "unit fault";
    }
    return "?";
}

StatusCode
ToStatusCode(AccelStatus status)
{
    switch (status) {
      case AccelStatus::kOk: return StatusCode::kOk;
      case AccelStatus::kMalformedInput: return StatusCode::kMalformedInput;
      case AccelStatus::kTruncated: return StatusCode::kTruncated;
      case AccelStatus::kUnsupportedWireType:
        return StatusCode::kInvalidWireType;
      case AccelStatus::kOutputOverflow: return StatusCode::kOutputOverflow;
      case AccelStatus::kInvalidUtf8: return StatusCode::kInvalidUtf8;
      case AccelStatus::kResourceExhausted:
        return StatusCode::kResourceExhausted;
      case AccelStatus::kDepthExceeded: return StatusCode::kDepthExceeded;
      case AccelStatus::kUnitFault: return StatusCode::kAccelFault;
    }
    return StatusCode::kInternal;
}

DeserializerUnit::DeserializerUnit(sim::MemorySystem *memory,
                                   const DeserTiming &timing)
    : memory_(memory),
      timing_(timing),
      memloader_port_("deser.memloader", memory, sim::TlbConfig{}),
      adt_port_("deser.adt", memory, sim::TlbConfig{}),
      writer_port_("deser.writer", memory, sim::TlbConfig{}),
      adt_buffer_(timing.adt_buffer_entries, timing.adt_buffer_hit_cycles)
{}

void
DeserializerUnit::ResetStats()
{
    stats_ = DeserStats{};
    memloader_port_.ResetStats();
    adt_port_.ResetStats();
    writer_port_.ResetStats();
}

/**
 * Per-job execution state: memloader stream tracking, the cycle
 * counter, and the message-level metadata stack.
 */
struct DeserializerUnit::Context
{
    DeserializerUnit *unit;
    const DeserJob *job;

    uint64_t cycle = 0;          ///< FSM cycle counter for this job
    uint64_t consumed = 0;       ///< input bytes consumed so far
    uint64_t stream_base = 0;    ///< cycle when the first beat arrived
    uint64_t fetched_lines = 0;  ///< 64 B input lines charged so far

    /// §4.4.9 message-level metadata (one entry per nesting level).
    struct Frame
    {
        AdtView adt{nullptr};
        AdtHeader header;
        uint8_t *obj = nullptr;
        uint64_t end_offset = 0;  ///< input offset where payload ends
    };
    std::vector<Frame> stack;

    const uint8_t *in() const { return job->src + consumed; }
    const uint8_t *in_end(const Frame &f) const
    {
        return job->src + f.end_offset;
    }
    uint64_t
    remaining(const Frame &f) const
    {
        return f.end_offset - consumed;
    }

    void Tick(uint64_t n) { cycle += n; }

    /**
     * Account input-stream consumption: charge memory traffic for newly
     * touched 64 B lines (the memloader prefetches linearly behind the
     * first access) and enforce the 16 B/cycle consumer bound.
     */
    void
    Consume(uint64_t n)
    {
        consumed += n;
        const uint64_t need_lines = CeilDiv(consumed, 64);
        while (fetched_lines < need_lines) {
            unit->memloader_port_.Read(job->src + fetched_lines * 64, 64);
            ++fetched_lines;
        }
        const uint64_t bound =
            stream_base +
            CeilDiv(consumed, unit->timing_.stream_bytes_per_cycle);
        if (bound > cycle) {
            unit->stats_.stream_stall_cycles += bound - cycle;
            cycle = bound;
        }
    }

    /// typeInfo state: block on the 128-bit ADT entry load (§4.4.5),
    /// short-circuited by the ADT loader's response buffer when the
    /// entry was returned recently (batches of one type re-touch the
    /// same per-type entries on every message).
    AdtFieldEntry
    LoadEntry(const Frame &f, uint32_t number)
    {
        const uint8_t *addr = f.adt.EntryAddr(number, f.header);
        const uint64_t lat = unit->adt_buffer_.Access(addr)
                                 ? unit->adt_buffer_.hit_cycles()
                                 : unit->adt_port_.Read(addr,
                                                        kAdtEntryBytes);
        unit->stats_.adt_stall_cycles += lat;
        Tick(lat);
        return f.adt.ReadEntry(number, f.header);
    }

    /// ADT header load with the same response buffering.
    uint64_t
    LoadHeaderLatency(const uint8_t *adt_base)
    {
        return unit->adt_buffer_.Access(adt_base)
                   ? unit->adt_buffer_.hit_cycles()
                   : unit->adt_port_.Read(adt_base, kAdtHeaderBytes);
    }

    /// Hasbits writer (§4.4.4): posted read-modify-write, off the
    /// critical path — traffic is charged, the FSM does not stall.
    void
    WriteHasbit(const Frame &f, uint32_t number)
    {
        const uint32_t index = number - f.header.min_field;
        uint32_t *word = reinterpret_cast<uint32_t *>(
            f.obj + f.header.hasbits_offset + (index / 32) * 4);
        *word |= 1u << (index % 32);
        unit->writer_port_.Write(word, 4);
    }

    /// Posted store of @p n bytes at @p dst (copies real data).
    void
    Store(void *dst, const void *src, uint64_t n)
    {
        std::memcpy(dst, src, n);
        unit->writer_port_.Write(dst, n);
    }
};

namespace {

/// In-memory bit pattern for a decoded varint wire value (mirrors the
/// RTL's combinational zig-zag / truncation muxes, §4.4.6).
uint64_t
VarintToMemory(FieldType type, uint64_t wire)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
      case FieldType::kUint32:
        return static_cast<uint32_t>(wire);
      case FieldType::kSint32:
        return static_cast<uint32_t>(
            proto::ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldType::kSint64:
        return static_cast<uint64_t>(CombinationalZigZagDecode(wire));
      case FieldType::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

uint64_t
WireValueSize(WireType wt)
{
    return wt == WireType::kFixed32 ? 4 : 8;
}

}  // namespace

AccelStatus
DeserializerUnit::Run(const DeserJob &job, uint64_t *cycles)
{
    PA_CHECK(arena_ != nullptr);
    Context ctx;
    ctx.unit = this;
    ctx.job = &job;

    ++stats_.jobs;
    stats_.wire_bytes += job.src_len;

    // Resource bounds: an oversized buffer is rejected at dispatch,
    // before any streaming starts, mirroring the software parsers'
    // up-front payload check. The allocation budget and depth bound
    // below charge exactly what the software ParseCtl charges so all
    // three codecs keep identical accept/reject verdicts.
    if (limits_.max_payload_bytes != 0 &&
        job.src_len > limits_.max_payload_bytes) {
        ctx.Tick(2 * kRoccDispatchCycles);
        stats_.cycles += ctx.cycle;
        *cycles = ctx.cycle;
        return AccelStatus::kResourceExhausted;
    }
    uint64_t budget = limits_.max_alloc_bytes != 0 ? limits_.max_alloc_bytes
                                                   : UINT64_MAX;
    const size_t depth_limit =
        limits_.max_depth != 0
            ? limits_.max_depth
            : static_cast<size_t>(proto::kMaxParseDepth);

    // RoCC dispatch (deser_info + do_proto_deser) and first memloader
    // fill: the stream becomes available after the initial access
    // latency; afterwards consumption is bandwidth-bound.
    ctx.Tick(2 * kRoccDispatchCycles);
    const uint64_t first_lat = memloader_port_.Read(
        job.src, job.src_len < 64 ? job.src_len : 64);
    ctx.fetched_lines = 1;
    ctx.Tick(first_lat);
    ctx.stream_base = ctx.cycle;

    // Top-level frame: ADT pointer and destination object arrive via
    // the RoCC instruction operands; the header for the top-level type
    // is fetched once.
    Context::Frame top;
    top.adt = AdtView(job.adt);
    ctx.Tick(ctx.LoadHeaderLatency(job.adt));
    top.header = top.adt.ReadHeader();
    top.obj = static_cast<uint8_t *>(job.dest_obj);
    top.end_offset = job.src_len;
    ctx.stack.push_back(top);

    AccelStatus status = AccelStatus::kOk;

    while (!ctx.stack.empty()) {
        Context::Frame &frame = ctx.stack.back();
        if (ctx.consumed > frame.end_offset) {
            status = AccelStatus::kMalformedInput;
            break;
        }
        if (ctx.consumed == frame.end_offset) {
            // End of (sub-)message: pop the metadata stack (§4.4.9).
            ctx.Tick(timing_.stack_pop_cycles);
            if (ctx.stack.size() > timing_.on_chip_stack_depth) {
                // Refill a spilled entry from memory.
                ctx.Tick(timing_.stack_spill_cycles);
                writer_port_.Read(&frame, sizeof(frame));
            }
            ctx.stack.pop_back();
            continue;
        }

        // ---- parseKey state (§4.4.4) ----
        const uint64_t tag_offset = ctx.consumed;
        ctx.Tick(timing_.parse_key_cycles);
        const VarintDecodeResult key =
            CombinationalVarintDecode(ctx.in(), ctx.in_end(frame));
        if (key.length == 0) {
            status = AccelStatus::kMalformedInput;
            break;
        }
        const uint32_t number = proto::TagFieldNumber(key.value);
        const WireType wt = proto::TagWireType(key.value);
        ctx.Consume(key.length);
        ++stats_.fields;

        if (wt == WireType::kStartGroup || wt == WireType::kEndGroup) {
            status = AccelStatus::kUnsupportedWireType;
            break;
        }
        if (number == 0) {
            // Field number zero is reserved by the spec; the frontend
            // uses it internally as the end-of-message sentinel, so a
            // zero key on the wire is malformed input (§4.5.3).
            status = AccelStatus::kMalformedInput;
            break;
        }

        // Fields outside the defined range (schema evolution) are
        // skipped by wire type without an ADT request.
        const bool known = number >= frame.header.min_field &&
                           number <= frame.header.max_field &&
                           number != 0;
        AdtFieldEntry entry;
        if (known) {
            entry = ctx.LoadEntry(frame, number);  // typeInfo state
        }
        if (!known || !entry.defined()) {
            ++stats_.unknown_fields;
            ctx.Tick(timing_.unknown_skip_cycles);
            uint64_t skip = 0;
            switch (wt) {
              case WireType::kVarint: {
                const VarintDecodeResult v = CombinationalVarintDecode(
                    ctx.in(), ctx.in_end(frame));
                if (v.length == 0) {
                    status = AccelStatus::kMalformedInput;
                    break;
                }
                skip = v.length;
                break;
              }
              case WireType::kFixed32:
              case WireType::kFixed64:
                skip = WireValueSize(wt);
                break;
              case WireType::kLengthDelimited: {
                const VarintDecodeResult v = CombinationalVarintDecode(
                    ctx.in(), ctx.in_end(frame));
                if (v.length == 0) {
                    status = AccelStatus::kMalformedInput;
                    break;
                }
                skip = v.length + v.value;
                break;
              }
              default:
                status = AccelStatus::kUnsupportedWireType;
                break;
            }
            if (status != AccelStatus::kOk)
                break;
            if (skip > ctx.remaining(frame)) {
                status = AccelStatus::kTruncated;
                break;
            }
            ctx.Consume(skip);
            // Preserve the raw record (tag + value bytes, exactly as
            // seen) for schema-evolution round trips. The byte charge
            // matches the software parsers' ParseCtl::Charge(rec_len)
            // so accept/reject verdicts stay identical; the copy rides
            // the memloader stream already accounted by Consume() and
            // lands as posted stores.
            const uint64_t rec_len = ctx.consumed - tag_offset;
            if (rec_len > budget) {
                status = AccelStatus::kResourceExhausted;
                break;
            }
            budget -= rec_len;
            if (proto::UnknownFieldStore::Get(
                    frame.obj, frame.header.unknown_offset) == nullptr) {
                ++stats_.allocations;
                stats_.alloc_bytes += sizeof(proto::UnknownFieldStore);
            }
            proto::UnknownFieldStore *store =
                proto::UnknownFieldStore::GetOrCreate(
                    frame.obj, frame.header.unknown_offset, arena_,
                    nullptr);
            store->Add(arena_, number, job.src + tag_offset,
                       static_cast<uint32_t>(rec_len), nullptr);
            stats_.alloc_bytes += rec_len;
            writer_port_.Write(store, rec_len);
            continue;
        }

        // Hasbits writer runs in parallel with value handling.
        ctx.WriteHasbit(frame, number);

        // ---- value states, dispatched on detailed type info ----
        const FieldType type = entry.type;
        const WireType expect = proto::WireTypeForField(type);
        uint8_t *slot = frame.obj + entry.offset;

        if (type == FieldType::kMessage) {
            if (wt != WireType::kLengthDelimited) {
                status = AccelStatus::kUnsupportedWireType;
                break;
            }
            // §4.4.9 sub-message states: decode length, fetch the
            // sub-type's ADT header, allocate+initialize the object,
            // link the parent pointer, push the metadata stack.
            const VarintDecodeResult len =
                CombinationalVarintDecode(ctx.in(), ctx.in_end(frame));
            if (len.length == 0) {
                status = AccelStatus::kMalformedInput;
                break;
            }
            ctx.Consume(len.length);
            if (len.value > ctx.remaining(frame)) {
                status = AccelStatus::kTruncated;
                break;
            }
            ++stats_.submessages;
            ctx.Tick(timing_.submsg_setup_cycles);

            Context::Frame sub;
            sub.adt = AdtView(reinterpret_cast<const uint8_t *>(
                entry.sub_adt_addr));
            ctx.Tick(ctx.LoadHeaderLatency(sub.adt.base()));
            sub.header = sub.adt.ReadHeader();

            if (sub.header.object_size > budget) {
                status = AccelStatus::kResourceExhausted;
                break;
            }
            budget -= sub.header.object_size;

            uint8_t *sub_obj = static_cast<uint8_t *>(
                arena_->Allocate(sub.header.object_size, 8));
            ++stats_.allocations;
            stats_.alloc_bytes += sub.header.object_size;
            // Initialize from the default instance (streaming copy).
            const void *default_inst = reinterpret_cast<const void *>(
                sub.header.default_instance_addr);
            ctx.Tick(CeilDiv(sub.header.object_size,
                             timing_.stream_bytes_per_cycle));
            adt_port_.Read(default_inst, sub.header.object_size);
            ctx.Store(sub_obj, default_inst, sub.header.object_size);
            sub.obj = sub_obj;
            sub.end_offset = ctx.consumed + len.value;

            // Link into the parent: repeated sub-messages append to the
            // RepeatedPtrField, singular ones set the slot pointer.
            if (entry.repeated()) {
                RepeatedPtrField *r;
                std::memcpy(&r, slot, sizeof(r));
                if (r == nullptr) {
                    r = RepeatedPtrField::Create(arena_);
                    ++stats_.allocations;
                    ctx.Store(slot, &r, sizeof(r));
                }
                r->Append(arena_, sub_obj);
                writer_port_.Write(r, sizeof(*r));
            } else {
                ctx.Store(slot, &sub_obj, sizeof(sub_obj));
            }

            if (ctx.stack.size() >= timing_.on_chip_stack_depth) {
                // Spill the parent's metadata to memory (§3.8/§4.4.9).
                ++stats_.stack_spills;
                ctx.Tick(timing_.stack_spill_cycles);
                writer_port_.Write(&frame, sizeof(frame));
            }
            ctx.stack.push_back(sub);
            if (ctx.stack.size() > stats_.max_depth)
                stats_.max_depth = ctx.stack.size();
            // Depth bound: the software parser rejects a sub-message at
            // depth d when d > max_depth (top-level is depth 0); the
            // equivalent stack occupancy here is depth + 1 frames.
            if (ctx.stack.size() > depth_limit + 1) {
                status = AccelStatus::kDepthExceeded;
                break;
            }
            continue;
        }

        if (proto::IsBytesLike(type)) {
            if (wt != WireType::kLengthDelimited) {
                status = AccelStatus::kUnsupportedWireType;
                break;
            }
            // §4.4.7 string allocation and copy states.
            const VarintDecodeResult len =
                CombinationalVarintDecode(ctx.in(), ctx.in_end(frame));
            if (len.length == 0) {
                status = AccelStatus::kMalformedInput;
                break;
            }
            ctx.Consume(len.length);
            if (len.value > ctx.remaining(frame)) {
                status = AccelStatus::kTruncated;
                break;
            }
            ++stats_.string_fields;
            ctx.Tick(timing_.string_alloc_cycles);
            ArenaString *s = ArenaString::Create(arena_);
            ++stats_.allocations;
            stats_.alloc_bytes += sizeof(ArenaString);
            const std::string_view payload(
                reinterpret_cast<const char *>(ctx.in()), len.value);
            // §7 proto3 support: the UTF-8 checker sits beside the
            // copy path at stream width (no added cycles).
            if (entry.validate_utf8() &&
                !proto::IsValidUtf8(payload.data(), payload.size())) {
                status = AccelStatus::kInvalidUtf8;
                break;
            }
            if (len.value > budget) {
                status = AccelStatus::kResourceExhausted;
                break;
            }
            budget -= len.value;
            // The copy consumes from the memloader at stream width and
            // issues posted stores in the same cycles; Consume()'s
            // bandwidth bound is the copy's cycle cost.
            s->Assign(arena_, payload);
            if (!s->is_inline())
                stats_.alloc_bytes += len.value;
            ctx.Consume(len.value);
            writer_port_.Write(s->data_ptr, len.value);
            writer_port_.Write(s, sizeof(*s));

            if (entry.repeated()) {
                RepeatedPtrField *r;
                std::memcpy(&r, slot, sizeof(r));
                if (r == nullptr) {
                    r = RepeatedPtrField::Create(arena_);
                    ++stats_.allocations;
                    ctx.Store(slot, &r, sizeof(r));
                }
                r->Append(arena_, s);
                writer_port_.Write(r, sizeof(*r));
            } else {
                ctx.Store(slot, &s, sizeof(s));
            }
            continue;
        }

        // Scalar types. Accept packed encodings for repeated scalars.
        if (entry.repeated() && wt == WireType::kLengthDelimited) {
            const VarintDecodeResult len =
                CombinationalVarintDecode(ctx.in(), ctx.in_end(frame));
            if (len.length == 0) {
                status = AccelStatus::kMalformedInput;
                break;
            }
            ctx.Consume(len.length);
            if (len.value > ctx.remaining(frame)) {
                status = AccelStatus::kTruncated;
                break;
            }
            ++stats_.packed_fields;
            RepeatedField *r;
            std::memcpy(&r, slot, sizeof(r));
            if (r == nullptr) {
                r = RepeatedField::Create(arena_);
                ++stats_.allocations;
                ctx.Store(slot, &r, sizeof(r));
            }
            const uint32_t width = proto::InMemorySize(type);
            const uint64_t end = ctx.consumed + len.value;
            uint64_t elems = 0;
            while (ctx.consumed < end) {
                uint64_t bits;
                if (expect == WireType::kVarint) {
                    // One varint per cycle through the combinational
                    // decoder (§4.4.6).
                    const VarintDecodeResult v = CombinationalVarintDecode(
                        ctx.in(), job.src + end);
                    if (v.length == 0) {
                        status = AccelStatus::kMalformedInput;
                        break;
                    }
                    bits = VarintToMemory(type, v.value);
                    ctx.Consume(v.length);
                    ctx.Tick(1);
                } else {
                    const uint64_t vsz = WireValueSize(expect);
                    if (end - ctx.consumed < vsz) {
                        status = AccelStatus::kMalformedInput;
                        break;
                    }
                    bits = vsz == 4 ? proto::LoadFixed32(ctx.in())
                                    : proto::LoadFixed64(ctx.in());
                    ctx.Consume(vsz);
                    // Fixed elements stream at full memloader width.
                }
                if (width > budget) {
                    status = AccelStatus::kResourceExhausted;
                    break;
                }
                budget -= width;
                r->Append(arena_, &bits, width);
                ++elems;
            }
            if (status != AccelStatus::kOk)
                break;
            stats_.repeated_elements += elems;
            writer_port_.Write(r->data, elems * width);
            writer_port_.Write(r, sizeof(*r));
            continue;
        }

        // Singular scalar (or one element of an unpacked repeated).
        uint64_t bits;
        if (wt == WireType::kVarint) {
            const VarintDecodeResult v =
                CombinationalVarintDecode(ctx.in(), ctx.in_end(frame));
            if (v.length == 0) {
                status = AccelStatus::kMalformedInput;
                break;
            }
            bits = VarintToMemory(type, v.value);
            ctx.Consume(v.length);
            ++stats_.varint_fields;
        } else if (wt == WireType::kFixed32 || wt == WireType::kFixed64) {
            const uint64_t vsz = WireValueSize(wt);
            if (ctx.remaining(frame) < vsz) {
                status = AccelStatus::kTruncated;
                break;
            }
            bits = vsz == 4 ? proto::LoadFixed32(ctx.in())
                            : proto::LoadFixed64(ctx.in());
            ctx.Consume(vsz);
            ++stats_.fixed_fields;
        } else {
            status = AccelStatus::kUnsupportedWireType;
            break;
        }
        ctx.Tick(timing_.scalar_write_cycles);
        const uint32_t width = proto::InMemorySize(type);
        if (entry.repeated()) {
            // §4.4.8: unpacked repeated — tagged open-allocation region.
            if (width > budget) {
                status = AccelStatus::kResourceExhausted;
                break;
            }
            budget -= width;
            RepeatedField *r;
            std::memcpy(&r, slot, sizeof(r));
            if (r == nullptr) {
                r = RepeatedField::Create(arena_);
                ++stats_.allocations;
                ctx.Store(slot, &r, sizeof(r));
            }
            r->Append(arena_, &bits, width);
            ++stats_.repeated_elements;
            writer_port_.Write(r, sizeof(*r));
        } else {
            ctx.Store(slot, &bits, width);
        }
    }

    stats_.cycles += ctx.cycle;
    *cycles = ctx.cycle;
    return status;
}

}  // namespace protoacc::accel
