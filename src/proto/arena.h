/**
 * @file
 * Arena allocation (§2.3).
 *
 * A bump allocator over chained blocks, used both as the "software arena"
 * of upstream protobuf and — via accel::AccelArena — as the memory region
 * the accelerator allocates deserialized objects and serialized output
 * into (§4.3). Allocation is a pointer increment; objects are trivially
 * destructible by construction (ArenaString / RepeatedField are POD-ish),
 * so Reset() reclaims everything at once.
 */
#ifndef PROTOACC_PROTO_ARENA_H
#define PROTOACC_PROTO_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace protoacc::proto {

/**
 * Chained-block bump allocator. Not thread-safe.
 */
class Arena
{
  public:
    /// @param block_size granularity of backing allocations.
    explicit Arena(size_t block_size = kDefaultBlockSize);
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p size bytes aligned to @p align (a power of two, at
     * most 16). Memory is zero-initialized.
     */
    void *Allocate(size_t size, size_t align = 8);

    /// Allocate and default-construct a T. T must be trivially
    /// destructible: arenas never run destructors.
    template <typename T, typename... Args>
    T *
    New(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed");
        void *mem = Allocate(sizeof(T), alignof(T));
        return new (mem) T(std::forward<Args>(args)...);
    }

    /// Drop all allocations but keep the first block for reuse.
    void Reset();

    /// Total bytes handed out since construction/Reset.
    size_t bytes_used() const { return bytes_used_; }
    /// Total backing memory currently reserved.
    size_t bytes_reserved() const { return bytes_reserved_; }
    /// Number of Allocate calls since construction/Reset.
    uint64_t allocation_count() const { return allocation_count_; }
    /// Number of backing blocks currently held. A steady-state
    /// Reset()-reuse loop whose working set fits the first block stays
    /// at 1 forever (guarded by regression tests).
    size_t block_count() const { return blocks_.size(); }

    static constexpr size_t kDefaultBlockSize = 256 * 1024;

  private:
    void AddBlock(size_t min_size);

    struct Block
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
    };

    size_t block_size_;
    std::vector<Block> blocks_;
    char *head_ = nullptr;   ///< next free byte in the current block
    char *limit_ = nullptr;  ///< one past the end of the current block
    size_t bytes_used_ = 0;
    size_t bytes_reserved_ = 0;
    uint64_t allocation_count_ = 0;
};

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_ARENA_H
