#include "proto/wire_format.h"

#include <bit>

namespace protoacc::proto {

int
DecodeVarintSlow(const uint8_t *p, const uint8_t *end, uint64_t *value)
{
    // Word-at-a-time path: load 8 bytes, fold the 7-bit payload groups
    // together pairwise, then find the terminator (first byte with a
    // clear continuation bit). The fold is linear in the groups, so a
    // too-long fold is fixed up by masking to the real group count.
    // 9/10-byte encodings continue from the folded 56-bit prefix; only
    // reads near the end of the buffer fall through to the byte loop.
    if (end - p >= 8) {
        uint64_t chunk;
        std::memcpy(&chunk, p, sizeof(chunk));
        const uint64_t stops = ~chunk & 0x8080808080808080ull;
        uint64_t b = chunk & 0x7f7f7f7f7f7f7f7full;
        b = (b & 0x007f007f007f007full) |
            ((b & 0x7f007f007f007f00ull) >> 1);
        b = (b & 0x00003fff00003fffull) |
            ((b & 0x3fff00003fff0000ull) >> 2);
        b = (b & 0x000000000fffffffull) |
            ((b & 0x0fffffff00000000ull) >> 4);
        if (stops != 0) {
            const int n = (std::countr_zero(stops) >> 3) + 1;
            if (n < 8)
                b &= (1ull << (7 * n)) - 1;
            *value = b;
            return n;
        }
        // All 8 loaded bytes had continuation bits: byte 9 carries bits
        // 56..62 and byte 10 may only carry bit 63.
        if (end - p >= 9) {
            const uint8_t b8 = p[8];
            const uint64_t prefix =
                b | (static_cast<uint64_t>(b8 & 0x7f) << 56);
            if ((b8 & 0x80) == 0) {
                *value = prefix;
                return 9;
            }
            if (end - p >= 10 && (p[9] & 0x80) == 0) {
                if (p[9] > 1)
                    return 0;  // payload bits beyond bit 63
                *value = prefix | (static_cast<uint64_t>(p[9]) << 63);
                return 10;
            }
        }
        return 0;  // truncated, or longer than kMaxVarintBytes
    }
    uint64_t result = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarintBytes && p + i < end; ++i) {
        const uint8_t byte = p[i];
        // The 10th byte may only contribute bit 63: payload bits above
        // that cannot be represented and mark the input malformed.
        if (i == kMaxVarintBytes - 1 && (byte & 0x7f) > 1)
            return 0;
        result |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            *value = result;
            return i + 1;
        }
        shift += 7;
    }
    return 0;
}

const char *
FieldTypeName(FieldType type)
{
    switch (type) {
      case FieldType::kDouble: return "double";
      case FieldType::kFloat: return "float";
      case FieldType::kInt32: return "int32";
      case FieldType::kInt64: return "int64";
      case FieldType::kUint32: return "uint32";
      case FieldType::kUint64: return "uint64";
      case FieldType::kSint32: return "sint32";
      case FieldType::kSint64: return "sint64";
      case FieldType::kFixed32: return "fixed32";
      case FieldType::kFixed64: return "fixed64";
      case FieldType::kSfixed32: return "sfixed32";
      case FieldType::kSfixed64: return "sfixed64";
      case FieldType::kBool: return "bool";
      case FieldType::kEnum: return "enum";
      case FieldType::kString: return "string";
      case FieldType::kBytes: return "bytes";
      case FieldType::kMessage: return "message";
    }
    return "?";
}

WireType
WireTypeForField(FieldType type)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kInt64:
      case FieldType::kUint32:
      case FieldType::kUint64:
      case FieldType::kSint32:
      case FieldType::kSint64:
      case FieldType::kBool:
      case FieldType::kEnum:
        return WireType::kVarint;
      case FieldType::kDouble:
      case FieldType::kFixed64:
      case FieldType::kSfixed64:
        return WireType::kFixed64;
      case FieldType::kFloat:
      case FieldType::kFixed32:
      case FieldType::kSfixed32:
        return WireType::kFixed32;
      case FieldType::kString:
      case FieldType::kBytes:
      case FieldType::kMessage:
        return WireType::kLengthDelimited;
    }
    PA_CHECK(false);
}

bool
IsVarintType(FieldType type)
{
    return WireTypeForField(type) == WireType::kVarint;
}

bool
IsBytesLike(FieldType type)
{
    return type == FieldType::kString || type == FieldType::kBytes;
}

bool
IsFixedType(FieldType type)
{
    const WireType wt = WireTypeForField(type);
    return wt == WireType::kFixed32 || wt == WireType::kFixed64;
}

bool
IsZigZagType(FieldType type)
{
    return type == FieldType::kSint32 || type == FieldType::kSint64;
}

uint32_t
InMemorySize(FieldType type)
{
    switch (type) {
      case FieldType::kBool:
        return 1;
      case FieldType::kInt32:
      case FieldType::kUint32:
      case FieldType::kSint32:
      case FieldType::kFixed32:
      case FieldType::kSfixed32:
      case FieldType::kFloat:
      case FieldType::kEnum:
        return 4;
      case FieldType::kInt64:
      case FieldType::kUint64:
      case FieldType::kSint64:
      case FieldType::kFixed64:
      case FieldType::kSfixed64:
      case FieldType::kDouble:
        return 8;
      case FieldType::kString:
      case FieldType::kBytes:
      case FieldType::kMessage:
        return sizeof(void *);
    }
    PA_CHECK(false);
}

}  // namespace protoacc::proto
