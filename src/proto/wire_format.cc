#include "proto/wire_format.h"

namespace protoacc::proto {

const char *
FieldTypeName(FieldType type)
{
    switch (type) {
      case FieldType::kDouble: return "double";
      case FieldType::kFloat: return "float";
      case FieldType::kInt32: return "int32";
      case FieldType::kInt64: return "int64";
      case FieldType::kUint32: return "uint32";
      case FieldType::kUint64: return "uint64";
      case FieldType::kSint32: return "sint32";
      case FieldType::kSint64: return "sint64";
      case FieldType::kFixed32: return "fixed32";
      case FieldType::kFixed64: return "fixed64";
      case FieldType::kSfixed32: return "sfixed32";
      case FieldType::kSfixed64: return "sfixed64";
      case FieldType::kBool: return "bool";
      case FieldType::kEnum: return "enum";
      case FieldType::kString: return "string";
      case FieldType::kBytes: return "bytes";
      case FieldType::kMessage: return "message";
    }
    return "?";
}

WireType
WireTypeForField(FieldType type)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kInt64:
      case FieldType::kUint32:
      case FieldType::kUint64:
      case FieldType::kSint32:
      case FieldType::kSint64:
      case FieldType::kBool:
      case FieldType::kEnum:
        return WireType::kVarint;
      case FieldType::kDouble:
      case FieldType::kFixed64:
      case FieldType::kSfixed64:
        return WireType::kFixed64;
      case FieldType::kFloat:
      case FieldType::kFixed32:
      case FieldType::kSfixed32:
        return WireType::kFixed32;
      case FieldType::kString:
      case FieldType::kBytes:
      case FieldType::kMessage:
        return WireType::kLengthDelimited;
    }
    PA_CHECK(false);
}

bool
IsVarintType(FieldType type)
{
    return WireTypeForField(type) == WireType::kVarint;
}

bool
IsBytesLike(FieldType type)
{
    return type == FieldType::kString || type == FieldType::kBytes;
}

bool
IsFixedType(FieldType type)
{
    const WireType wt = WireTypeForField(type);
    return wt == WireType::kFixed32 || wt == WireType::kFixed64;
}

bool
IsZigZagType(FieldType type)
{
    return type == FieldType::kSint32 || type == FieldType::kSint64;
}

uint32_t
InMemorySize(FieldType type)
{
    switch (type) {
      case FieldType::kBool:
        return 1;
      case FieldType::kInt32:
      case FieldType::kUint32:
      case FieldType::kSint32:
      case FieldType::kFixed32:
      case FieldType::kSfixed32:
      case FieldType::kFloat:
      case FieldType::kEnum:
        return 4;
      case FieldType::kInt64:
      case FieldType::kUint64:
      case FieldType::kSint64:
      case FieldType::kFixed64:
      case FieldType::kSfixed64:
      case FieldType::kDouble:
        return 8;
      case FieldType::kString:
      case FieldType::kBytes:
      case FieldType::kMessage:
        return sizeof(void *);
    }
    PA_CHECK(false);
}

}  // namespace protoacc::proto
