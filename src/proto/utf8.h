/**
 * @file
 * UTF-8 validation (§7: "the only change needed for proto3 support in
 * our accelerator is adding support for UTF-8 validation of string
 * fields during deserialization").
 *
 * Validates RFC 3629 UTF-8 strictly: rejects overlong encodings,
 * surrogate code points (U+D800..U+DFFF), values above U+10FFFF,
 * truncated sequences and stray continuation bytes. In hardware this is
 * a combinational checker sitting beside the memloader's copy path
 * (16 B/cycle, no added latency); in software it is the hot per-byte
 * loop upstream protobuf runs for proto3 strings.
 */
#ifndef PROTOACC_PROTO_UTF8_H
#define PROTOACC_PROTO_UTF8_H

#include <cstddef>
#include <cstdint>

namespace protoacc::proto {

/// True if [data, data+size) is well-formed UTF-8.
inline bool
IsValidUtf8(const uint8_t *data, size_t size)
{
    size_t i = 0;
    while (i < size) {
        const uint8_t b0 = data[i];
        if (b0 < 0x80) {
            ++i;
            continue;
        }
        if (b0 < 0xc2) {
            // 0x80..0xbf: stray continuation; 0xc0/0xc1: overlong.
            return false;
        }
        if (b0 < 0xe0) {
            // Two bytes: U+0080..U+07FF.
            if (i + 1 >= size || (data[i + 1] & 0xc0) != 0x80)
                return false;
            i += 2;
            continue;
        }
        if (b0 < 0xf0) {
            // Three bytes: U+0800..U+FFFF minus surrogates.
            if (i + 2 >= size)
                return false;
            const uint8_t b1 = data[i + 1];
            const uint8_t b2 = data[i + 2];
            if ((b1 & 0xc0) != 0x80 || (b2 & 0xc0) != 0x80)
                return false;
            if (b0 == 0xe0 && b1 < 0xa0)
                return false;  // overlong
            if (b0 == 0xed && b1 >= 0xa0)
                return false;  // surrogate
            i += 3;
            continue;
        }
        if (b0 < 0xf5) {
            // Four bytes: U+10000..U+10FFFF.
            if (i + 3 >= size)
                return false;
            const uint8_t b1 = data[i + 1];
            const uint8_t b2 = data[i + 2];
            const uint8_t b3 = data[i + 3];
            if ((b1 & 0xc0) != 0x80 || (b2 & 0xc0) != 0x80 ||
                (b3 & 0xc0) != 0x80) {
                return false;
            }
            if (b0 == 0xf0 && b1 < 0x90)
                return false;  // overlong
            if (b0 == 0xf4 && b1 >= 0x90)
                return false;  // > U+10FFFF
            i += 4;
            continue;
        }
        return false;  // 0xf5..0xff: invalid lead byte
    }
    return true;
}

inline bool
IsValidUtf8(const char *data, size_t size)
{
    return IsValidUtf8(reinterpret_cast<const uint8_t *>(data), size);
}

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_UTF8_H
