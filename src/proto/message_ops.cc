#include "proto/message_ops.h"

#include <cstring>

namespace protoacc::proto {

void
ClearMessage(Message msg, CostSink *sink)
{
    if (sink != nullptr)
        sink->OnMessageBegin();
    const MessageDescriptor &desc = msg.descriptor();
    for (const auto &f : desc.fields()) {
        // Clear() drops the presence bit, resets scalar slots to their
        // defaults and empties (but keeps) repeated containers.
        msg.Clear(f);
        if (sink != nullptr)
            sink->OnFieldDispatch();
    }
    if (sink != nullptr) {
        sink->OnHasbitsAccess(
            static_cast<int>(desc.layout().hasbits_words));
        sink->OnMessageEnd();
    }
}

namespace {

void
MergeField(Message &dst, const Message &src, const FieldDescriptor &f,
           CostSink *sink)
{
    if (sink != nullptr)
        sink->OnFieldDispatch();

    if (f.repeated()) {
        const uint32_t n = src.RepeatedSize(f);
        for (uint32_t i = 0; i < n; ++i) {
            if (f.type == FieldType::kMessage) {
                Message elem = dst.AddRepeatedMessage(f);
                if (sink != nullptr)
                    sink->OnAlloc(
                        elem.descriptor().layout().object_size);
                MergeFrom(elem, src.GetRepeatedMessage(f, i), sink);
            } else if (IsBytesLike(f.type)) {
                const std::string_view s = src.GetRepeatedString(f, i);
                dst.AddRepeatedString(f, s);
                if (sink != nullptr) {
                    sink->OnAlloc(sizeof(ArenaString));
                    sink->OnMemcpy(s.size());
                }
            } else {
                const uint32_t width = InMemorySize(f.type);
                uint64_t bits = 0;
                std::memcpy(&bits, src.repeated_field(f)->at(i, width),
                            width);
                dst.AddRepeatedBits(f, bits);
                if (sink != nullptr)
                    sink->OnFixedCopy(static_cast<int>(width));
            }
        }
        return;
    }

    if (f.type == FieldType::kMessage) {
        // Present singular sub-messages merge recursively.
        Message sub_dst = dst.MutableMessage(f);
        if (sink != nullptr)
            sink->OnAlloc(sub_dst.descriptor().layout().object_size);
        MergeFrom(sub_dst, src.GetMessage(f), sink);
        return;
    }
    if (IsBytesLike(f.type)) {
        const std::string_view s = src.GetString(f);
        dst.SetString(f, s);
        if (sink != nullptr)
            sink->OnMemcpy(s.size());
        return;
    }
    dst.SetScalarBits(f, src.GetScalarBits(f));
    if (sink != nullptr)
        sink->OnFixedCopy(static_cast<int>(InMemorySize(f.type)));
}

}  // namespace

void
MergeFrom(Message dst, const Message &src, CostSink *sink)
{
    PA_CHECK(dst.valid() && src.valid());
    PA_CHECK_EQ(dst.descriptor().pool_index(),
                src.descriptor().pool_index());
    if (sink != nullptr)
        sink->OnMessageBegin();
    for (const auto &f : src.descriptor().fields()) {
        if (sink != nullptr)
            sink->OnHasbitsAccess(1);
        if (f.repeated()) {
            if (src.RepeatedSize(f) > 0)
                MergeField(dst, src, f, sink);
        } else if (src.Has(f)) {
            MergeField(dst, src, f, sink);
        }
    }
    if (sink != nullptr)
        sink->OnMessageEnd();
}

void
CopyFrom(Message dst, const Message &src, CostSink *sink)
{
    ClearMessage(dst, sink);
    MergeFrom(dst, src, sink);
}

bool
IsInitialized(const Message &msg)
{
    for (const auto &f : msg.descriptor().fields()) {
        if (f.label == Label::kRequired && !msg.Has(f))
            return false;
        if (f.type != FieldType::kMessage)
            continue;
        if (f.repeated()) {
            for (uint32_t i = 0; i < msg.RepeatedSize(f); ++i) {
                if (!IsInitialized(msg.GetRepeatedMessage(f, i)))
                    return false;
            }
        } else if (msg.Has(f)) {
            if (!IsInitialized(msg.GetMessage(f)))
                return false;
        }
    }
    return true;
}

}  // namespace protoacc::proto
