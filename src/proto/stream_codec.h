/**
 * @file
 * Incremental (chunked) protobuf decode/encode — the bounded-memory
 * streaming core under the wire-v4 stream frames (rpc/stream.h).
 *
 * Everything above this layer used to be request-sized: one message,
 * one contiguous buffer. A GB-scale message was therefore either a
 * memory-exhaustion vector or an unconditional kResourceExhausted.
 * PAPERS.md's HGum shows the accelerator-messaging shape for data that
 * does not fit on-chip: process the byte stream in fixed-budget chunks
 * and never materialize the whole message. This module is the software
 * half of that shape, built over the *existing* codec engines:
 *
 *  - StreamDecoder consumes wire bytes of one logical message in
 *    arbitrary-sized Feed() chunks. Complete top-level fields are
 *    delivered to a StreamSink as they finish — scalar and string
 *    fields as decoded values, message-typed fields parsed with the
 *    configured software engine (reference or table, the same entry
 *    points the whole-buffer path uses, so verdicts and modeled costs
 *    match) into a per-record scratch arena that is Reset() after each
 *    delivery. Only the incomplete tail of the current field is
 *    retained across Feed() calls, so peak memory is bounded by
 *    max_record_bytes + the largest chunk ever fed, never by the
 *    logical message size.
 *
 *  - StreamEncoder is the mirror: fields are appended one at a time
 *    (message-typed records serialized with the same engine) into a
 *    bounded staging buffer that Produce() drains in caller-sized
 *    chunks. Appending fields in non-decreasing field-number order
 *    (and repeated elements in sequence) yields wire bytes identical
 *    to a whole-buffer Serialize of the equivalent message — the
 *    byte-identity contract bench/stream_soak proves at GB scale.
 *
 * Both directions are resumable: decode state (partial-field tail,
 * running totals) and encode state (staging residue) persist across
 * calls, which is what lets the RPC stream layer suspend a transfer on
 * a closed credit window or a mid-stream fault and resume it later
 * without re-processing committed bytes.
 */
#ifndef PROTOACC_PROTO_STREAM_CODEC_H
#define PROTOACC_PROTO_STREAM_CODEC_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "proto/arena.h"
#include "proto/codec_generated.h"
#include "proto/message.h"
#include "proto/parser.h"

namespace protoacc::proto {

/// Memory bounds of one streaming (de)coder instance.
struct StreamCodecLimits
{
    /// Largest single top-level field (record) the decoder will buffer
    /// while waiting for its bytes to complete, and the largest record
    /// the encoder will stage. A field whose declared length exceeds
    /// this fails with kResourceExhausted — the per-record analogue of
    /// ParseLimits::max_payload_bytes.
    size_t max_record_bytes = 1u << 20;
};

/**
 * Receiver of decoded top-level fields. One callback per *complete*
 * field occurrence, in wire order. Returning anything but kOk aborts
 * the decode with that status (surfaced by Feed/Finish).
 */
class StreamSink
{
  public:
    virtual ~StreamSink() = default;

    /// A varint/fixed-width scalar top-level field (value in the
    /// field's in-memory bit pattern, exactly as Message stores it).
    virtual ParseStatus
    OnScalar(const FieldDescriptor &field, uint64_t bits)
    {
        (void)field;
        (void)bits;
        return ParseStatus::kOk;
    }

    /// A string/bytes top-level field. @p data points into the
    /// decoder's window and is valid only for the duration of the call.
    virtual ParseStatus
    OnString(const FieldDescriptor &field, std::string_view data)
    {
        (void)field;
        (void)data;
        return ParseStatus::kOk;
    }

    /**
     * A message-typed top-level field, parsed with the decoder's
     * engine into @p record. The record lives in the decoder's scratch
     * arena and is recycled after the callback returns — consume it
     * (fold, transform, re-encode), do not retain it.
     */
    virtual ParseStatus
    OnRecord(const FieldDescriptor &field, const Message &record)
    {
        (void)field;
        (void)record;
        return ParseStatus::kOk;
    }
};

/**
 * Chunked decoder of one logical message. Not thread-safe; one decoder
 * per in-flight stream.
 */
class StreamDecoder
{
  public:
    /**
     * @param pool      compiled descriptor pool;
     * @param type      pool index of the logical message type;
     * @param engine    software engine parsing message-typed fields
     *                  (kGenerated degrades to kTable: cost parity is
     *                  exact, and emitted codecs only cover whole
     *                  top-level schemas);
     * @param limits    per-record resource bounds (see ParseLimits);
     *                  max_depth/max_alloc_bytes apply to each record
     *                  parse; max_payload_bytes bounds the *total*
     *                  stream length when nonzero.
     * @param sink      field receiver (not owned; must outlive).
     * @param cost_sink optional cycle accounting (not owned).
     */
    StreamDecoder(const DescriptorPool &pool, int type,
                  SoftwareCodecEngine engine,
                  const StreamCodecLimits &stream_limits,
                  const ParseLimits &limits, StreamSink *sink,
                  CostSink *cost_sink = nullptr);

    /**
     * Consume @p len more wire bytes. Complete top-level fields are
     * delivered to the sink; the incomplete tail is retained. Returns
     * kOk while the stream remains well-formed; any other status is
     * terminal (further Feed calls return the same status).
     */
    ParseStatus Feed(const uint8_t *data, size_t len);

    /**
     * Declare end-of-stream. Fails with kTruncated when bytes of an
     * unfinished field are still pending. Terminal either way.
     */
    ParseStatus Finish();

    /// Total wire bytes consumed so far.
    uint64_t bytes_consumed() const { return bytes_consumed_; }
    /// Complete top-level fields delivered so far.
    uint64_t fields_delivered() const { return fields_delivered_; }
    /// High-water mark of the retained partial-field tail plus scratch
    /// arena — the decoder's contribution to the stream memory budget.
    size_t peak_buffered_bytes() const { return peak_buffered_; }
    /// Currently retained tail bytes.
    size_t buffered_bytes() const { return pending_.size(); }
    /// Terminal status (kOk while the stream is still healthy).
    ParseStatus status() const { return status_; }

  private:
    /// Try to consume complete fields from [p, end); returns the number
    /// of bytes consumed (a prefix). Sets status_ on malformed input.
    size_t ConsumeFields(const uint8_t *p, const uint8_t *end);

    /// Decode one complete field at [p, end). Returns bytes consumed,
    /// 0 when the field is still incomplete (wait for more data), or
    /// SIZE_MAX after setting status_ on malformed input / sink abort.
    size_t ConsumeOneField(const uint8_t *p, const uint8_t *end);

    const DescriptorPool &pool_;
    const MessageDescriptor &type_;
    SoftwareCodecEngine engine_;
    StreamCodecLimits stream_limits_;
    ParseLimits record_limits_;
    uint64_t max_total_bytes_ = 0;  ///< 0 = unbounded
    StreamSink *sink_;
    CostSink *cost_sink_;
    /// Scratch grows in small blocks (Reset keeps only the first) so
    /// peak_buffered_bytes() tracks the record actually in flight, not
    /// a fixed up-front reservation.
    static constexpr size_t kScratchBlockBytes = 1024;
    Arena scratch_{kScratchBlockBytes};
    std::vector<uint8_t> pending_;  ///< incomplete tail across Feeds
    uint64_t bytes_consumed_ = 0;
    uint64_t fields_delivered_ = 0;
    size_t peak_buffered_ = 0;
    ParseStatus status_ = ParseStatus::kOk;
    bool finished_ = false;
};

/**
 * Chunked encoder of one logical message: append fields one at a time,
 * drain the staging buffer in caller-sized chunks. Not thread-safe.
 */
class StreamEncoder
{
  public:
    StreamEncoder(SoftwareCodecEngine engine,
                  const StreamCodecLimits &stream_limits,
                  CostSink *cost_sink = nullptr);

    /// Append one varint/fixed scalar field occurrence.
    ParseStatus AppendScalar(const FieldDescriptor &field, uint64_t bits);

    /// Append one string/bytes field occurrence.
    ParseStatus AppendString(const FieldDescriptor &field,
                             std::string_view data);

    /**
     * Append one message-typed field occurrence: @p record is
     * serialized with the encoder's engine (identical bytes and cost
     * events to the whole-buffer serializer's nested-message path).
     * Fails with kResourceExhausted when the encoded record exceeds
     * max_record_bytes.
     */
    ParseStatus AppendRecord(const FieldDescriptor &field,
                             const Message &record);

    /// Drain up to @p cap staged bytes into @p out; returns the count.
    size_t Produce(uint8_t *out, size_t cap);

    /// Staged bytes not yet produced.
    size_t buffered_bytes() const { return staged_.size() - drained_; }
    /// High-water mark of the staging buffer (memory-budget input).
    size_t peak_buffered_bytes() const { return peak_buffered_; }
    /// Total bytes appended (staged) so far — the encoded stream size.
    uint64_t bytes_encoded() const { return bytes_encoded_; }
    uint64_t fields_appended() const { return fields_appended_; }

  private:
    void StageTag(const FieldDescriptor &field, WireType wt);
    void NoteStaged();

    SoftwareCodecEngine engine_;
    StreamCodecLimits stream_limits_;
    CostSink *cost_sink_;
    std::vector<uint8_t> staged_;
    size_t drained_ = 0;  ///< staged_ prefix already produced
    size_t peak_buffered_ = 0;
    uint64_t bytes_encoded_ = 0;
    uint64_t fields_appended_ = 0;
};

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_STREAM_CODEC_H
