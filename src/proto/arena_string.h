/**
 * @file
 * The in-memory string object for string/bytes fields.
 *
 * The paper's accelerator constructs objects "compatible with modern
 * versions of libstdc++" (§4.4.7) so that user code can read deserialized
 * strings directly. We reproduce that contract with an ABI-stable string
 * whose layout mirrors libstdc++'s std::string: {pointer, size,
 * union{inline buffer[16], capacity}} with a 15-byte small-string
 * optimization. The accelerator model (src/accel/deserializer.cc) builds
 * these objects field-by-field with raw stores, exactly as the RTL does,
 * and tests assert the result is indistinguishable from software-built
 * strings.
 */
#ifndef PROTOACC_PROTO_ARENA_STRING_H
#define PROTOACC_PROTO_ARENA_STRING_H

#include <cstdint>
#include <cstring>
#include <string_view>

#include "proto/arena.h"

namespace protoacc::proto {

/**
 * Arena-backed SSO string with libstdc++-like layout. Trivially
 * destructible (buffer memory is owned by the arena).
 */
struct ArenaString
{
    /// Maximum payload stored inline (libstdc++'s SSO capacity).
    static constexpr size_t kInlineCapacity = 15;

    char *data_ptr;
    uint64_t size;
    union {
        char inline_buf[kInlineCapacity + 1];
        uint64_t heap_capacity;
    };

    /// Construct an empty string in @p arena.
    static ArenaString *
    Create(Arena *arena)
    {
        auto *s = static_cast<ArenaString *>(
            arena->Allocate(sizeof(ArenaString), alignof(ArenaString)));
        s->data_ptr = s->inline_buf;
        s->size = 0;
        s->inline_buf[0] = '\0';
        return s;
    }

    /// Construct a string holding a copy of @p value.
    static ArenaString *
    Create(Arena *arena, std::string_view value)
    {
        ArenaString *s = Create(arena);
        s->Assign(arena, value);
        return s;
    }

    /// Replace contents with a copy of @p value.
    void
    Assign(Arena *arena, std::string_view value)
    {
        if (value.size() <= kInlineCapacity) {
            data_ptr = inline_buf;
        } else {
            // A grown string never shrinks back to inline storage; the
            // existing heap buffer is reused if large enough.
            const bool have_heap = data_ptr != inline_buf;
            if (!have_heap || heap_capacity < value.size()) {
                data_ptr = static_cast<char *>(
                    arena->Allocate(value.size() + 1, 8));
                heap_capacity = value.size();
            }
        }
        std::memcpy(data_ptr, value.data(), value.size());
        data_ptr[value.size()] = '\0';
        size = value.size();
    }

    std::string_view view() const { return {data_ptr, size}; }
    bool is_inline() const { return data_ptr == inline_buf; }
};

static_assert(sizeof(ArenaString) == 32,
              "ArenaString must match the libstdc++ std::string footprint");

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_ARENA_STRING_H
