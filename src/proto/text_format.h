/**
 * @file
 * Debug text rendering of messages (protobuf's DebugString analog).
 */
#ifndef PROTOACC_PROTO_TEXT_FORMAT_H
#define PROTOACC_PROTO_TEXT_FORMAT_H

#include <string>

#include "proto/message.h"

namespace protoacc::proto {

/// Render @p msg as indented `name: value` text (set fields only).
std::string DebugString(const Message &msg);

/**
 * Parse DebugString-style text (the textproto subset this library
 * emits: `name: value` lines, `name { ... }` sub-messages, repeated
 * fields as repeated entries, quoted strings with \xNN escapes) into
 * @p msg, merging into already-set fields.
 *
 * @param[out] error human-readable message on failure (may be null).
 * @return true on success.
 */
bool ParseTextFormat(std::string_view text, Message *msg,
                     std::string *error = nullptr);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_TEXT_FORMAT_H
