/**
 * @file
 * Whole-message operations: Clear, MergeFrom, CopyFrom, IsInitialized.
 *
 * These are the "other protobuf operations" of Figure 2 — merge, copy
 * and clear together consume 17.1% of fleet-wide C++ protobuf cycles,
 * and §7 identifies them as the natural next acceleration targets
 * ("re-using the hardware building blocks from serialization and
 * deserialization"). The software implementations here are the
 * functional reference for the accelerator's ops unit
 * (src/accel/ops_unit.h) and carry the same cost-instrumentation hooks
 * as the codec.
 */
#ifndef PROTOACC_PROTO_MESSAGE_OPS_H
#define PROTOACC_PROTO_MESSAGE_OPS_H

#include "proto/cost_sink.h"
#include "proto/message.h"

namespace protoacc::proto {

/// Clear every field of @p msg (presence bits, slots, repeated sizes).
void ClearMessage(Message msg, CostSink *sink = nullptr);

/**
 * proto2 merge semantics: singular scalars/strings from @p src
 * overwrite, present sub-messages merge recursively, repeated fields
 * append. @p src and @p dst must share a message type.
 */
void MergeFrom(Message dst, const Message &src, CostSink *sink = nullptr);

/// Clear @p dst then merge @p src into it.
void CopyFrom(Message dst, const Message &src, CostSink *sink = nullptr);

/// True when every `required` field is present, recursively (the
/// proto2 IsInitialized contract).
bool IsInitialized(const Message &msg);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_MESSAGE_OPS_H
