#include "proto/codec_table.h"

#include <cstring>
#include <memory>

namespace protoacc::proto {

namespace {

FieldOp
OpForType(FieldType type)
{
    switch (type) {
      case FieldType::kFloat:
      case FieldType::kFixed32:
      case FieldType::kSfixed32:
        return FieldOp::kFixed32;
      case FieldType::kDouble:
      case FieldType::kFixed64:
      case FieldType::kSfixed64:
        return FieldOp::kFixed64;
      case FieldType::kInt32:
      case FieldType::kEnum:
        return FieldOp::kInt32;
      case FieldType::kUint32:
        return FieldOp::kUint32;
      case FieldType::kInt64:
      case FieldType::kUint64:
        return FieldOp::kVarint64;
      case FieldType::kSint32:
        return FieldOp::kSint32;
      case FieldType::kSint64:
        return FieldOp::kSint64;
      case FieldType::kBool:
        return FieldOp::kBool;
      case FieldType::kString:
        return FieldOp::kString;
      case FieldType::kBytes:
        return FieldOp::kBytes;
      case FieldType::kMessage:
        return FieldOp::kMessage;
    }
    PA_CHECK(false);
}

CodecEntry
CompileEntry(const MessageDescriptor &msg, const FieldDescriptor &f)
{
    CodecEntry e;
    e.op = OpForType(f.type);
    e.number = f.number;
    e.offset = f.offset;
    e.hasbit_index = f.hasbit_index;
    e.mem_width = static_cast<uint8_t>(InMemorySize(f.type));
    e.wire_type = WireTypeForField(f.type);
    e.sub_table = f.type == FieldType::kMessage ? f.message_type : -1;
    e.field = &f;

    if (f.repeated())
        e.flags |= CodecEntry::kFlagRepeated;
    if (f.repeated() && f.packed)
        e.flags |= CodecEntry::kFlagPacked;
    if (f.type == FieldType::kString && msg.syntax() == Syntax::kProto3)
        e.flags |= CodecEntry::kFlagUtf8;

    const WireType tag_wt =
        f.length_delimited() ? WireType::kLengthDelimited : e.wire_type;
    std::memset(e.tag_bytes, 0, sizeof(e.tag_bytes));
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(MakeTag(f.number, tag_wt), buf);
    PA_CHECK_LE(n, static_cast<int>(sizeof(e.tag_bytes)));
    std::memcpy(e.tag_bytes, buf, n);
    e.tag_len = static_cast<uint8_t>(n);
    return e;
}

}  // namespace

CodecTableSet::CodecTableSet(const DescriptorPool &pool) : pool_(&pool)
{
    PA_CHECK(pool.compiled());
    tables_.resize(pool.message_count());
    for (size_t i = 0; i < pool.message_count(); ++i) {
        const MessageDescriptor &msg = pool.message(static_cast<int>(i));
        CodecTable &t = tables_[i];
        t.desc = &msg;
        t.hasbits_offset = msg.layout().hasbits_offset;
        t.cached_size_offset = msg.layout().cached_size_offset;
        t.object_size = msg.layout().object_size;
        t.entries.reserve(msg.field_count());
        for (const auto &f : msg.fields())
            t.entries.push_back(CompileEntry(msg, f));
    }
}

const CodecTableSet &
GetCodecTables(const DescriptorPool &pool)
{
    const CodecTableSet *cached = pool.codec_tables_cache();
    if (cached == nullptr) {
        pool.set_codec_tables_cache(
            std::make_shared<const CodecTableSet>(pool));
        cached = pool.codec_tables_cache();
    }
    return *cached;
}

}  // namespace protoacc::proto
