/**
 * @file
 * Random schema and message generation.
 *
 * Drives the property-based tests (round-trip, wire-compatibility,
 * accelerator-vs-software equivalence over thousands of random schemas)
 * and seeds the synthetic fleet model. All draws come from the
 * deterministic Rng so failures reproduce from a seed.
 */
#ifndef PROTOACC_PROTO_SCHEMA_RANDOM_H
#define PROTOACC_PROTO_SCHEMA_RANDOM_H

#include "common/rng.h"
#include "proto/message.h"

namespace protoacc::proto {

/// Knobs for random schema generation.
struct SchemaGenOptions
{
    int min_fields = 1;
    int max_fields = 12;
    /// Maximum sub-message nesting below the root type.
    int max_depth = 4;
    /// Probability that a field is a sub-message (decays with depth).
    double submessage_prob = 0.25;
    double repeated_prob = 0.2;
    /// Probability a repeated scalar field uses packed encoding.
    double packed_prob = 0.5;
    /// Maximum gap between consecutive field numbers (1 = contiguous).
    uint32_t max_field_number_gap = 4;
    /// Field numbers start in [1, max_start_number].
    uint32_t max_start_number = 8;
};

/**
 * Generate a random message type (with random sub-message types) into
 * @p pool. The caller compiles the pool afterwards.
 *
 * @return the pool index of the generated root type.
 */
int GenerateRandomSchema(DescriptorPool *pool, Rng *rng,
                         const SchemaGenOptions &opts,
                         const std::string &name_prefix = "M");

/// Knobs for random message population.
struct MessageGenOptions
{
    double field_present_prob = 0.7;
    uint32_t max_repeated_elems = 8;
    uint32_t max_string_len = 64;
    /// Probability a varint value is small (fits in 1-2 bytes).
    double small_varint_prob = 0.6;
    /// Sub-message nesting cap: below this depth message fields are
    /// left unset. Required for self-recursive schemas, where
    /// field_present_prob = 1.0 would otherwise recurse forever.
    uint32_t max_depth = 8;
};

/// Populate @p msg (and sub-messages) with random values.
void PopulateRandomMessage(Message msg, Rng *rng,
                           const MessageGenOptions &opts);

/// Random in-memory value (bit pattern) for a scalar field of @p type.
uint64_t RandomScalarBits(FieldType type, Rng *rng,
                          double small_varint_prob = 0.6);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_SCHEMA_RANDOM_H
