/**
 * @file
 * Registry and entry points for the schema-specialized generated codec
 * engine — the third software engine, alongside the reference
 * tree-walker (codec_reference.h) and the table interpreter
 * (serializer.h/parser.h).
 *
 * Generated codecs are ordinary C++ translation units emitted by
 * codec_gen.{h,cc} at build time (see tools/codec_gen_main.cc). Each
 * emitted TU registers one GeneratedPoolCodec per DescriptorPool it was
 * generated from, keyed by a structural fingerprint of the compiled
 * pool. At runtime, a pool built by the *same deterministic recipe*
 * (same schema, same Compile mode) hashes to the same fingerprint and
 * picks up its specialized codec; pools with no matching codec simply
 * resolve to nullptr and callers fall back to the table engine.
 *
 * The generated engine is wire- and verdict-identical to the other two
 * and emits the exact same CostSink event stream as the table engine,
 * so its modeled BOOM/Xeon cycles are unchanged — the win is host
 * wall-clock time (straight-line dispatch, constant tags, no checked
 * accessor layer).
 */
#ifndef PROTOACC_PROTO_CODEC_GENERATED_H
#define PROTOACC_PROTO_CODEC_GENERATED_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "proto/parser.h"

namespace protoacc::proto {

class Message;
class CostSink;
class DescriptorPool;

/// Selector for the three peer software codec engines.
enum class SoftwareCodecEngine : uint8_t {
    kReference = 0,  ///< seed interpreter (tree walk over descriptors)
    kTable = 1,      ///< flat-program interpreter (PR 1)
    kGenerated = 2,  ///< schema-specialized emitted C++ (this tier)
};

/// Short human name: "reference", "table", "generated".
const char *SoftwareCodecEngineName(SoftwareCodecEngine engine);

/**
 * One pool's worth of generated entry points. Instances live in
 * emitted translation units with static storage duration; the registry
 * stores pointers, never copies.
 *
 * All four entry points have table-engine-identical semantics
 * (including PA_CHECK contracts, limit handling, and the CostSink
 * event stream); `serialize` is a distinct function rather than
 * byte_size + serialize_to composed, because ByteSize runs the sizing
 * pass and Serialize must not run it twice.
 */
struct GeneratedPoolCodec
{
    /// Structural fingerprint of the compiled pool (SchemaFingerprint).
    uint64_t fingerprint;
    /// Generation-time label, e.g. "hpb:bench2" (diagnostics only).
    const char *name;
    /// Message count of the source pool (cheap sanity cross-check).
    int message_count;

    ParseStatus (*parse)(int msg_index, const uint8_t *data, size_t len,
                         Message *msg, CostSink *sink,
                         const ParseLimits *limits);
    size_t (*byte_size)(int msg_index, const Message &msg, CostSink *sink);
    size_t (*serialize_to)(int msg_index, const Message &msg, uint8_t *buf,
                           size_t cap, CostSink *sink);
    size_t (*serialize)(int msg_index, const Message &msg,
                        std::vector<uint8_t> *out, CostSink *sink);
};

/**
 * Structural fingerprint of a compiled pool: an FNV-1a hash over every
 * descriptor property the generated code specializes on (names,
 * numbers, types, labels, packedness, defaults, byte offsets, hasbit
 * indices, layout geometry, hasbits mode). Two pools with equal
 * fingerprints produce byte-identical generated code.
 *
 * The pool must be compiled.
 */
uint64_t SchemaFingerprint(const DescriptorPool &pool);

/// Register @p codec (first registration wins for a fingerprint;
/// duplicate fingerprints across generated TUs are expected when two
/// suites share a pool recipe). Called from static initializers.
void RegisterGeneratedCodec(const GeneratedPoolCodec *codec);

/// Static-initializer shim used by emitted code.
struct GeneratedCodecRegistrar
{
    explicit GeneratedCodecRegistrar(const GeneratedPoolCodec *codec)
    {
        RegisterGeneratedCodec(codec);
    }
};

/// Look up a codec by fingerprint; nullptr when none is linked in.
const GeneratedPoolCodec *FindGeneratedCodec(uint64_t fingerprint);

/**
 * Resolve (and cache on the pool) the generated codec for @p pool.
 * Returns nullptr when no linked-in codec matches the pool's
 * fingerprint. Like GetCodecTables, the first resolution is not
 * thread-safe; resolve once before sharing a pool across threads.
 */
const GeneratedPoolCodec *GetGeneratedCodec(const DescriptorPool &pool);

/// Number of registered generated codecs (diagnostics).
size_t GeneratedCodecCount();

// ---------------------------------------------------------------------
// Engine entry points, signature-compatible with the table engine's
// ParseFromBuffer / ByteSize / SerializeToBuffer / Serialize. All four
// PA_CHECK that a generated codec exists for the message's pool — call
// GetGeneratedCodec first when fallback is possible.
// ---------------------------------------------------------------------

ParseStatus GeneratedParseFromBuffer(const uint8_t *data, size_t len,
                                     Message *msg, CostSink *sink = nullptr,
                                     const ParseLimits *limits = nullptr);

size_t GeneratedByteSize(const Message &msg, CostSink *sink = nullptr);

size_t GeneratedSerializeToBuffer(const Message &msg, uint8_t *buf,
                                  size_t cap, CostSink *sink = nullptr);

std::vector<uint8_t> GeneratedSerialize(const Message &msg,
                                        CostSink *sink = nullptr);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_CODEC_GENERATED_H
