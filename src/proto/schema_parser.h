/**
 * @file
 * A .proto schema-language frontend (§2.1.1).
 *
 * "A protobuf user defines the contents of a message in a .proto file
 * written in the protobuf language, either proto2 or proto3. The
 * protobuf compiler (protoc) ingests .proto files and generates
 * language-specific code." ParseSchema is this repository's protoc
 * frontend: it parses proto2/proto3 message definitions into a
 * DescriptorPool, whose Compile() step then plays the code-generator
 * role (object layouts, default instances) and feeds ADT generation.
 *
 * Supported subset (everything the rest of the system supports):
 *   - `syntax = "proto2";` / `syntax = "proto3";`
 *   - message definitions, arbitrarily nested and mutually recursive
 *   - all scalar field types of Table 1, string/bytes, message fields
 *   - optional / required / repeated labels
 *   - enum definitions (fields typed by an enum resolve to kEnum)
 *   - field options: [packed = true|false], [default = <literal>]
 *   - line and block comments, `reserved` statements (ignored)
 *
 * Nested type names resolve innermost-scope-first, as in protoc.
 * Parsing is two-pass (declarations, then field type resolution) so
 * forward and recursive references work.
 */
#ifndef PROTOACC_PROTO_SCHEMA_PARSER_H
#define PROTOACC_PROTO_SCHEMA_PARSER_H

#include <string>
#include <string_view>

#include "proto/descriptor.h"

namespace protoacc::proto {

/// Outcome of ParseSchema.
struct SchemaParseResult
{
    bool ok = false;
    std::string error;  ///< human-readable message when !ok
    int line = 0;       ///< 1-based line of the error

    explicit operator bool() const { return ok; }
};

/**
 * Parse .proto text into @p pool. On success the pool holds one
 * message type per definition, named by its fully qualified dotted
 * path (e.g. "Outer.Inner"). The caller compiles the pool afterwards.
 *
 * @p pool must not already be compiled; on failure it may hold
 * partially added types and should be discarded.
 */
SchemaParseResult ParseSchema(std::string_view text,
                              DescriptorPool *pool);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_SCHEMA_PARSER_H
