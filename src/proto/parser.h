/**
 * @file
 * Software deserialization (§2.2): the inherently serial wire parser.
 *
 * Parsing walks the single input byte stream field-by-field: decode a key
 * varint, look up the field's schema entry, decode the value, write it
 * into the in-memory object — allocating strings, repeated-field storage
 * and sub-message objects on the way (the work the paper highlights as
 * making deserialization the harder direction). Unknown fields are
 * skipped by wire type, preserving proto2's schema-evolution behaviour.
 */
#ifndef PROTOACC_PROTO_PARSER_H
#define PROTOACC_PROTO_PARSER_H

#include <cstdint>

#include "common/status.h"
#include "proto/cost_sink.h"
#include "proto/message.h"

namespace protoacc::proto {

/// Outcome of a parse.
enum class ParseStatus {
    kOk,
    kMalformedVarint,
    kTruncated,
    kInvalidWireType,
    kDepthExceeded,
    kInvalidFieldNumber,
    /// proto3 string field containing malformed UTF-8 (§7).
    kInvalidUtf8,
    /// A ParseLimits bound tripped (payload size / alloc budget).
    kResourceExhausted,
};

const char *ParseStatusName(ParseStatus status);

/// Map into the stack-wide failure taxonomy (common/status.h).
StatusCode ToStatusCode(ParseStatus status);

/// Maximum sub-message nesting accepted by the software parser (upstream
/// protobuf's default recursion limit).
inline constexpr int kMaxParseDepth = 100;

/**
 * Parse the wire-format bytes [data, data+len) into @p msg, merging into
 * any already-set fields (proto2 merge semantics). Allocations go to the
 * message's arena. @p limits, when non-null, bounds input size and the
 * wire-derived allocation budget (kResourceExhausted on violation).
 */
ParseStatus ParseFromBuffer(const uint8_t *data, size_t len, Message *msg,
                            CostSink *sink = nullptr,
                            const ParseLimits *limits = nullptr);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_PARSER_H
