#include "proto/codec_reference.h"

#include <cstring>

#include "proto/utf8.h"

// The bodies below are the seed codec, unchanged: a per-field interpreter
// over FieldDescriptors using the checked Message accessor surface. Keep
// it semantically frozen — codec_differential_test.cc asserts the
// table-driven fast path matches it on wire bytes, parsed objects and
// cost-sink tallies.

namespace protoacc::proto {

namespace {

/// Cursor over the serialized input with cost instrumentation.
class Reader
{
  public:
    Reader(const uint8_t *p, const uint8_t *end, CostSink *sink)
        : p_(p), end_(end), sink_(sink)
    {}

    bool at_end() const { return p_ >= end_; }
    size_t remaining() const { return end_ - p_; }
    const uint8_t *pos() const { return p_; }
    CostSink *sink() const { return sink_; }

    bool
    ReadVarint(uint64_t *v, bool is_tag)
    {
        const int n = DecodeVarint(p_, end_, v);
        if (n == 0)
            return false;
        p_ += n;
        if (sink_ != nullptr) {
            if (is_tag)
                sink_->OnTagDecode(n);
            else
                sink_->OnVarintDecode(n);
        }
        return true;
    }

    bool
    ReadFixed32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = LoadFixed32(p_);
        p_ += 4;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(4);
        return true;
    }

    bool
    ReadFixed64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = LoadFixed64(p_);
        p_ += 8;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(8);
        return true;
    }

    bool
    Skip(size_t n)
    {
        if (remaining() < n)
            return false;
        p_ += n;
        return true;
    }

    /// Create a bounded sub-reader of @p n bytes and advance past them.
    bool
    Slice(size_t n, Reader *out)
    {
        if (remaining() < n)
            return false;
        *out = Reader(p_, p_ + n, sink_);
        p_ += n;
        return true;
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    CostSink *sink_;
};

/// Decode a varint wire value into the in-memory bit pattern for @p type.
uint64_t
VarintMemoryValue(FieldType type, uint64_t wire)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
        return static_cast<uint32_t>(wire);
      case FieldType::kUint32:
        return static_cast<uint32_t>(wire);
      case FieldType::kSint32:
        return static_cast<uint32_t>(
            ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldType::kSint64:
        return static_cast<uint64_t>(ZigZagDecode64(wire));
      case FieldType::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

/// Limit state for one parse; charges the exact quantities parser.cc's
/// ParseCtl charges so both software codecs keep identical verdicts.
struct ParseCtl
{
    uint64_t budget = UINT64_MAX;
    int max_depth = kMaxParseDepth;

    bool
    Charge(uint64_t n)
    {
        if (n > budget)
            return false;
        budget -= n;
        return true;
    }
};

ParseStatus ParsePayload(Reader &r, Message msg, int depth,
                         ParseCtl &ctl);

ParseStatus
SkipUnknown(Reader &r, WireType wt)
{
    switch (wt) {
      case WireType::kVarint: {
        uint64_t v;
        return r.ReadVarint(&v, false) ? ParseStatus::kOk
                                       : ParseStatus::kMalformedVarint;
      }
      case WireType::kFixed64:
        return r.Skip(8) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kFixed32:
        return r.Skip(4) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kLengthDelimited: {
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        return r.Skip(len) ? ParseStatus::kOk : ParseStatus::kTruncated;
      }
      case WireType::kStartGroup:
      case WireType::kEndGroup:
        // Groups are deprecated and unsupported (as in the paper).
        return ParseStatus::kInvalidWireType;
    }
    return ParseStatus::kInvalidWireType;
}

ParseStatus
ParseScalar(Reader &r, Message &msg, const FieldDescriptor &f, WireType wt,
            ParseCtl &ctl)
{
    uint64_t bits;
    switch (wt) {
      case WireType::kVarint: {
        uint64_t wire;
        if (!r.ReadVarint(&wire, false))
            return ParseStatus::kMalformedVarint;
        bits = VarintMemoryValue(f.type, wire);
        break;
      }
      case WireType::kFixed32: {
        uint32_t v;
        if (!r.ReadFixed32(&v))
            return ParseStatus::kTruncated;
        bits = v;
        break;
      }
      case WireType::kFixed64: {
        if (!r.ReadFixed64(&bits))
            return ParseStatus::kTruncated;
        break;
      }
      default:
        return ParseStatus::kInvalidWireType;
    }
    if (f.repeated()) {
        if (!ctl.Charge(InMemorySize(f.type)))
            return ParseStatus::kResourceExhausted;
        msg.AddRepeatedBits(f, bits);
    } else {
        msg.SetScalarBits(f, bits);
    }
    return ParseStatus::kOk;
}

ParseStatus
ParsePackedRepeated(Reader &r, Message &msg, const FieldDescriptor &f,
                    ParseCtl &ctl)
{
    uint64_t len;
    if (!r.ReadVarint(&len, false))
        return ParseStatus::kMalformedVarint;
    Reader body(nullptr, nullptr, nullptr);
    if (!r.Slice(len, &body))
        return ParseStatus::kTruncated;
    const WireType elem_wt = WireTypeForField(f.type);
    while (!body.at_end()) {
        const ParseStatus st = ParseScalar(body, msg, f, elem_wt, ctl);
        if (st != ParseStatus::kOk)
            return st;
    }
    return ParseStatus::kOk;
}

ParseStatus
ParseField(Reader &r, Message &msg, const FieldDescriptor &f, WireType wt,
           int depth, ParseCtl &ctl)
{
    if (r.sink() != nullptr)
        r.sink()->OnFieldDispatch();

    switch (f.type) {
      case FieldType::kString:
      case FieldType::kBytes: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        if (r.remaining() < len)
            return ParseStatus::kTruncated;
        const std::string_view s(
            reinterpret_cast<const char *>(r.pos()), len);
        // §7: proto3 validates string (not bytes) fields as UTF-8.
        if (f.type == FieldType::kString &&
            msg.descriptor().syntax() == Syntax::kProto3 &&
            !IsValidUtf8(s.data(), s.size())) {
            return ParseStatus::kInvalidUtf8;
        }
        if (!ctl.Charge(len))
            return ParseStatus::kResourceExhausted;
        if (r.sink() != nullptr) {
            // String construction: allocation plus payload copy.
            r.sink()->OnAlloc(len > ArenaString::kInlineCapacity
                                  ? len + sizeof(ArenaString)
                                  : sizeof(ArenaString));
            r.sink()->OnMemcpy(len);
        }
        if (f.repeated())
            msg.AddRepeatedString(f, s);
        else
            msg.SetString(f, s);
        r.Skip(len);
        return ParseStatus::kOk;
      }
      case FieldType::kMessage: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        Reader body(nullptr, nullptr, nullptr);
        if (!r.Slice(len, &body))
            return ParseStatus::kTruncated;
        const auto &sub_desc = msg.pool().message(f.message_type);
        if (!ctl.Charge(sub_desc.layout().object_size))
            return ParseStatus::kResourceExhausted;
        Message sub = f.repeated() ? msg.AddRepeatedMessage(f)
                                   : msg.MutableMessage(f);
        if (r.sink() != nullptr)
            r.sink()->OnAlloc(sub.descriptor().layout().object_size);
        return ParsePayload(body, sub, depth + 1, ctl);
      }
      default:
        break;
    }

    // Scalar types: accept both packed and unpacked encodings regardless
    // of the schema's packed option, as proto2 parsers must.
    if (f.repeated() && wt == WireType::kLengthDelimited &&
        WireTypeForField(f.type) != WireType::kLengthDelimited) {
        return ParsePackedRepeated(r, msg, f, ctl);
    }
    return ParseScalar(r, msg, f, wt, ctl);
}

ParseStatus
ParsePayload(Reader &r, Message msg, int depth, ParseCtl &ctl)
{
    if (depth > ctl.max_depth)
        return ParseStatus::kDepthExceeded;
    if (r.sink() != nullptr)
        r.sink()->OnMessageBegin();
    while (!r.at_end()) {
        const uint8_t *tag_start = r.pos();
        uint64_t tag;
        if (!r.ReadVarint(&tag, true))
            return ParseStatus::kMalformedVarint;
        const uint32_t number = TagFieldNumber(tag);
        const WireType wt = TagWireType(tag);
        if (number == 0)
            return ParseStatus::kInvalidFieldNumber;
        const FieldDescriptor *f =
            msg.descriptor().FindFieldByNumber(number);
        ParseStatus st;
        if (f == nullptr) {
            st = SkipUnknown(r, wt);
            if (st == ParseStatus::kOk) {
                // Schema evolution: preserve the validated record (raw
                // tag + value bytes) so re-serialization is lossless.
                const uint32_t rec_len =
                    static_cast<uint32_t>(r.pos() - tag_start);
                if (!ctl.Charge(rec_len))
                    return ParseStatus::kResourceExhausted;
                UnknownFieldStore *store =
                    UnknownFieldStore::GetOrCreate(
                        msg.raw(),
                        msg.descriptor().layout().unknown_offset,
                        msg.arena(), r.sink());
                store->Add(msg.arena(), number, tag_start, rec_len,
                           r.sink());
            }
        } else {
            st = ParseField(r, msg, *f, wt, depth, ctl);
        }
        if (st != ParseStatus::kOk)
            return st;
    }
    if (r.sink() != nullptr)
        r.sink()->OnMessageEnd();
    return ParseStatus::kOk;
}

// ---- Serializer ----

/// 64-bit value to put on the wire for a varint-typed field slot.
uint64_t
VarintWireValue(FieldType type, uint64_t bits)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
        // proto2 sign-extends negative int32/enum to 10-byte varints.
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(bits)));
      case FieldType::kSint32:
        return ZigZagEncode32(static_cast<int32_t>(bits));
      case FieldType::kSint64:
        return ZigZagEncode64(static_cast<int64_t>(bits));
      case FieldType::kBool:
        return bits != 0 ? 1 : 0;
      default:
        return bits;
    }
}

int
TagSize(uint32_t number)
{
    return VarintSize(MakeTag(number, WireType::kVarint));
}

/// Scalar value read out of a repeated-field element.
uint64_t
RepeatedElementBits(const Message &msg, const FieldDescriptor &f,
                    uint32_t i)
{
    const uint32_t width = InMemorySize(f.type);
    uint64_t bits = 0;
    std::memcpy(&bits, msg.repeated_field(f)->at(i, width), width);
    return bits;
}

size_t
ScalarValueSize(FieldType type, uint64_t bits, CostSink *sink)
{
    switch (WireTypeForField(type)) {
      case WireType::kVarint:
        return VarintSize(VarintWireValue(type, bits));
      case WireType::kFixed32:
        return 4;
      case WireType::kFixed64:
        return 8;
      default:
        PA_CHECK(false);
    }
    (void)sink;
}

size_t FieldByteSize(const Message &msg, const FieldDescriptor &f,
                     CostSink *sink);

size_t
MessagePayloadSize(const Message &msg, CostSink *sink)
{
    if (sink != nullptr)
        sink->OnByteSizeMessage();
    size_t total = 0;
    const MessageDescriptor &desc = msg.descriptor();
    for (const auto &f : desc.fields()) {
        if (f.repeated()) {
            if (msg.RepeatedSize(f) > 0)
                total += FieldByteSize(msg, f, sink);
        } else if (msg.Has(f)) {
            total += FieldByteSize(msg, f, sink);
        }
        if (sink != nullptr)
            sink->OnHasbitsAccess(1);
    }
    // Preserved unknown records re-emit verbatim; their size
    // contribution is the raw byte total (no per-record size events:
    // the length is a stored constant, not a computation).
    total += UnknownTotalBytes(msg.raw(), desc.layout().unknown_offset);
    msg.set_cached_size(static_cast<int32_t>(total));
    return total;
}

size_t
FieldByteSize(const Message &msg, const FieldDescriptor &f, CostSink *sink)
{
    if (sink != nullptr)
        sink->OnByteSizeField();
    const int tag_size = TagSize(f.number);

    if (!f.repeated()) {
        switch (f.type) {
          case FieldType::kString:
          case FieldType::kBytes: {
            const size_t len = msg.GetString(f).size();
            return tag_size + VarintSize(len) + len;
          }
          case FieldType::kMessage: {
            const Message sub = msg.GetMessage(f);
            const size_t len =
                sub.valid() ? MessagePayloadSize(sub, sink) : 0;
            return tag_size + VarintSize(len) + len;
          }
          default:
            return tag_size +
                   ScalarValueSize(f.type, msg.GetScalarBits(f), sink);
        }
    }

    const uint32_t n = msg.RepeatedSize(f);
    size_t total = 0;
    switch (f.type) {
      case FieldType::kString:
      case FieldType::kBytes:
        for (uint32_t i = 0; i < n; ++i) {
            const size_t len = msg.GetRepeatedString(f, i).size();
            total += tag_size + VarintSize(len) + len;
        }
        return total;
      case FieldType::kMessage:
        for (uint32_t i = 0; i < n; ++i) {
            const size_t len =
                MessagePayloadSize(msg.GetRepeatedMessage(f, i), sink);
            total += tag_size + VarintSize(len) + len;
        }
        return total;
      default:
        break;
    }
    size_t payload = 0;
    for (uint32_t i = 0; i < n; ++i) {
        payload +=
            ScalarValueSize(f.type, RepeatedElementBits(msg, f, i), sink);
    }
    if (f.packed)
        return tag_size + VarintSize(payload) + payload;
    return payload + static_cast<size_t>(n) * tag_size;
}

/**
 * Forward-order writer with cost instrumentation. The cursor only moves
 * forward; capacity was established by ByteSize.
 */
class Writer
{
  public:
    Writer(uint8_t *buf, size_t cap, CostSink *sink)
        : p_(buf), end_(buf + cap), sink_(sink)
    {}

    bool ok() const { return ok_; }
    size_t written(const uint8_t *start) const { return p_ - start; }

    void
    WriteTag(uint32_t number, WireType wt)
    {
        const int n = WriteVarintRaw(MakeTag(number, wt));
        if (sink_ != nullptr)
            sink_->OnTagEncode(n);
    }

    void
    WriteVarint(uint64_t v)
    {
        const int n = WriteVarintRaw(v);
        if (sink_ != nullptr)
            sink_->OnVarintEncode(n);
    }

    void
    WriteFixed32(uint32_t v)
    {
        if (!Ensure(4))
            return;
        StoreFixed32(v, p_);
        p_ += 4;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(4);
    }

    void
    WriteFixed64(uint64_t v)
    {
        if (!Ensure(8))
            return;
        StoreFixed64(v, p_);
        p_ += 8;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(8);
    }

    void
    WriteBytes(const void *data, size_t n)
    {
        if (!Ensure(n))
            return;
        std::memcpy(p_, data, n);
        p_ += n;
        if (sink_ != nullptr)
            sink_->OnMemcpy(n);
    }

    CostSink *sink() const { return sink_; }

  private:
    int
    WriteVarintRaw(uint64_t v)
    {
        uint8_t tmp[kMaxVarintBytes];
        const int n = EncodeVarint(v, tmp);
        if (!Ensure(n))
            return 0;
        std::memcpy(p_, tmp, n);
        p_ += n;
        return n;
    }

    bool
    Ensure(size_t n)
    {
        if (p_ + n > end_) {
            ok_ = false;
            return false;
        }
        return ok_;
    }

    uint8_t *p_;
    uint8_t *end_;
    CostSink *sink_;
    bool ok_ = true;
};

void SerializeField(const Message &msg, const FieldDescriptor &f,
                    Writer &w);

void
SerializePayload(const Message &msg, Writer &w)
{
    if (w.sink() != nullptr)
        w.sink()->OnMessageBegin();
    // Forward merge: preserved unknown records interleave with known
    // fields in ascending field-number order (stores are number-sorted,
    // stable), reproducing the input byte order for round trips.
    const UnknownFieldStore *u = msg.unknown_fields();
    uint32_t ucur = 0;
    for (const auto &f : msg.descriptor().fields()) {
        if (u != nullptr) {
            while (ucur < u->count() &&
                   u->record(ucur).number < f.number) {
                const UnknownRecord &rec = u->record(ucur++);
                w.WriteBytes(u->bytes_of(rec), rec.size);
            }
        }
        if (w.sink() != nullptr)
            w.sink()->OnHasbitsAccess(1);
        if (f.repeated()) {
            if (msg.RepeatedSize(f) > 0)
                SerializeField(msg, f, w);
        } else if (msg.Has(f)) {
            SerializeField(msg, f, w);
        }
    }
    if (u != nullptr) {
        while (ucur < u->count()) {
            const UnknownRecord &rec = u->record(ucur++);
            w.WriteBytes(u->bytes_of(rec), rec.size);
        }
    }
    if (w.sink() != nullptr)
        w.sink()->OnMessageEnd();
}

void
SerializeScalarValue(FieldType type, uint64_t bits, Writer &w)
{
    switch (WireTypeForField(type)) {
      case WireType::kVarint:
        w.WriteVarint(VarintWireValue(type, bits));
        break;
      case WireType::kFixed32:
        w.WriteFixed32(static_cast<uint32_t>(bits));
        break;
      case WireType::kFixed64:
        w.WriteFixed64(bits);
        break;
      default:
        PA_CHECK(false);
    }
}

void
SerializeField(const Message &msg, const FieldDescriptor &f, Writer &w)
{
    if (w.sink() != nullptr)
        w.sink()->OnFieldDispatch();
    const WireType wt = WireTypeForField(f.type);

    if (!f.repeated()) {
        switch (f.type) {
          case FieldType::kString:
          case FieldType::kBytes: {
            const std::string_view s = msg.GetString(f);
            w.WriteTag(f.number, WireType::kLengthDelimited);
            w.WriteVarint(s.size());
            w.WriteBytes(s.data(), s.size());
            return;
          }
          case FieldType::kMessage: {
            const Message sub = msg.GetMessage(f);
            w.WriteTag(f.number, WireType::kLengthDelimited);
            w.WriteVarint(sub.valid()
                              ? static_cast<uint64_t>(sub.cached_size())
                              : 0);
            if (sub.valid())
                SerializePayload(sub, w);
            return;
          }
          default:
            w.WriteTag(f.number, wt);
            SerializeScalarValue(f.type, msg.GetScalarBits(f), w);
            return;
        }
    }

    const uint32_t n = msg.RepeatedSize(f);
    switch (f.type) {
      case FieldType::kString:
      case FieldType::kBytes:
        for (uint32_t i = 0; i < n; ++i) {
            const std::string_view s = msg.GetRepeatedString(f, i);
            w.WriteTag(f.number, WireType::kLengthDelimited);
            w.WriteVarint(s.size());
            w.WriteBytes(s.data(), s.size());
        }
        return;
      case FieldType::kMessage:
        for (uint32_t i = 0; i < n; ++i) {
            const Message sub = msg.GetRepeatedMessage(f, i);
            w.WriteTag(f.number, WireType::kLengthDelimited);
            w.WriteVarint(static_cast<uint64_t>(sub.cached_size()));
            SerializePayload(sub, w);
        }
        return;
      default:
        break;
    }
    if (f.packed) {
        size_t payload = 0;
        for (uint32_t i = 0; i < n; ++i) {
            payload += ScalarValueSize(
                f.type, RepeatedElementBits(msg, f, i), nullptr);
        }
        w.WriteTag(f.number, WireType::kLengthDelimited);
        w.WriteVarint(payload);
        for (uint32_t i = 0; i < n; ++i)
            SerializeScalarValue(f.type, RepeatedElementBits(msg, f, i), w);
        return;
    }
    for (uint32_t i = 0; i < n; ++i) {
        w.WriteTag(f.number, wt);
        SerializeScalarValue(f.type, RepeatedElementBits(msg, f, i), w);
    }
}

}  // namespace

size_t
ReferenceByteSize(const Message &msg, CostSink *sink)
{
    PA_CHECK(msg.valid());
    return MessagePayloadSize(msg, sink);
}

size_t
ReferenceSerializeToBuffer(const Message &msg, uint8_t *buf, size_t cap,
                           CostSink *sink)
{
    const size_t size = ReferenceByteSize(msg, sink);
    if (size > cap)
        return 0;
    Writer w(buf, cap, sink);
    SerializePayload(msg, w);
    PA_CHECK(w.ok());
    const size_t written = w.written(buf);
    PA_CHECK_EQ(written, size);
    return written;
}

std::vector<uint8_t>
ReferenceSerialize(const Message &msg, CostSink *sink)
{
    const size_t size = ReferenceByteSize(msg, sink);
    std::vector<uint8_t> out(size);
    if (size == 0)
        return out;
    Writer w(out.data(), out.size(), sink);
    SerializePayload(msg, w);
    PA_CHECK(w.ok());
    PA_CHECK_EQ(w.written(out.data()), size);
    return out;
}

ParseStatus
ReferenceParseFromBuffer(const uint8_t *data, size_t len, Message *msg,
                         CostSink *sink, const ParseLimits *limits)
{
    PA_CHECK(msg != nullptr && msg->valid());
    ParseCtl ctl;
    if (limits != nullptr) {
        if (limits->max_payload_bytes != 0 &&
            len > limits->max_payload_bytes) {
            return ParseStatus::kResourceExhausted;
        }
        if (limits->max_alloc_bytes != 0)
            ctl.budget = limits->max_alloc_bytes;
        if (limits->max_depth != 0)
            ctl.max_depth = static_cast<int>(limits->max_depth);
    }
    Reader r(data, data + len, sink);
    return ParsePayload(r, *msg, 0, ctl);
}

}  // namespace protoacc::proto
