/**
 * @file
 * The retained tree-walking reference codec.
 *
 * This is the seed interpreter the table-driven fast path (codec_table.h,
 * parser.cc, serializer.cc) replaced on the hot entry points: it walks
 * FieldDescriptors through the checked Message accessors, looks fields up
 * per tag, and re-sizes nested messages with a full recursive ByteSize.
 * It is kept as the differential-testing oracle — the fast path must
 * produce byte-identical wire output, an equal parsed object, and equal
 * cost-sink tallies (tests/proto/codec_differential_test.cc) — and as
 * the baseline codec_gbench measures the fast path against.
 */
#ifndef PROTOACC_PROTO_CODEC_REFERENCE_H
#define PROTOACC_PROTO_CODEC_REFERENCE_H

#include <cstdint>
#include <vector>

#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::proto {

/// Reference ByteSize: recursive sizing pass caching sub-message sizes.
size_t ReferenceByteSize(const Message &msg, CostSink *sink = nullptr);

/// Reference serializer (ByteSize pass included), into @p buf.
size_t ReferenceSerializeToBuffer(const Message &msg, uint8_t *buf,
                                  size_t cap, CostSink *sink = nullptr);

/// Reference serializer returning a fresh buffer.
std::vector<uint8_t> ReferenceSerialize(const Message &msg,
                                        CostSink *sink = nullptr);

/// Reference parser: per-tag descriptor lookup, accessor-based stores.
/// @p limits, when non-null, applies the same payload/alloc/depth bounds
/// as the table parser (verdicts stay identical across codecs).
ParseStatus ReferenceParseFromBuffer(const uint8_t *data, size_t len,
                                     Message *msg,
                                     CostSink *sink = nullptr,
                                     const ParseLimits *limits = nullptr);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_CODEC_REFERENCE_H
