/**
 * @file
 * Proto2 wire-format primitives (§2.1.2 of the paper).
 *
 * Implements varint encode/decode, zig-zag transforms, field tags
 * (key = field_number << 3 | wire_type) and little-endian fixed-width
 * copies. These free functions are shared by the software codec
 * (src/proto/serializer.cc, parser.cc) and the accelerator model's
 * combinational varint unit (src/accel/varint_unit.h), guaranteeing both
 * paths agree on the byte-level format.
 */
#ifndef PROTOACC_PROTO_WIRE_FORMAT_H
#define PROTOACC_PROTO_WIRE_FORMAT_H

#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::proto {

/// Scalar and composite field types of the proto2 language (Table 1).
enum class FieldType : uint8_t {
    kDouble,
    kFloat,
    kInt32,
    kInt64,
    kUint32,
    kUint64,
    kSint32,
    kSint64,
    kFixed32,
    kFixed64,
    kSfixed32,
    kSfixed64,
    kBool,
    kEnum,
    kString,
    kBytes,
    kMessage,
};

/// Number of distinct FieldType values.
inline constexpr int kNumFieldTypes = 17;

/// Human-readable name of a field type (matches .proto spelling).
const char *FieldTypeName(FieldType type);

/// The three-bit wire types of the proto2 encoding. Groups are
/// deprecated upstream and unsupported here (as in the paper).
enum class WireType : uint8_t {
    kVarint = 0,
    kFixed64 = 1,
    kLengthDelimited = 2,
    kStartGroup = 3,
    kEndGroup = 4,
    kFixed32 = 5,
};

/// Maximum encoded size of a 64-bit varint.
inline constexpr int kMaxVarintBytes = 10;

/// Largest field number permitted by the proto2 spec (2^29 - 1).
inline constexpr uint32_t kMaxFieldNumber = (1u << 29) - 1;

/// Wire type used for a non-packed field of @p type.
WireType WireTypeForField(FieldType type);

/// True for the varint-encoded scalar types ({s,u}int{32,64}, int{32,64},
/// enum, bool) -- the "varint-like" class of Table 1.
bool IsVarintType(FieldType type);

/// True for string/bytes (the "bytes-like" class of Table 1).
bool IsBytesLike(FieldType type);

/// True for types encoded as fixed 32- or 64-bit little-endian values.
bool IsFixedType(FieldType type);

/// True for the zig-zag-transformed types sint32/sint64.
bool IsZigZagType(FieldType type);

/// Width in bytes of the in-memory C++ scalar for @p type (pointer-sized
/// for string/bytes/message).
uint32_t InMemorySize(FieldType type);

/// Build a wire-format tag from field number and wire type.
inline uint32_t
MakeTag(uint32_t field_number, WireType wire_type)
{
    return (field_number << 3) | static_cast<uint32_t>(wire_type);
}

inline uint32_t
TagFieldNumber(uint64_t tag)
{
    return static_cast<uint32_t>(tag >> 3);
}

inline WireType
TagWireType(uint64_t tag)
{
    return static_cast<WireType>(tag & 0x7);
}

/// Encoded size in bytes of @p value as a varint (1..10).
inline int
VarintSize(uint64_t value)
{
    // Each output byte carries 7 payload bits; `| 1` folds the zero case
    // into the general clz-based formula without a branch.
    return static_cast<int>(CeilDiv(SignificantBits(value | 1), 7));
}

/**
 * Encode @p value as a varint into @p out (which must have room for
 * kMaxVarintBytes).
 *
 * Longer values take a branchless spread -- the exact inverse of
 * DecodeVarint's word-at-a-time fold -- and store a whole word; the
 * kMaxVarintBytes contract makes the 8-byte store safe. Force-inlined:
 * encoding is a handful of ALU ops either way, so a call would cost
 * more than the body.
 *
 * @return the number of bytes written.
 */
[[gnu::always_inline]] inline int
EncodeVarint(uint64_t value, uint8_t *out)
{
    if (value < 0x80) [[likely]] {  // 1 byte: most tags and small values
        out[0] = static_cast<uint8_t>(value);
        return 1;
    }
    if (value < 0x4000) {  // 2 bytes
        out[0] = static_cast<uint8_t>(value) | 0x80;
        out[1] = static_cast<uint8_t>(value >> 7);
        return 2;
    }
    // Deposit the low 56 bits into the low 7 bits of each output byte;
    // little-endian byte order matches the decoder's word load.
    const int n = VarintSize(value);
    uint64_t x = value;
    x = ((x & 0x00ffffff'f0000000ull) << 4) | (x & 0x0fffffffull);
    x = ((x & 0x0fffc000'0fffc000ull) << 2) |
        (x & 0x00003fff'00003fffull);
    x = ((x & 0x3f803f80'3f803f80ull) << 1) |
        (x & 0x007f007f'007f007full);
    if (n <= 8) {
        x |= ~(~0ull << (8 * (n - 1))) & 0x80808080'80808080ull;
        std::memcpy(out, &x, sizeof(x));
        return n;
    }
    // 9/10-byte tail: all eight spread bytes continue, the rest of the
    // value (bits 56..63) goes byte-at-a-time.
    x |= 0x80808080'80808080ull;
    std::memcpy(out, &x, sizeof(x));
    const uint64_t rest = value >> 56;
    if (rest < 0x80) {
        out[8] = static_cast<uint8_t>(rest);
        return 9;
    }
    out[8] = static_cast<uint8_t>(rest) | 0x80;
    out[9] = static_cast<uint8_t>(rest >> 7);
    return 10;
}

/// Out-of-line tail of DecodeVarint for the >= 3-byte / near-end cases.
int DecodeVarintSlow(const uint8_t *p, const uint8_t *end, uint64_t *value);

/**
 * Decode a varint from [@p p, @p end).
 *
 * The 1- and 2-byte encodings (the overwhelmingly common case in fleet
 * traffic, §3) decode branch-minimally inline, and 3/4-byte encodings —
 * the next-most-common class (timestamps, sizes, ids) — fold a single
 * 32-bit load inline rather than paying the out-of-line 8-byte fold.
 * Longer encodings and reads near the end of the buffer take the
 * out-of-line tail. 10-byte varints whose final byte carries payload
 * bits above bit 63 are rejected as malformed (they cannot round-trip
 * through a 64-bit value).
 *
 * @param[out] value the decoded 64-bit value.
 * @return the number of bytes consumed, or 0 on malformed/truncated input.
 */
inline int
DecodeVarint(const uint8_t *p, const uint8_t *end, uint64_t *value)
{
    if (p < end && p[0] < 0x80) {
        *value = p[0];
        return 1;
    }
    if (end - p >= 2 && p[1] < 0x80) {
        *value = (p[0] & 0x7fu) | (static_cast<uint64_t>(p[1]) << 7);
        return 2;
    }
    if (end - p >= 4) {
        // Bytes 0 and 1 are known continuations here; one 32-bit load
        // covers the 3- and 4-byte terminators.
        uint32_t chunk;
        std::memcpy(&chunk, p, sizeof(chunk));
        if ((chunk & 0x00800000u) == 0) {  // byte 2 terminates
            *value = (chunk & 0x7fu) | ((chunk >> 1) & 0x3f80u) |
                     ((chunk >> 2) & 0x1fc000u);
            return 3;
        }
        if ((chunk & 0x80000000u) == 0) {  // byte 3 terminates
            *value = (chunk & 0x7fu) | ((chunk >> 1) & 0x3f80u) |
                     ((chunk >> 2) & 0x1fc000u) |
                     ((chunk >> 3) & 0x0fe00000u);
            return 4;
        }
    }
    return DecodeVarintSlow(p, end, value);
}

/// Zig-zag encode a signed 32-bit value (sint32).
inline uint32_t
ZigZagEncode32(int32_t v)
{
    return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}

inline int32_t
ZigZagDecode32(uint32_t v)
{
    return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Zig-zag encode a signed 64-bit value (sint64).
inline uint64_t
ZigZagEncode64(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t
ZigZagDecode64(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Little-endian fixed-width stores/loads (proto2 fixed fields).
inline void
StoreFixed32(uint32_t v, uint8_t *out)
{
    std::memcpy(out, &v, sizeof(v));
}

inline void
StoreFixed64(uint64_t v, uint8_t *out)
{
    std::memcpy(out, &v, sizeof(v));
}

inline uint32_t
LoadFixed32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline uint64_t
LoadFixed64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_WIRE_FORMAT_H
