/**
 * @file
 * Proto2 wire-format primitives (§2.1.2 of the paper).
 *
 * Implements varint encode/decode, zig-zag transforms, field tags
 * (key = field_number << 3 | wire_type) and little-endian fixed-width
 * copies. These free functions are shared by the software codec
 * (src/proto/serializer.cc, parser.cc) and the accelerator model's
 * combinational varint unit (src/accel/varint_unit.h), guaranteeing both
 * paths agree on the byte-level format.
 */
#ifndef PROTOACC_PROTO_WIRE_FORMAT_H
#define PROTOACC_PROTO_WIRE_FORMAT_H

#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::proto {

/// Scalar and composite field types of the proto2 language (Table 1).
enum class FieldType : uint8_t {
    kDouble,
    kFloat,
    kInt32,
    kInt64,
    kUint32,
    kUint64,
    kSint32,
    kSint64,
    kFixed32,
    kFixed64,
    kSfixed32,
    kSfixed64,
    kBool,
    kEnum,
    kString,
    kBytes,
    kMessage,
};

/// Number of distinct FieldType values.
inline constexpr int kNumFieldTypes = 17;

/// Human-readable name of a field type (matches .proto spelling).
const char *FieldTypeName(FieldType type);

/// The three-bit wire types of the proto2 encoding. Groups are
/// deprecated upstream and unsupported here (as in the paper).
enum class WireType : uint8_t {
    kVarint = 0,
    kFixed64 = 1,
    kLengthDelimited = 2,
    kStartGroup = 3,
    kEndGroup = 4,
    kFixed32 = 5,
};

/// Maximum encoded size of a 64-bit varint.
inline constexpr int kMaxVarintBytes = 10;

/// Largest field number permitted by the proto2 spec (2^29 - 1).
inline constexpr uint32_t kMaxFieldNumber = (1u << 29) - 1;

/// Wire type used for a non-packed field of @p type.
WireType WireTypeForField(FieldType type);

/// True for the varint-encoded scalar types ({s,u}int{32,64}, int{32,64},
/// enum, bool) -- the "varint-like" class of Table 1.
bool IsVarintType(FieldType type);

/// True for string/bytes (the "bytes-like" class of Table 1).
bool IsBytesLike(FieldType type);

/// True for types encoded as fixed 32- or 64-bit little-endian values.
bool IsFixedType(FieldType type);

/// True for the zig-zag-transformed types sint32/sint64.
bool IsZigZagType(FieldType type);

/// Width in bytes of the in-memory C++ scalar for @p type (pointer-sized
/// for string/bytes/message).
uint32_t InMemorySize(FieldType type);

/// Build a wire-format tag from field number and wire type.
inline uint32_t
MakeTag(uint32_t field_number, WireType wire_type)
{
    return (field_number << 3) | static_cast<uint32_t>(wire_type);
}

inline uint32_t
TagFieldNumber(uint64_t tag)
{
    return static_cast<uint32_t>(tag >> 3);
}

inline WireType
TagWireType(uint64_t tag)
{
    return static_cast<WireType>(tag & 0x7);
}

/// Encoded size in bytes of @p value as a varint (1..10).
inline int
VarintSize(uint64_t value)
{
    // Each output byte carries 7 payload bits.
    return value == 0 ? 1 : static_cast<int>(CeilDiv(SignificantBits(value), 7));
}

/**
 * Encode @p value as a varint into @p out (which must have room for
 * kMaxVarintBytes).
 *
 * @return the number of bytes written.
 */
inline int
EncodeVarint(uint64_t value, uint8_t *out)
{
    int n = 0;
    while (value >= 0x80) {
        out[n++] = static_cast<uint8_t>(value) | 0x80;
        value >>= 7;
    }
    out[n++] = static_cast<uint8_t>(value);
    return n;
}

/**
 * Decode a varint from [@p p, @p end).
 *
 * @param[out] value the decoded 64-bit value.
 * @return the number of bytes consumed, or 0 on malformed/truncated input.
 */
inline int
DecodeVarint(const uint8_t *p, const uint8_t *end, uint64_t *value)
{
    uint64_t result = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarintBytes && p + i < end; ++i) {
        const uint8_t byte = p[i];
        result |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            *value = result;
            return i + 1;
        }
        shift += 7;
    }
    return 0;
}

/// Zig-zag encode a signed 32-bit value (sint32).
inline uint32_t
ZigZagEncode32(int32_t v)
{
    return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}

inline int32_t
ZigZagDecode32(uint32_t v)
{
    return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Zig-zag encode a signed 64-bit value (sint64).
inline uint64_t
ZigZagEncode64(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t
ZigZagDecode64(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Little-endian fixed-width stores/loads (proto2 fixed fields).
inline void
StoreFixed32(uint32_t v, uint8_t *out)
{
    std::memcpy(out, &v, sizeof(v));
}

inline void
StoreFixed64(uint64_t v, uint8_t *out)
{
    std::memcpy(out, &v, sizeof(v));
}

inline uint32_t
LoadFixed32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline uint64_t
LoadFixed64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_WIRE_FORMAT_H
