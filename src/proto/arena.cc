#include "proto/arena.h"

#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::proto {

Arena::Arena(size_t block_size) : block_size_(block_size)
{
    PA_CHECK_GE(block_size, 1024u);
}

void *
Arena::Allocate(size_t size, size_t align)
{
    PA_CHECK(IsPow2(align));
    PA_CHECK_LE(align, 16u);
    if (size == 0)
        size = 1;

    uintptr_t p = reinterpret_cast<uintptr_t>(head_);
    uintptr_t aligned = AlignUp(p, align);
    if (head_ == nullptr || aligned + size > reinterpret_cast<uintptr_t>(limit_)) {
        AddBlock(size + align);
        p = reinterpret_cast<uintptr_t>(head_);
        aligned = AlignUp(p, align);
    }
    head_ = reinterpret_cast<char *>(aligned + size);
    bytes_used_ += size;
    ++allocation_count_;
    void *result = reinterpret_cast<void *>(aligned);
    std::memset(result, 0, size);
    return result;
}

void
Arena::AddBlock(size_t min_size)
{
    const size_t size = min_size > block_size_ ? min_size : block_size_;
    Block block;
    // for_overwrite: Allocate() zeroes each handed-out region itself, so
    // value-initializing the whole block here would memset block_size_
    // bytes up front -- dominant in parse benches that use a fresh arena
    // per message batch.
    block.data = std::make_unique_for_overwrite<char[]>(size);
    block.size = size;
    head_ = block.data.get();
    limit_ = head_ + size;
    bytes_reserved_ += size;
    blocks_.push_back(std::move(block));
}

void
Arena::Reset()
{
    if (blocks_.size() > 1)
        blocks_.resize(1);
    if (!blocks_.empty()) {
        head_ = blocks_[0].data.get();
        limit_ = head_ + blocks_[0].size;
        bytes_reserved_ = blocks_[0].size;
    } else {
        head_ = limit_ = nullptr;
        bytes_reserved_ = 0;
    }
    bytes_used_ = 0;
    allocation_count_ = 0;
}

}  // namespace protoacc::proto
