#include "proto/schema_parser.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

namespace protoacc::proto {

namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokKind {
    kEnd,
    kIdent,   ///< identifiers and dotted type names
    kNumber,  ///< integer or float literal text
    kString,  ///< quoted string (unescaped contents)
    kSymbol,  ///< single-character punctuation
};

struct Token
{
    TokKind kind = TokKind::kEnd;
    std::string text;
    int line = 1;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) {}

    Token
    Next()
    {
        SkipWhitespaceAndComments();
        Token tok;
        tok.line = line_;
        if (pos_ >= text_.size())
            return tok;  // kEnd
        const char c = text_[pos_];
        if (IsIdentStart(c)) {
            tok.kind = TokKind::kIdent;
            while (pos_ < text_.size() &&
                   (IsIdentChar(text_[pos_]) || text_[pos_] == '.')) {
                tok.text += text_[pos_++];
            }
            return tok;
        }
        if (IsDigit(c) || c == '-' || c == '+' ||
            (c == '.' && pos_ + 1 < text_.size() &&
             IsDigit(text_[pos_ + 1]))) {
            tok.kind = TokKind::kNumber;
            while (pos_ < text_.size() &&
                   (IsDigit(text_[pos_]) || IsIdentChar(text_[pos_]) ||
                    text_[pos_] == '.' || text_[pos_] == '-' ||
                    text_[pos_] == '+')) {
                tok.text += text_[pos_++];
            }
            return tok;
        }
        if (c == '"' || c == '\'') {
            tok.kind = TokKind::kString;
            const char quote = c;
            ++pos_;
            while (pos_ < text_.size() && text_[pos_] != quote) {
                char ch = text_[pos_++];
                if (ch == '\\' && pos_ < text_.size()) {
                    const char esc = text_[pos_++];
                    switch (esc) {
                      case 'n': ch = '\n'; break;
                      case 't': ch = '\t'; break;
                      case 'r': ch = '\r'; break;
                      case '0': ch = '\0'; break;
                      default: ch = esc; break;
                    }
                }
                tok.text += ch;
            }
            if (pos_ < text_.size())
                ++pos_;  // closing quote
            return tok;
        }
        tok.kind = TokKind::kSymbol;
        tok.text = std::string(1, c);
        ++pos_;
        return tok;
    }

  private:
    static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
    static bool
    IsIdentStart(char c)
    {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == '.';
    }
    static bool
    IsIdentChar(char c)
    {
        return IsIdentStart(c) || IsDigit(c);
    }

    void
    SkipWhitespaceAndComments()
    {
        for (;;) {
            while (pos_ < text_.size() &&
                   (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                    text_[pos_] == '\r' || text_[pos_] == '\n')) {
                if (text_[pos_] == '\n')
                    ++line_;
                ++pos_;
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
                text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
                continue;
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
                text_[pos_ + 1] == '*') {
                pos_ += 2;
                while (pos_ + 1 < text_.size() &&
                       !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
                    if (text_[pos_] == '\n')
                        ++line_;
                    ++pos_;
                }
                pos_ += 2;
                continue;
            }
            return;
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    int line_ = 1;
};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

struct FieldDecl
{
    Label label = Label::kOptional;
    std::string type_name;
    std::string name;
    uint32_t number = 0;
    std::optional<bool> packed;
    std::optional<std::string> default_literal;
    TokKind default_kind = TokKind::kEnd;
    int line = 0;
};

struct MessageDecl
{
    std::string fq_name;  ///< dotted path, e.g. "Outer.Inner"
    std::vector<std::string> scope;  ///< enclosing message names
    std::vector<FieldDecl> fields;
    int pool_index = -1;
};

/// Builtin scalar type keywords.
const std::map<std::string, FieldType> &
ScalarTypes()
{
    static const std::map<std::string, FieldType> kTypes = {
        {"double", FieldType::kDouble},
        {"float", FieldType::kFloat},
        {"int32", FieldType::kInt32},
        {"int64", FieldType::kInt64},
        {"uint32", FieldType::kUint32},
        {"uint64", FieldType::kUint64},
        {"sint32", FieldType::kSint32},
        {"sint64", FieldType::kSint64},
        {"fixed32", FieldType::kFixed32},
        {"fixed64", FieldType::kFixed64},
        {"sfixed32", FieldType::kSfixed32},
        {"sfixed64", FieldType::kSfixed64},
        {"bool", FieldType::kBool},
        {"string", FieldType::kString},
        {"bytes", FieldType::kBytes},
    };
    return kTypes;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser
{
  public:
    Parser(std::string_view text, DescriptorPool *pool)
        : lexer_(text), pool_(pool)
    {
        Advance();
    }

    SchemaParseResult
    Run()
    {
        if (!ParseFile())
            return result_;
        if (!Resolve())
            return result_;
        result_.ok = true;
        return result_;
    }

  private:
    // ---- error handling ----
    bool
    Fail(const std::string &message)
    {
        if (result_.error.empty()) {
            result_.error = message;
            result_.line = tok_.line;
        }
        return false;
    }

    void Advance() { tok_ = lexer_.Next(); }

    bool
    Expect(TokKind kind, const char *what)
    {
        if (tok_.kind != kind)
            return Fail(std::string("expected ") + what + ", got '" +
                        tok_.text + "'");
        return true;
    }

    bool
    ConsumeSymbol(const char *sym)
    {
        if (tok_.kind != TokKind::kSymbol || tok_.text != sym)
            return Fail(std::string("expected '") + sym + "', got '" +
                        tok_.text + "'");
        Advance();
        return true;
    }

    bool
    TrySymbol(const char *sym)
    {
        if (tok_.kind == TokKind::kSymbol && tok_.text == sym) {
            Advance();
            return true;
        }
        return false;
    }

    // ---- grammar ----
    bool
    ParseFile()
    {
        while (tok_.kind != TokKind::kEnd) {
            if (tok_.kind == TokKind::kIdent && tok_.text == "syntax") {
                if (!ParseSyntax())
                    return false;
            } else if (tok_.kind == TokKind::kIdent &&
                       tok_.text == "message") {
                if (!ParseMessage({}))
                    return false;
            } else if (tok_.kind == TokKind::kIdent &&
                       tok_.text == "enum") {
                if (!ParseEnum({}))
                    return false;
            } else if (tok_.kind == TokKind::kIdent &&
                       tok_.text == "package") {
                // Accepted and ignored: types stay unqualified.
                Advance();
                if (!Expect(TokKind::kIdent, "package name"))
                    return false;
                Advance();
                if (!ConsumeSymbol(";"))
                    return false;
            } else {
                return Fail("expected 'message', 'enum', 'syntax' or "
                            "'package', got '" + tok_.text + "'");
            }
        }
        return true;
    }

    bool
    ParseSyntax()
    {
        Advance();  // 'syntax'
        if (!ConsumeSymbol("="))
            return false;
        if (!Expect(TokKind::kString, "\"proto2\" or \"proto3\""))
            return false;
        if (tok_.text == "proto2") {
            syntax_ = Syntax::kProto2;
        } else if (tok_.text == "proto3") {
            syntax_ = Syntax::kProto3;
        } else {
            return Fail("unknown syntax '" + tok_.text + "'");
        }
        Advance();
        return ConsumeSymbol(";");
    }

    bool
    ParseEnum(const std::vector<std::string> &scope)
    {
        Advance();  // 'enum'
        if (!Expect(TokKind::kIdent, "enum name"))
            return false;
        const std::string fq = Qualify(scope, tok_.text);
        Advance();
        if (!ConsumeSymbol("{"))
            return false;
        std::map<std::string, int32_t> &values = enums_[fq];
        while (!TrySymbol("}")) {
            if (tok_.kind == TokKind::kIdent && tok_.text == "option") {
                if (!SkipStatement())
                    return false;
                continue;
            }
            if (!Expect(TokKind::kIdent, "enum value name"))
                return false;
            const std::string value_name = tok_.text;
            Advance();
            if (!ConsumeSymbol("="))
                return false;
            if (!Expect(TokKind::kNumber, "enum value number"))
                return false;
            values[value_name] =
                static_cast<int32_t>(std::strtol(tok_.text.c_str(),
                                                 nullptr, 0));
            Advance();
            if (!ConsumeSymbol(";"))
                return false;
        }
        return true;
    }

    bool
    ParseMessage(std::vector<std::string> scope)
    {
        Advance();  // 'message'
        if (!Expect(TokKind::kIdent, "message name"))
            return false;
        const std::string name = tok_.text;
        Advance();
        const std::string fq = Qualify(scope, name);

        MessageDecl decl;
        decl.fq_name = fq;
        decl.pool_index = pool_->AddMessage(fq, syntax_);

        scope.push_back(name);
        // Field type names resolve starting from inside the message
        // itself (so `Node` inside `Tree` finds `Tree.Node`).
        decl.scope = scope;
        if (!ConsumeSymbol("{"))
            return false;
        while (!TrySymbol("}")) {
            if (tok_.kind == TokKind::kEnd)
                return Fail("unexpected end of input in message '" +
                            fq + "'");
            if (tok_.kind == TokKind::kIdent && tok_.text == "message") {
                if (!ParseMessage(scope))
                    return false;
                continue;
            }
            if (tok_.kind == TokKind::kIdent && tok_.text == "enum") {
                if (!ParseEnum(scope))
                    return false;
                continue;
            }
            if (tok_.kind == TokKind::kIdent &&
                (tok_.text == "reserved" || tok_.text == "option" ||
                 tok_.text == "extensions")) {
                if (!SkipStatement())
                    return false;
                continue;
            }
            FieldDecl field;
            if (!ParseField(&field))
                return false;
            decl.fields.push_back(std::move(field));
        }
        messages_.push_back(std::move(decl));
        return true;
    }

    /// Skip a statement up to and including its ';'.
    bool
    SkipStatement()
    {
        while (tok_.kind != TokKind::kEnd &&
               !(tok_.kind == TokKind::kSymbol && tok_.text == ";")) {
            Advance();
        }
        if (tok_.kind == TokKind::kEnd)
            return Fail("unexpected end of input in statement");
        Advance();  // ';'
        return true;
    }

    bool
    ParseField(FieldDecl *field)
    {
        field->line = tok_.line;
        // Optional label (mandatory in proto2, absent/optional in
        // proto3).
        if (tok_.kind == TokKind::kIdent) {
            if (tok_.text == "optional") {
                field->label = Label::kOptional;
                Advance();
            } else if (tok_.text == "required") {
                if (syntax_ == Syntax::kProto3)
                    return Fail("'required' is not allowed in proto3");
                field->label = Label::kRequired;
                Advance();
            } else if (tok_.text == "repeated") {
                field->label = Label::kRepeated;
                Advance();
            } else if (syntax_ == Syntax::kProto2) {
                return Fail("proto2 field needs an explicit "
                            "optional/required/repeated label");
            }
        }
        if (!Expect(TokKind::kIdent, "field type"))
            return false;
        field->type_name = tok_.text;
        Advance();
        if (!Expect(TokKind::kIdent, "field name"))
            return false;
        field->name = tok_.text;
        Advance();
        if (!ConsumeSymbol("="))
            return false;
        if (!Expect(TokKind::kNumber, "field number"))
            return false;
        const long number = std::strtol(tok_.text.c_str(), nullptr, 0);
        if (number < 1 ||
            number > static_cast<long>(kMaxFieldNumber)) {
            return Fail("field number out of range: " + tok_.text);
        }
        field->number = static_cast<uint32_t>(number);
        Advance();

        // Options: [packed = true, default = lit].
        if (TrySymbol("[")) {
            do {
                if (!Expect(TokKind::kIdent, "option name"))
                    return false;
                const std::string opt = tok_.text;
                Advance();
                if (!ConsumeSymbol("="))
                    return false;
                if (opt == "packed") {
                    if (tok_.text != "true" && tok_.text != "false")
                        return Fail("packed must be true or false");
                    field->packed = tok_.text == "true";
                } else if (opt == "default") {
                    if (syntax_ == Syntax::kProto3)
                        return Fail(
                            "field defaults are not allowed in proto3");
                    field->default_literal = tok_.text;
                    field->default_kind = tok_.kind;
                } else {
                    // Unknown option: accepted and ignored.
                }
                Advance();
            } while (TrySymbol(","));
            if (!ConsumeSymbol("]"))
                return false;
        }
        return ConsumeSymbol(";");
    }

    // ---- name resolution ----
    static std::string
    Qualify(const std::vector<std::string> &scope,
            const std::string &name)
    {
        std::string fq;
        for (const auto &s : scope)
            fq += s + ".";
        return fq + name;
    }

    /// Resolve @p name from @p scope, innermost first (protoc rules).
    /// Returns the fully qualified name found in @p names, or "".
    template <typename Map>
    std::string
    ResolveName(const Map &names, std::vector<std::string> scope,
                std::string name) const
    {
        if (!name.empty() && name.front() == '.') {
            name.erase(0, 1);  // fully qualified reference
            return names.count(name) ? name : std::string();
        }
        for (;;) {
            const std::string candidate = Qualify(scope, name);
            if (names.count(candidate))
                return candidate;
            if (scope.empty())
                return std::string();
            scope.pop_back();
        }
    }

    bool
    Resolve()
    {
        std::map<std::string, int> message_index;
        for (const auto &decl : messages_)
            message_index[decl.fq_name] = decl.pool_index;

        for (const auto &decl : messages_) {
            for (const auto &field : decl.fields) {
                tok_.line = field.line;  // error attribution
                auto scalar = ScalarTypes().find(field.type_name);
                if (scalar != ScalarTypes().end()) {
                    if (!AddScalarField(decl, field, scalar->second))
                        return false;
                    continue;
                }
                // Message type?
                const std::string msg_name = ResolveName(
                    message_index, decl.scope, field.type_name);
                if (!msg_name.empty()) {
                    if (field.label == Label::kRequired)
                        return Fail("required message fields are not "
                                    "supported");
                    pool_->AddMessageField(decl.pool_index, field.name,
                                           field.number,
                                           message_index[msg_name],
                                           field.label);
                    continue;
                }
                // Enum type?
                const std::string enum_name = ResolveName(
                    enums_, decl.scope, field.type_name);
                if (!enum_name.empty()) {
                    if (!AddEnumField(decl, field, enum_name))
                        return false;
                    continue;
                }
                return Fail("unknown type '" + field.type_name +
                            "' for field '" + field.name + "'");
            }
        }
        return true;
    }

    bool
    AddScalarField(const MessageDecl &decl, const FieldDecl &field,
                   FieldType type)
    {
        const bool packed = field.packed.value_or(
            // proto3 packs repeated scalars by default.
            syntax_ == Syntax::kProto3 &&
            field.label == Label::kRepeated && !IsBytesLike(type));
        if (packed &&
            (field.label != Label::kRepeated || IsBytesLike(type))) {
            return Fail("[packed] only applies to repeated scalar "
                        "fields");
        }
        pool_->AddField(decl.pool_index, field.name, field.number, type,
                        field.label, packed);
        if (field.default_literal.has_value()) {
            if (field.label == Label::kRepeated)
                return Fail("repeated fields cannot have defaults");
            if (IsBytesLike(type)) {
                if (field.default_kind != TokKind::kString)
                    return Fail("string default must be quoted");
                pool_->SetStringDefault(decl.pool_index, field.number,
                                        *field.default_literal);
                return true;
            }
            uint64_t bits = 0;
            if (!ScalarDefaultBits(type, *field.default_literal, &bits))
                return Fail("bad default '" + *field.default_literal +
                            "' for field '" + field.name + "'");
            pool_->SetScalarDefault(decl.pool_index, field.number, bits);
        }
        return true;
    }

    bool
    AddEnumField(const MessageDecl &decl, const FieldDecl &field,
                 const std::string &enum_name)
    {
        pool_->AddField(decl.pool_index, field.name, field.number,
                        FieldType::kEnum, field.label,
                        field.packed.value_or(
                            syntax_ == Syntax::kProto3 &&
                            field.label == Label::kRepeated));
        if (field.default_literal.has_value()) {
            const auto &values = enums_.at(enum_name);
            auto it = values.find(*field.default_literal);
            if (it == values.end())
                return Fail("unknown enum value '" +
                            *field.default_literal + "'");
            pool_->SetScalarDefault(
                decl.pool_index, field.number,
                static_cast<uint32_t>(it->second));
        }
        return true;
    }

    static bool
    ScalarDefaultBits(FieldType type, const std::string &lit,
                      uint64_t *bits)
    {
        switch (type) {
          case FieldType::kBool:
            if (lit == "true") {
                *bits = 1;
                return true;
            }
            if (lit == "false") {
                *bits = 0;
                return true;
            }
            return false;
          case FieldType::kFloat: {
            const float v =
                static_cast<float>(std::strtod(lit.c_str(), nullptr));
            uint32_t b;
            std::memcpy(&b, &v, sizeof(v));
            *bits = b;
            return true;
          }
          case FieldType::kDouble: {
            const double v = std::strtod(lit.c_str(), nullptr);
            std::memcpy(bits, &v, sizeof(v));
            return true;
          }
          default: {
            // Integer types: signed parse covers negatives; the bit
            // pattern is truncated to the slot width at instance build.
            const long long v =
                std::strtoll(lit.c_str(), nullptr, 0);
            *bits = static_cast<uint64_t>(v);
            if (InMemorySize(type) == 4)
                *bits = static_cast<uint32_t>(*bits);
            return true;
          }
        }
    }

    Lexer lexer_;
    Token tok_;
    DescriptorPool *pool_;
    Syntax syntax_ = Syntax::kProto2;
    std::vector<MessageDecl> messages_;
    std::map<std::string, std::map<std::string, int32_t>> enums_;
    SchemaParseResult result_;
};

}  // namespace

SchemaParseResult
ParseSchema(std::string_view text, DescriptorPool *pool)
{
    PA_CHECK(pool != nullptr);
    PA_CHECK(!pool->compiled());
    return Parser(text, pool).Run();
}

}  // namespace protoacc::proto
