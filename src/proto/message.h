/**
 * @file
 * Dynamic message objects: the stand-in for protoc-generated C++ classes.
 *
 * A message instance is a flat byte object laid out by the pool's layout
 * compiler (cached size, hasbits words, field slots at fixed offsets —
 * §2.1.3). Message is a cheap, copyable *handle* {object pointer,
 * descriptor, arena} exposing the accessor surface generated code would
 * have (setters, getters, repeated-field mutation, sub-message
 * traversal). The software codec, the accelerator model, and user code
 * in examples/ all operate on the same objects.
 */
#ifndef PROTOACC_PROTO_MESSAGE_H
#define PROTOACC_PROTO_MESSAGE_H

#include <cstdint>
#include <string_view>

#include "proto/arena_string.h"
#include "proto/descriptor.h"
#include "proto/repeated.h"
#include "proto/unknown_fields.h"

namespace protoacc::proto {

/**
 * Handle to one in-memory message object. Copying the handle aliases the
 * same object. A default-constructed handle is null.
 */
class Message
{
  public:
    Message() = default;
    Message(void *obj, const MessageDescriptor *descriptor,
            const DescriptorPool *pool, Arena *arena)
        : obj_(obj), descriptor_(descriptor), pool_(pool), arena_(arena)
    {}

    /// Allocate a fresh object of type @p msg_index in @p arena,
    /// initialized from the type's default instance.
    static Message Create(Arena *arena, const DescriptorPool &pool,
                          int msg_index);

    bool valid() const { return obj_ != nullptr; }
    void *raw() const { return obj_; }
    const MessageDescriptor &descriptor() const { return *descriptor_; }
    const DescriptorPool &pool() const { return *pool_; }
    Arena *arena() const { return arena_; }

    // ---- Presence (hasbits) ----
    bool Has(const FieldDescriptor &f) const;
    void SetHas(const FieldDescriptor &f);
    void ClearHas(const FieldDescriptor &f);
    /// Clear a field: drop its presence bit and reset its slot.
    void Clear(const FieldDescriptor &f);

    /// Address of the hasbits word array.
    uint32_t *
    hasbits()
    {
        return reinterpret_cast<uint32_t *>(
            bytes() + descriptor_->layout().hasbits_offset);
    }
    const uint32_t *
    hasbits() const
    {
        return reinterpret_cast<const uint32_t *>(
            bytes() + descriptor_->layout().hasbits_offset);
    }

    // ---- Singular scalars (bit-pattern interface + typed wrappers) ----
    /// Raw slot bits, or the field default when the field is not set.
    uint64_t GetScalarBits(const FieldDescriptor &f) const;
    /// Store @p bits in the slot and set the presence bit.
    void SetScalarBits(const FieldDescriptor &f, uint64_t bits);

    int32_t
    GetInt32(const FieldDescriptor &f) const
    {
        return static_cast<int32_t>(GetScalarBits(f));
    }
    int64_t
    GetInt64(const FieldDescriptor &f) const
    {
        return static_cast<int64_t>(GetScalarBits(f));
    }
    uint32_t
    GetUint32(const FieldDescriptor &f) const
    {
        return static_cast<uint32_t>(GetScalarBits(f));
    }
    uint64_t GetUint64(const FieldDescriptor &f) const
    {
        return GetScalarBits(f);
    }
    bool GetBool(const FieldDescriptor &f) const
    {
        return GetScalarBits(f) != 0;
    }
    float
    GetFloat(const FieldDescriptor &f) const
    {
        const uint32_t bits = static_cast<uint32_t>(GetScalarBits(f));
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    double
    GetDouble(const FieldDescriptor &f) const
    {
        const uint64_t bits = GetScalarBits(f);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void SetInt32(const FieldDescriptor &f, int32_t v)
    {
        SetScalarBits(f, static_cast<uint32_t>(v));
    }
    void SetInt64(const FieldDescriptor &f, int64_t v)
    {
        SetScalarBits(f, static_cast<uint64_t>(v));
    }
    void SetUint32(const FieldDescriptor &f, uint32_t v)
    {
        SetScalarBits(f, v);
    }
    void SetUint64(const FieldDescriptor &f, uint64_t v)
    {
        SetScalarBits(f, v);
    }
    void SetBool(const FieldDescriptor &f, bool v)
    {
        SetScalarBits(f, v ? 1 : 0);
    }
    void
    SetFloat(const FieldDescriptor &f, float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(v));
        SetScalarBits(f, bits);
    }
    void
    SetDouble(const FieldDescriptor &f, double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(v));
        SetScalarBits(f, bits);
    }

    // ---- Singular strings / bytes ----
    /// Contents, or the field's default string when unset.
    std::string_view GetString(const FieldDescriptor &f) const;
    void SetString(const FieldDescriptor &f, std::string_view value);
    /// The underlying string object (nullptr when never set).
    ArenaString *GetStringObject(const FieldDescriptor &f) const;

    // ---- Singular sub-messages ----
    /// Read-only handle; invalid() when unset.
    Message GetMessage(const FieldDescriptor &f) const;
    /// Get-or-create mutable sub-message (allocates in the arena).
    Message MutableMessage(const FieldDescriptor &f);

    // ---- Repeated fields ----
    uint32_t RepeatedSize(const FieldDescriptor &f) const;

    template <typename T>
    T
    GetRepeated(const FieldDescriptor &f, uint32_t i) const
    {
        const RepeatedField *r = repeated_field(f);
        PA_CHECK(r != nullptr);
        return r->Get<T>(i);
    }
    /// Append one scalar element (bit pattern, low InMemorySize bytes).
    void AddRepeatedBits(const FieldDescriptor &f, uint64_t bits);

    std::string_view GetRepeatedString(const FieldDescriptor &f,
                                       uint32_t i) const;
    void AddRepeatedString(const FieldDescriptor &f, std::string_view v);

    Message GetRepeatedMessage(const FieldDescriptor &f, uint32_t i) const;
    /// Append and return a fresh sub-message element.
    Message AddRepeatedMessage(const FieldDescriptor &f);

    // ---- Raw access (codec and accelerator model) ----
    char *field_ptr(const FieldDescriptor &f) { return bytes() + f.offset; }
    const char *
    field_ptr(const FieldDescriptor &f) const
    {
        return bytes() + f.offset;
    }
    RepeatedField *repeated_field(const FieldDescriptor &f) const;
    RepeatedPtrField *repeated_ptr_field(const FieldDescriptor &f) const;

    int32_t cached_size() const;
    void set_cached_size(int32_t v) const;

    /// Unknown-field store preserved by the parsers (nullptr when the
    /// input carried no fields outside this schema version).
    const UnknownFieldStore *unknown_fields() const;

  private:
    char *bytes() const { return static_cast<char *>(obj_); }
    const MessageDescriptor &sub_descriptor(const FieldDescriptor &f) const;

    void *obj_ = nullptr;
    const MessageDescriptor *descriptor_ = nullptr;
    const DescriptorPool *pool_ = nullptr;
    Arena *arena_ = nullptr;
};

/**
 * Deep structural equality: same set fields, same values, same repeated
 * contents and sub-message trees. Used by tests to check that
 * accelerator-built objects match software-built ones.
 */
bool MessagesEqual(const Message &a, const Message &b);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_MESSAGE_H
