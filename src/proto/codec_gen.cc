#include "proto/codec_gen.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "proto/codec_generated.h"
#include "proto/codec_table.h"

// C++ emitter for schema-specialized codecs. The compiled codec tables
// are the IR: every constant baked into the emitted text (tag bytes,
// offsets, hasbit words/masks, widths, sub-table links) comes from the
// same CodecTableSet the table interpreter executes, and every emitted
// code path mirrors one interpreter path (parser.cc / serializer.cc)
// statement-for-statement where CostSink events are concerned. The
// differential suites then verify the equivalence the construction
// already implies.
//
// Emitted parse shape per message (the protoc idiom):
//
//   dispatch:  full varint tag decode -> switch (field number)
//   case N:    wire-type check -> goto f_N (fast) / s_N (lenient)
//   f_N:       straight-line decode with constant offsets, then
//              expected-next-tag chaining (TryTag1/2) to f_self/f_next
//   s_N:       out-of-line wire-type-lenient fallback (gensup)
//
// Serialize emits two functions per message — Size_k (sizing pass with
// pre-order nested-size memoization) and Write_k (write pass consuming
// the memo) — exactly mirroring the interpreter's two passes.

namespace protoacc::proto {

namespace {

/// printf-style line appender for the emitted source.
class Src
{
  public:
    void
    P(const char *fmt, ...)
    {
        char buf[1024];
        va_list ap;
        va_start(ap, fmt);
        const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        PA_CHECK(n >= 0 && n < static_cast<int>(sizeof(buf)));
        out_.append(buf, static_cast<size_t>(n));
        out_.push_back('\n');
    }

    std::string &str() { return out_; }

  private:
    std::string out_;
};

const char *
FieldOpName(FieldOp op)
{
    switch (op) {
      case FieldOp::kFixed32: return "kFixed32";
      case FieldOp::kFixed64: return "kFixed64";
      case FieldOp::kInt32: return "kInt32";
      case FieldOp::kUint32: return "kUint32";
      case FieldOp::kVarint64: return "kVarint64";
      case FieldOp::kSint32: return "kSint32";
      case FieldOp::kSint64: return "kSint64";
      case FieldOp::kBool: return "kBool";
      case FieldOp::kString: return "kString";
      case FieldOp::kBytes: return "kBytes";
      case FieldOp::kMessage: return "kMessage";
    }
    return "?";
}

const char *
WireTypeName(WireType wt)
{
    switch (wt) {
      case WireType::kVarint: return "kVarint";
      case WireType::kFixed64: return "kFixed64";
      case WireType::kLengthDelimited: return "kLengthDelimited";
      case WireType::kStartGroup: return "kStartGroup";
      case WireType::kEndGroup: return "kEndGroup";
      case WireType::kFixed32: return "kFixed32";
    }
    return "?";
}

bool
IsScalarOp(FieldOp op)
{
    switch (op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
      case FieldOp::kMessage:
        return false;
      default:
        return true;
    }
}

/// C-escape arbitrary bytes into string-literal form. Always uses
/// 3-digit octal for non-printables so a following digit can't extend
/// the escape.
std::string
CEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(static_cast<char>(c));
        } else if (c == '?') {
            // Dodge trigraph sequences.
            out += "\\?";
        } else if (c >= 0x20 && c < 0x7f) {
            out.push_back(static_cast<char>(c));
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\%03o", c);
            out += buf;
        }
    }
    return out;
}

/// "0x08" / "0xd2, 0x04" — the pre-encoded tag bytes as WriteTag args.
std::string
TagArgs(const CodecEntry &e)
{
    std::string out;
    for (uint8_t i = 0; i < e.tag_len; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "0x%02x", e.tag_bytes[i]);
        if (i > 0)
            out += ", ";
        out += buf;
    }
    return out;
}

/// Hasbit word byte offset of @p e within the object.
uint32_t
HasbitWordOffset(const CodecTable &t, const CodecEntry &e)
{
    return t.hasbits_offset + 4u * (e.hasbit_index >> 5);
}

uint32_t
HasbitMask(const CodecEntry &e)
{
    return 1u << (e.hasbit_index & 31);
}

/// The tag's wire type (low 3 bits of its first pre-encoded byte).
uint32_t
TagWire(const CodecEntry &e)
{
    return e.tag_bytes[0] & 7u;
}

/// Local-variable C type for a slot of @p width bytes.
const char *
SlotType(uint8_t width)
{
    switch (width) {
      case 1: return "uint8_t";
      case 4: return "uint32_t";
      default: return "uint64_t";
    }
}

/// Parse-side conversion: wire varint (uint64_t expr @p wire) to the
/// in-memory bit pattern, as a uint64_t-convertible expression
/// (parser.cc's VarintMemoryValue, constant-folded on op).
std::string
MemoryValueExpr(FieldOp op, const char *wire)
{
    char buf[160];
    switch (op) {
      case FieldOp::kInt32:
      case FieldOp::kUint32:
        std::snprintf(buf, sizeof(buf), "static_cast<uint32_t>(%s)", wire);
        break;
      case FieldOp::kSint32:
        std::snprintf(buf, sizeof(buf),
                      "static_cast<uint32_t>(ZigZagDecode32("
                      "static_cast<uint32_t>(%s)))",
                      wire);
        break;
      case FieldOp::kSint64:
        std::snprintf(buf, sizeof(buf),
                      "static_cast<uint64_t>(ZigZagDecode64(%s))", wire);
        break;
      case FieldOp::kBool:
        std::snprintf(buf, sizeof(buf), "(%s != 0 ? 1u : 0u)", wire);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s", wire);
        break;
    }
    return buf;
}

/// Serialize-side conversion: in-memory value (variable @p v, typed by
/// slot width) to the wire varint (serializer.cc's VarintWireValue,
/// constant-folded on op). kBool is handled by callers (constant size).
std::string
WireValueExpr(FieldOp op, const char *v)
{
    char buf[160];
    switch (op) {
      case FieldOp::kInt32:
        std::snprintf(buf, sizeof(buf),
                      "static_cast<uint64_t>(static_cast<int64_t>("
                      "static_cast<int32_t>(%s)))",
                      v);
        break;
      case FieldOp::kSint32:
        std::snprintf(buf, sizeof(buf),
                      "ZigZagEncode32(static_cast<int32_t>(%s))", v);
        break;
      case FieldOp::kSint64:
        std::snprintf(buf, sizeof(buf),
                      "ZigZagEncode64(static_cast<int64_t>(%s))", v);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s", v);
        break;
    }
    return buf;
}

/// Name of the default-string constant for singular string/bytes entry
/// @p e of message @p k (emitted only when the default is non-empty).
std::string
DefName(int k, const CodecEntry &e)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "kDef_%d_%u", k, e.number);
    return buf;
}

// ---------------------------------------------------------------------
// Parse emission
// ---------------------------------------------------------------------

/// Emit the expected-next-tag chain after entry @p i's fast handler:
/// repeated entries first retry themselves, then the next entry in
/// field order; tags longer than 2 bytes fall back to full dispatch.
void
EmitChain(Src &s, const CodecTable &t, size_t i)
{
    std::vector<const CodecEntry *> targets;
    if (t.entries[i].repeated())
        targets.push_back(&t.entries[i]);
    if (i + 1 < t.entries.size())
        targets.push_back(&t.entries[i + 1]);
    for (const CodecEntry *e : targets) {
        if (e->tag_len == 1)
            s.P("    if (r.TryTag1(%s))", TagArgs(*e).c_str());
        else if (e->tag_len == 2)
            s.P("    if (r.TryTag2(%s))", TagArgs(*e).c_str());
        else
            break;
        s.P("        goto f_%u;", e->number);
    }
    s.P("    goto dispatch;");
}

/// Emit the fast-path handler block (label f_N) for entry @p i.
void
EmitParseFast(Src &s, const CodecTableSet &set, const CodecTable &t,
              size_t i)
{
    const CodecEntry &e = t.entries[i];
    const uint32_t woff = HasbitWordOffset(t, e);
    const uint32_t mask = HasbitMask(e);
    s.P("  f_%u:  // %s.%s", e.number, t.desc->name().c_str(),
        e.field->name.c_str());
    s.P("    {");
    s.P("        if constexpr (S)");
    s.P("            c.sink->OnFieldDispatch();");

    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes: {
        s.P("        uint64_t len;");
        s.P("        if (!r.ReadVal(&len))");
        s.P("            return ParseStatus::kMalformedVarint;");
        s.P("        if (r.remaining() < len)");
        s.P("            return ParseStatus::kTruncated;");
        s.P("        const char *sp = "
            "reinterpret_cast<const char *>(r.pos());");
        if (e.validate_utf8()) {
            s.P("        if (!IsValidUtf8(sp, "
                "static_cast<size_t>(len)))");
            s.P("            return ParseStatus::kInvalidUtf8;");
        }
        s.P("        if (!c.Charge(len))");
        s.P("            return ParseStatus::kResourceExhausted;");
        s.P("        if constexpr (S) {");
        s.P("            c.sink->OnAlloc(len > "
            "ArenaString::kInlineCapacity");
        s.P("                                ? len + sizeof(ArenaString)");
        s.P("                                : sizeof(ArenaString));");
        s.P("            c.sink->OnMemcpy(len);");
        s.P("        }");
        if (e.repeated()) {
            s.P("        gensup::AppendString(c, obj, %uu, sp, "
                "static_cast<size_t>(len));",
                e.offset);
            s.P("        gensup::SetHasBit(obj, %uu, 0x%xu);", woff, mask);
        } else {
            s.P("        gensup::SetStringValue(c, obj, %uu, sp, "
                "static_cast<size_t>(len));",
                e.offset);
            s.P("        gensup::SetHasBit(obj, %uu, 0x%xu);", woff, mask);
        }
        s.P("        r.Advance(static_cast<size_t>(len));");
        break;
      }
      case FieldOp::kMessage: {
        const CodecTable &sub_t = set.table(e.sub_table);
        s.P("        uint64_t len;");
        s.P("        if (!r.ReadVal(&len))");
        s.P("            return ParseStatus::kMalformedVarint;");
        s.P("        if (r.remaining() < len)");
        s.P("            return ParseStatus::kTruncated;");
        s.P("        const uint8_t *bp = r.pos();");
        s.P("        r.Advance(static_cast<size_t>(len));");
        s.P("        if (!c.Charge(%uu))", sub_t.object_size);
        s.P("            return ParseStatus::kResourceExhausted;");
        if (e.repeated()) {
            s.P("        char *sub = gensup::AppendSub(c, obj, %uu, %d, "
                "%uu);",
                e.offset, e.sub_table, sub_t.object_size);
        } else {
            s.P("        char *sub = gensup::GetOrCreateSub(c, obj, %uu, "
                "%d, %uu);",
                e.offset, e.sub_table, sub_t.object_size);
        }
        s.P("        gensup::SetHasBit(obj, %uu, 0x%xu);", woff, mask);
        s.P("        if constexpr (S)");
        s.P("            c.sink->OnAlloc(%uu);", sub_t.object_size);
        s.P("        gensup::GenReader<S> body(bp, bp + len, c.sink);");
        s.P("        st = Parse_%d<S>(c, body, sub, depth + 1);", e.sub_table);
        s.P("        if (st != ParseStatus::kOk)");
        s.P("            return st;");
        break;
      }
      default: {  // scalars
        const bool packed_tag =
            TagWire(e) == static_cast<uint32_t>(WireType::kLengthDelimited);
        const char *reader = "r";
        if (packed_tag) {
            // Packed run: bounded body reader + per-element loop
            // (parser.cc's ParsePackedRepeated shape).
            s.P("        uint64_t plen;");
            s.P("        if (!r.ReadVal(&plen))");
            s.P("            return ParseStatus::kMalformedVarint;");
            s.P("        if (r.remaining() < plen)");
            s.P("            return ParseStatus::kTruncated;");
            s.P("        gensup::GenReader<S> body(r.pos(), "
                "r.pos() + plen, c.sink);");
            s.P("        r.Advance(static_cast<size_t>(plen));");
            s.P("        while (!body.at_end()) {");
            reader = "body";
        }
        const std::string ind = packed_tag ? "    " : "";
        std::string bits;
        switch (e.wire_type) {
          case WireType::kVarint:
            s.P("        %suint64_t wire;", ind.c_str());
            s.P("        %sif (!%s.ReadVal(&wire))", ind.c_str(), reader);
            s.P("        %s    return ParseStatus::kMalformedVarint;",
                ind.c_str());
            bits = MemoryValueExpr(e.op, "wire");
            break;
          case WireType::kFixed32:
            s.P("        %suint32_t v;", ind.c_str());
            s.P("        %sif (!%s.ReadFixed32(&v))", ind.c_str(), reader);
            s.P("        %s    return ParseStatus::kTruncated;",
                ind.c_str());
            bits = "v";
            break;
          default:  // kFixed64
            s.P("        %suint64_t v;", ind.c_str());
            s.P("        %sif (!%s.ReadFixed64(&v))", ind.c_str(), reader);
            s.P("        %s    return ParseStatus::kTruncated;",
                ind.c_str());
            bits = "v";
            break;
        }
        if (e.repeated()) {
            s.P("        %sif (!c.Charge(%uu))", ind.c_str(), e.mem_width);
            s.P("        %s    return ParseStatus::kResourceExhausted;",
                ind.c_str());
            s.P("        %sgensup::AppendBits(c, obj, %uu, %uu, 0x%xu,",
                ind.c_str(), e.offset, woff, mask);
            s.P("        %s                   %s, %uu);", ind.c_str(),
                bits.c_str(), e.mem_width);
        } else {
            s.P("        const %s v2 = static_cast<%s>(%s);",
                SlotType(e.mem_width), SlotType(e.mem_width), bits.c_str());
            s.P("        std::memcpy(obj + %uu, &v2, %u);", e.offset,
                e.mem_width);
            s.P("        gensup::SetHasBit(obj, %uu, 0x%xu);", woff, mask);
        }
        if (packed_tag)
            s.P("        }");
        break;
      }
    }
    s.P("    }");
    EmitChain(s, t, i);
}

void
EmitParse(Src &s, const CodecTableSet &set, int k)
{
    const CodecTable &t = set.table(k);
    s.P("template <bool S>");
    s.P("ParseStatus");
    s.P("Parse_%d(gensup::GenParseCtx &c, gensup::GenReader<S> &r, "
        "char *obj, const int depth)",
        k);
    s.P("{");
    s.P("    (void)obj;");
    s.P("    if (depth > c.max_depth)");
    s.P("        return ParseStatus::kDepthExceeded;");
    s.P("    if constexpr (S)");
    s.P("        c.sink->OnMessageBegin();");
    s.P("    uint64_t tag;");
    s.P("    ParseStatus st;");
    s.P("    (void)st;");
    s.P("    const uint8_t *tag_start;");
    s.P("  dispatch:");
    s.P("    if (r.at_end())");
    s.P("        goto done;");
    s.P("    tag_start = r.pos();");
    s.P("    (void)tag_start;");
    s.P("    if (!r.ReadTag(&tag))");
    s.P("        return ParseStatus::kMalformedVarint;");
    s.P("    switch (static_cast<uint32_t>(tag >> 3)) {");
    s.P("      case 0u:");
    s.P("        return ParseStatus::kInvalidFieldNumber;");
    for (size_t i = 0; i < t.entries.size(); ++i) {
        const CodecEntry &e = t.entries[i];
        s.P("      case %uu:", e.number);
        s.P("        if ((tag & 7u) == %uu)", TagWire(e));
        s.P("            goto f_%u;", e.number);
        if (IsScalarOp(e.op)) {
            s.P("        goto s_%u;", e.number);
        } else {
            // Bytes-like / message fields reject any other wire type
            // (after the dispatch event, as the interpreter does).
            s.P("        if constexpr (S)");
            s.P("            c.sink->OnFieldDispatch();");
            s.P("        return ParseStatus::kInvalidWireType;");
        }
    }
    s.P("      default:");
    s.P("        st = gensup::PreserveUnknownField<S>(c, r, obj, %uu,",
        t.desc->layout().unknown_offset);
    s.P("            tag_start, static_cast<uint32_t>(tag >> 3),");
    s.P("            static_cast<uint32_t>(tag & 7u));");
    s.P("        if (st != ParseStatus::kOk)");
    s.P("            return st;");
    s.P("        goto dispatch;");
    s.P("    }");
    for (size_t i = 0; i < t.entries.size(); ++i)
        EmitParseFast(s, set, t, i);
    for (size_t i = 0; i < t.entries.size(); ++i) {
        const CodecEntry &e = t.entries[i];
        if (!IsScalarOp(e.op))
            continue;
        s.P("  s_%u:", e.number);
        s.P("    if constexpr (S)");
        s.P("        c.sink->OnFieldDispatch();");
        s.P("    st = gensup::LenientField<S>(c, r, obj, kMeta_%d[%zu],", k,
            i);
        s.P("                                static_cast<uint32_t>"
            "(tag & 7u));");
        s.P("    if (st != ParseStatus::kOk)");
        s.P("        return st;");
        s.P("    goto dispatch;");
    }
    s.P("  done:");
    s.P("    if constexpr (S)");
    s.P("        c.sink->OnMessageEnd();");
    s.P("    return ParseStatus::kOk;");
    s.P("}");
    s.P("");
}

// ---------------------------------------------------------------------
// Sizing emission
// ---------------------------------------------------------------------

void
EmitSizeField(Src &s, const CodecTable &t, int k, const CodecEntry &e)
{
    const uint32_t woff = HasbitWordOffset(t, e);
    const uint32_t mask = HasbitMask(e);
    s.P("    // %s.%s", t.desc->name().c_str(), e.field->name.c_str());

    if (!e.repeated()) {
        s.P("    if (gensup::TestHasBit(obj, %uu, 0x%xu)) {", woff, mask);
        s.P("        if constexpr (S)");
        s.P("            c.sink->OnByteSizeField();");
        switch (e.op) {
          case FieldOp::kString:
          case FieldOp::kBytes: {
            s.P("        const ArenaString *sv = gensup::LoadStr(obj, "
                "%uu);",
                e.offset);
            if (e.field->default_string.empty()) {
                s.P("        const size_t len = sv != nullptr ? "
                    "static_cast<size_t>(sv->size) : 0;");
            } else {
                s.P("        const size_t len = sv != nullptr ? "
                    "static_cast<size_t>(sv->size) : sizeof(%s) - 1;",
                    DefName(k, e).c_str());
            }
            s.P("        total += %uu + "
                "static_cast<size_t>(VarintSize(len)) + len;",
                e.tag_len);
            break;
          }
          case FieldOp::kMessage:
            s.P("        const char *sub = gensup::LoadPtr(obj, %uu);",
                e.offset);
            s.P("        size_t len = 0;");
            s.P("        if (sub != nullptr) {");
            s.P("            const size_t slot = c.subs->size();");
            s.P("            c.subs->push_back(0);");
            s.P("            len = Size_%d<S>(sub, c);", e.sub_table);
            s.P("            (*c.subs)[slot] = len;");
            s.P("        }");
            s.P("        total += %uu + "
                "static_cast<size_t>(VarintSize(len)) + len;",
                e.tag_len);
            break;
          case FieldOp::kBool:
            s.P("        total += %uu;", e.tag_len + 1u);
            break;
          case FieldOp::kFixed32:
            s.P("        total += %uu;", e.tag_len + 4u);
            break;
          case FieldOp::kFixed64:
            s.P("        total += %uu;", e.tag_len + 8u);
            break;
          default: {  // varint scalars
            s.P("        %s v;", SlotType(e.mem_width));
            s.P("        std::memcpy(&v, obj + %uu, %u);", e.offset,
                e.mem_width);
            s.P("        total += %uu + static_cast<size_t>(VarintSize("
                "%s));",
                e.tag_len, WireValueExpr(e.op, "v").c_str());
            break;
          }
        }
        s.P("    }");
        s.P("    if constexpr (S)");
        s.P("        c.sink->OnHasbitsAccess(1);");
        return;
    }

    // Repeated: presence is element count, not the hasbit.
    const bool ptr_field =
        e.op == FieldOp::kString || e.op == FieldOp::kBytes ||
        e.op == FieldOp::kMessage;
    s.P("    {");
    if (ptr_field)
        s.P("        const RepeatedPtrField *rp = gensup::LoadRepPtr(obj, "
            "%uu);",
            e.offset);
    else
        s.P("        const RepeatedField *rp = gensup::LoadRep(obj, %uu);",
            e.offset);
    s.P("        if (rp != nullptr && rp->size > 0) {");
    s.P("            if constexpr (S)");
    s.P("                c.sink->OnByteSizeField();");
    s.P("            const uint32_t n = rp->size;");
    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
        s.P("            for (uint32_t i = 0; i < n; ++i) {");
        s.P("                const auto *sv = static_cast<const "
            "ArenaString *>(rp->data[i]);");
        s.P("                const size_t len = "
            "static_cast<size_t>(sv->size);");
        s.P("                total += %uu + "
            "static_cast<size_t>(VarintSize(len)) + len;",
            e.tag_len);
        s.P("            }");
        break;
      case FieldOp::kMessage:
        s.P("            for (uint32_t i = 0; i < n; ++i) {");
        s.P("                const size_t slot = c.subs->size();");
        s.P("                c.subs->push_back(0);");
        s.P("                const size_t len = Size_%d<S>("
            "static_cast<const char *>(rp->data[i]), c);",
            e.sub_table);
        s.P("                (*c.subs)[slot] = len;");
        s.P("                total += %uu + "
            "static_cast<size_t>(VarintSize(len)) + len;",
            e.tag_len);
        s.P("            }");
        break;
      default: {
        const char *elem_size = nullptr;
        char ebuf[8];
        if (e.wire_type == WireType::kFixed32)
            elem_size = "4u";
        else if (e.wire_type == WireType::kFixed64)
            elem_size = "8u";
        else if (e.op == FieldOp::kBool)
            elem_size = "1u";
        (void)ebuf;
        if (elem_size != nullptr) {
            // Constant per-element wire size: no loop.
            s.P("            const size_t payload = "
                "static_cast<size_t>(n) * %s;",
                elem_size);
        } else {
            s.P("            const char *base = static_cast<const char *>"
                "(rp->data);");
            s.P("            size_t payload = 0;");
            s.P("            for (uint32_t i = 0; i < n; ++i) {");
            s.P("                %s v;", SlotType(e.mem_width));
            s.P("                std::memcpy(&v, base + %uu * i, %u);",
                e.mem_width, e.mem_width);
            s.P("                payload += static_cast<size_t>(VarintSize("
                "%s));",
                WireValueExpr(e.op, "v").c_str());
            s.P("            }");
        }
        if (e.packed()) {
            s.P("            c.subs->push_back(payload);");
            s.P("            total += %uu + "
                "static_cast<size_t>(VarintSize(payload)) + payload;",
                e.tag_len);
        } else {
            s.P("            total += payload + "
                "static_cast<size_t>(n) * %uu;",
                e.tag_len);
        }
        break;
      }
    }
    s.P("        }");
    s.P("    }");
    s.P("    if constexpr (S)");
    s.P("        c.sink->OnHasbitsAccess(1);");
}

void
EmitSize(Src &s, const CodecTableSet &set, int k)
{
    const CodecTable &t = set.table(k);
    s.P("template <bool S>");
    s.P("size_t");
    s.P("Size_%d(const char *obj, gensup::GenSizeCtx &c)", k);
    s.P("{");
    s.P("    (void)c;");
    s.P("    if constexpr (S)");
    s.P("        c.sink->OnByteSizeMessage();");
    s.P("    size_t total = 0;");
    for (const CodecEntry &e : t.entries)
        EmitSizeField(s, t, k, e);
    // Preserved unknown records re-emit verbatim; eventless constant
    // add, matching the table and reference sizing passes.
    s.P("    total += gensup::UnknownBytes(obj, %uu);",
        t.desc->layout().unknown_offset);
    s.P("    gensup::StoreCachedSize(obj, %uu, total);",
        t.cached_size_offset);
    s.P("    return total;");
    s.P("}");
    s.P("");
}

// ---------------------------------------------------------------------
// Write emission
// ---------------------------------------------------------------------

void
EmitWriteField(Src &s, const CodecTable &t, int k, const CodecEntry &e)
{
    const uint32_t woff = HasbitWordOffset(t, e);
    const uint32_t mask = HasbitMask(e);
    const std::string tag = TagArgs(e);
    s.P("    // %s.%s", t.desc->name().c_str(), e.field->name.c_str());
    s.P("    if (u != nullptr)");
    s.P("        gensup::EmitUnknownBelow<S>(w, u, &ucur, %uu);",
        e.number);
    s.P("    if constexpr (S)");
    s.P("        w.sink()->OnHasbitsAccess(1);");

    if (!e.repeated()) {
        s.P("    if (gensup::TestHasBit(obj, %uu, 0x%xu)) {", woff, mask);
        s.P("        if constexpr (S)");
        s.P("            w.sink()->OnFieldDispatch();");
        switch (e.op) {
          case FieldOp::kString:
          case FieldOp::kBytes:
            s.P("        const ArenaString *sv = gensup::LoadStr(obj, "
                "%uu);",
                e.offset);
            s.P("        w.WriteTag(%s);", tag.c_str());
            s.P("        if (sv != nullptr) {");
            s.P("            const size_t len = "
                "static_cast<size_t>(sv->size);");
            s.P("            w.WriteVarint(len);");
            s.P("            w.WriteBytes(sv->data_ptr, len);");
            s.P("        } else {");
            if (e.field->default_string.empty()) {
                s.P("            w.WriteVarint(0);");
                s.P("            w.WriteBytes(\"\", 0);");
            } else {
                s.P("            w.WriteVarint(sizeof(%s) - 1);",
                    DefName(k, e).c_str());
                s.P("            w.WriteBytes(%s, sizeof(%s) - 1);",
                    DefName(k, e).c_str(), DefName(k, e).c_str());
            }
            s.P("        }");
            break;
          case FieldOp::kMessage:
            s.P("        const char *sub = gensup::LoadPtr(obj, %uu);",
                e.offset);
            s.P("        w.WriteTag(%s);", tag.c_str());
            s.P("        if (sub == nullptr) {");
            s.P("            w.WriteVarint(0);");
            s.P("        } else {");
            s.P("            w.WriteVarint((*wc.subs)[wc.cursor++]);");
            s.P("            Write_%d<S>(sub, w, wc);", e.sub_table);
            s.P("        }");
            break;
          default: {
            s.P("        %s v;", SlotType(e.mem_width));
            s.P("        std::memcpy(&v, obj + %uu, %u);", e.offset,
                e.mem_width);
            s.P("        w.WriteTag(%s);", tag.c_str());
            if (e.op == FieldOp::kBool)
                s.P("        w.WriteVarint(v != 0 ? 1u : 0u);");
            else if (e.wire_type == WireType::kFixed32)
                s.P("        w.WriteFixed32(v);");
            else if (e.wire_type == WireType::kFixed64)
                s.P("        w.WriteFixed64(v);");
            else
                s.P("        w.WriteVarint(%s);",
                    WireValueExpr(e.op, "v").c_str());
            break;
          }
        }
        s.P("    }");
        return;
    }

    const bool ptr_field =
        e.op == FieldOp::kString || e.op == FieldOp::kBytes ||
        e.op == FieldOp::kMessage;
    s.P("    {");
    if (ptr_field)
        s.P("        const RepeatedPtrField *rp = gensup::LoadRepPtr(obj, "
            "%uu);",
            e.offset);
    else
        s.P("        const RepeatedField *rp = gensup::LoadRep(obj, %uu);",
            e.offset);
    s.P("        if (rp != nullptr && rp->size > 0) {");
    s.P("            if constexpr (S)");
    s.P("                w.sink()->OnFieldDispatch();");
    s.P("            const uint32_t n = rp->size;");
    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
        s.P("            for (uint32_t i = 0; i < n; ++i) {");
        s.P("                const auto *sv = static_cast<const "
            "ArenaString *>(rp->data[i]);");
        s.P("                const size_t len = "
            "static_cast<size_t>(sv->size);");
        s.P("                w.WriteTag(%s);", tag.c_str());
        s.P("                w.WriteVarint(len);");
        s.P("                w.WriteBytes(sv->data_ptr, len);");
        s.P("            }");
        break;
      case FieldOp::kMessage:
        s.P("            for (uint32_t i = 0; i < n; ++i) {");
        s.P("                w.WriteTag(%s);", tag.c_str());
        s.P("                w.WriteVarint((*wc.subs)[wc.cursor++]);");
        s.P("                Write_%d<S>(static_cast<const char *>("
            "rp->data[i]), w, wc);",
            e.sub_table);
        s.P("            }");
        break;
      default: {
        s.P("            const char *base = static_cast<const char *>"
            "(rp->data);");
        if (e.packed()) {
            s.P("            w.WriteTag(%s);", tag.c_str());
            s.P("            w.WriteVarint((*wc.subs)[wc.cursor++]);");
        }
        s.P("            for (uint32_t i = 0; i < n; ++i) {");
        s.P("                %s v;", SlotType(e.mem_width));
        s.P("                std::memcpy(&v, base + %uu * i, %u);",
            e.mem_width, e.mem_width);
        if (!e.packed())
            s.P("                w.WriteTag(%s);", tag.c_str());
        if (e.op == FieldOp::kBool)
            s.P("                w.WriteVarint(v != 0 ? 1u : 0u);");
        else if (e.wire_type == WireType::kFixed32)
            s.P("                w.WriteFixed32(v);");
        else if (e.wire_type == WireType::kFixed64)
            s.P("                w.WriteFixed64(v);");
        else
            s.P("                w.WriteVarint(%s);",
                WireValueExpr(e.op, "v").c_str());
        s.P("            }");
        break;
      }
    }
    s.P("        }");
    s.P("    }");
}

void
EmitWrite(Src &s, const CodecTableSet &set, int k)
{
    const CodecTable &t = set.table(k);
    s.P("template <bool S>");
    s.P("void");
    s.P("Write_%d(const char *obj, gensup::GenWriter<S> &w, "
        "gensup::GenWriteCtx &wc)",
        k);
    s.P("{");
    s.P("    (void)obj;");
    s.P("    (void)wc;");
    s.P("    if constexpr (S)");
    s.P("        w.sink()->OnMessageBegin();");
    // Forward merge of preserved unknown records with known fields
    // (same interleaving as the reference and table serializers).
    s.P("    const UnknownFieldStore *u = gensup::LoadUnknown(obj, %uu);",
        t.desc->layout().unknown_offset);
    s.P("    uint32_t ucur = 0;");
    for (const CodecEntry &e : t.entries)
        EmitWriteField(s, t, k, e);
    s.P("    if (u != nullptr)");
    s.P("        gensup::EmitUnknownRest<S>(w, u, &ucur);");
    s.P("    if constexpr (S)");
    s.P("        w.sink()->OnMessageEnd();");
    s.P("}");
    s.P("");
}

// ---------------------------------------------------------------------
// Per-pool wrappers + registration
// ---------------------------------------------------------------------

void
EmitDispatch(Src &s, const CodecTableSet &set, uint64_t fp,
             std::string_view pool_name)
{
    const int n = static_cast<int>(set.table_count());

    s.P("template <bool S>");
    s.P("ParseStatus");
    s.P("ParseAny(int idx, gensup::GenParseCtx &c, const uint8_t *data,");
    s.P("         size_t len, char *obj)");
    s.P("{");
    s.P("    gensup::GenReader<S> r(data, data + len, c.sink);");
    s.P("    switch (idx) {");
    for (int k = 0; k < n; ++k)
        s.P("      case %d: return Parse_%d<S>(c, r, obj, 0);", k, k);
    s.P("    }");
    s.P("    PA_CHECK(false);");
    s.P("    return ParseStatus::kOk;");
    s.P("}");
    s.P("");
    s.P("template <bool S>");
    s.P("size_t");
    s.P("SizeAny(int idx, const char *obj, gensup::GenSizeCtx &c)");
    s.P("{");
    s.P("    switch (idx) {");
    for (int k = 0; k < n; ++k)
        s.P("      case %d: return Size_%d<S>(obj, c);", k, k);
    s.P("    }");
    s.P("    PA_CHECK(false);");
    s.P("    return 0;");
    s.P("}");
    s.P("");
    s.P("template <bool S>");
    s.P("void");
    s.P("WriteAny(int idx, const char *obj, gensup::GenWriter<S> &w,");
    s.P("         gensup::GenWriteCtx &wc)");
    s.P("{");
    s.P("    switch (idx) {");
    for (int k = 0; k < n; ++k)
        s.P("      case %d: Write_%d<S>(obj, w, wc); return;", k, k);
    s.P("    }");
    s.P("    PA_CHECK(false);");
    s.P("}");
    s.P("");

    // Entry points: exact table-engine semantics (parser.cc
    // ParseFromBuffer / serializer.cc ByteSize, SerializeToBuffer,
    // Serialize), with the sink-specialized instantiation chosen once.
    s.P("ParseStatus");
    s.P("DoParse(int idx, const uint8_t *data, size_t len, Message *msg,");
    s.P("        CostSink *sink, const ParseLimits *limits)");
    s.P("{");
    s.P("    PA_CHECK(msg != nullptr && msg->valid());");
    s.P("    gensup::GenParseCtx c{msg->arena(), &msg->pool(), sink,");
    s.P("                          UINT64_MAX, kMaxParseDepth};");
    s.P("    if (limits != nullptr) {");
    s.P("        if (limits->max_payload_bytes > 0 &&");
    s.P("            len > limits->max_payload_bytes)");
    s.P("            return ParseStatus::kResourceExhausted;");
    s.P("        if (limits->max_alloc_bytes > 0)");
    s.P("            c.budget = limits->max_alloc_bytes;");
    s.P("        if (limits->max_depth > 0)");
    s.P("            c.max_depth = static_cast<int>(limits->max_depth);");
    s.P("    }");
    s.P("    char *obj = static_cast<char *>(msg->raw());");
    s.P("    if (sink != nullptr)");
    s.P("        return ParseAny<true>(idx, c, data, len, obj);");
    s.P("    return ParseAny<false>(idx, c, data, len, obj);");
    s.P("}");
    s.P("");
    s.P("size_t");
    s.P("DoByteSize(int idx, const Message &msg, CostSink *sink)");
    s.P("{");
    s.P("    PA_CHECK(msg.valid());");
    s.P("    std::vector<size_t> &subs = gensup::GenScratchSizes();");
    s.P("    subs.clear();");
    s.P("    gensup::GenSizeCtx c{sink, &subs};");
    s.P("    const char *obj = static_cast<const char *>(msg.raw());");
    s.P("    return sink != nullptr ? SizeAny<true>(idx, obj, c)");
    s.P("                           : SizeAny<false>(idx, obj, c);");
    s.P("}");
    s.P("");
    s.P("template <bool S>");
    s.P("size_t");
    s.P("WritePass(int idx, const char *obj, uint8_t *buf, size_t cap,");
    s.P("          CostSink *sink, const std::vector<size_t> &subs)");
    s.P("{");
    s.P("    gensup::GenWriter<S> w(buf, cap, sink);");
    s.P("    gensup::GenWriteCtx wc{&subs, 0};");
    s.P("    WriteAny<S>(idx, obj, w, wc);");
    s.P("    PA_CHECK(w.ok());");
    s.P("    PA_CHECK_EQ(wc.cursor, subs.size());");
    s.P("    return w.written(buf);");
    s.P("}");
    s.P("");
    s.P("size_t");
    s.P("DoSerializeTo(int idx, const Message &msg, uint8_t *buf,");
    s.P("              size_t cap, CostSink *sink)");
    s.P("{");
    s.P("    PA_CHECK(msg.valid());");
    s.P("    std::vector<size_t> &subs = gensup::GenScratchSizes();");
    s.P("    subs.clear();");
    s.P("    gensup::GenSizeCtx sc{sink, &subs};");
    s.P("    const char *obj = static_cast<const char *>(msg.raw());");
    s.P("    const size_t size = sink != nullptr");
    s.P("                            ? SizeAny<true>(idx, obj, sc)");
    s.P("                            : SizeAny<false>(idx, obj, sc);");
    s.P("    if (size > cap)");
    s.P("        return 0;");
    s.P("    const size_t written =");
    s.P("        sink != nullptr");
    s.P("            ? WritePass<true>(idx, obj, buf, cap, sink, subs)");
    s.P("            : WritePass<false>(idx, obj, buf, cap, sink, subs);");
    s.P("    PA_CHECK_EQ(written, size);");
    s.P("    return written;");
    s.P("}");
    s.P("");
    s.P("size_t");
    s.P("DoSerialize(int idx, const Message &msg, std::vector<uint8_t> "
        "*out,");
    s.P("            CostSink *sink)");
    s.P("{");
    s.P("    PA_CHECK(msg.valid());");
    s.P("    std::vector<size_t> &subs = gensup::GenScratchSizes();");
    s.P("    subs.clear();");
    s.P("    gensup::GenSizeCtx sc{sink, &subs};");
    s.P("    const char *obj = static_cast<const char *>(msg.raw());");
    s.P("    const size_t size = sink != nullptr");
    s.P("                            ? SizeAny<true>(idx, obj, sc)");
    s.P("                            : SizeAny<false>(idx, obj, sc);");
    s.P("    out->assign(size, 0);");
    s.P("    if (size == 0)");
    s.P("        return 0;");
    s.P("    const size_t written =");
    s.P("        sink != nullptr");
    s.P("            ? WritePass<true>(idx, obj, out->data(), size, sink,");
    s.P("                              subs)");
    s.P("            : WritePass<false>(idx, obj, out->data(), size, sink,");
    s.P("                               subs);");
    s.P("    PA_CHECK_EQ(written, size);");
    s.P("    return written;");
    s.P("}");
    s.P("");
    s.P("const GeneratedPoolCodec kCodec = {");
    s.P("    0x%016llxull,", static_cast<unsigned long long>(fp));
    s.P("    \"%s\",", std::string(pool_name).c_str());
    s.P("    %d,", n);
    s.P("    &DoParse,");
    s.P("    &DoByteSize,");
    s.P("    &DoSerializeTo,");
    s.P("    &DoSerialize,");
    s.P("};");
    s.P("");
    s.P("[[maybe_unused]] const GeneratedCodecRegistrar kRegistrar("
        "&kCodec);");
}

}  // namespace

std::string
CodecFilePrologue(std::string_view banner)
{
    Src s;
    s.P("// Generated by codec_gen (%.*s). DO NOT EDIT.",
        static_cast<int>(banner.size()), banner.data());
    s.P("//");
    s.P("// Schema-specialized codecs: one namespace per source");
    s.P("// DescriptorPool, registered by structural fingerprint");
    s.P("// (see src/proto/codec_generated.h).");
    s.P("");
    s.P("#include \"common/check.h\"");
    s.P("#include \"proto/codec_gen_support.h\"");
    s.P("");
    return s.str();
}

std::string
GenerateCodecSource(const DescriptorPool &pool, std::string_view pool_name)
{
    PA_CHECK(pool.compiled());
    const CodecTableSet &set = GetCodecTables(pool);
    const uint64_t fp = SchemaFingerprint(pool);
    const int n = static_cast<int>(set.table_count());

    Src s;
    s.P("// pool \"%s\": %d message type(s), fingerprint %016llx",
        std::string(pool_name).c_str(), n,
        static_cast<unsigned long long>(fp));
    s.P("namespace protoacc::proto::gencodec::gc_%016llx {",
        static_cast<unsigned long long>(fp));
    s.P("namespace {");
    s.P("");

    // Default-string constants (singular string/bytes with non-empty
    // defaults; written when the slot is present-but-null).
    for (int k = 0; k < n; ++k) {
        for (const CodecEntry &e : set.table(k).entries) {
            if (e.repeated() ||
                (e.op != FieldOp::kString && e.op != FieldOp::kBytes) ||
                e.field->default_string.empty())
                continue;
            s.P("[[maybe_unused]] constexpr char %s[] = \"%s\";",
                DefName(k, e).c_str(),
                CEscape(e.field->default_string).c_str());
        }
    }

    // Lenient-path metadata, indexed by entry position.
    for (int k = 0; k < n; ++k) {
        const CodecTable &t = set.table(k);
        bool any_scalar = false;
        for (const CodecEntry &e : t.entries)
            any_scalar = any_scalar || IsScalarOp(e.op);
        if (!any_scalar)
            continue;
        s.P("[[maybe_unused]] constexpr gensup::GenFieldMeta "
            "kMeta_%d[] = {",
            k);
        for (const CodecEntry &e : t.entries) {
            s.P("    {FieldOp::%s, %u, %s, WireType::%s, %uu, %uu, "
                "0x%xu},",
                FieldOpName(e.op), e.mem_width,
                e.repeated() ? "true" : "false", WireTypeName(e.wire_type),
                e.offset, HasbitWordOffset(t, e), HasbitMask(e));
        }
        s.P("};");
    }
    s.P("");

    // Forward declarations (messages reference each other freely).
    for (int k = 0; k < n; ++k) {
        s.P("template <bool S>");
        s.P("ParseStatus Parse_%d(gensup::GenParseCtx &c, "
            "gensup::GenReader<S> &r, char *obj, int depth);",
            k);
        s.P("template <bool S>");
        s.P("size_t Size_%d(const char *obj, gensup::GenSizeCtx &c);", k);
        s.P("template <bool S>");
        s.P("void Write_%d(const char *obj, gensup::GenWriter<S> &w, "
            "gensup::GenWriteCtx &wc);",
            k);
    }
    s.P("");

    for (int k = 0; k < n; ++k) {
        EmitParse(s, set, k);
        EmitSize(s, set, k);
        EmitWrite(s, set, k);
    }

    EmitDispatch(s, set, fp, pool_name);

    s.P("");
    s.P("}  // namespace");
    s.P("}  // namespace protoacc::proto::gencodec::gc_%016llx",
        static_cast<unsigned long long>(fp));
    s.P("");
    return s.str();
}

}  // namespace protoacc::proto
