#include "proto/descriptor.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::proto {

int
MessageDescriptor::FieldIndexSlow(uint32_t number) const
{
    if (number_sorted_) {
        // Sparse numbering: binary search the number-sorted field list.
        int lo = 0, hi = static_cast<int>(fields_.size()) - 1;
        while (lo <= hi) {
            const int mid = (lo + hi) / 2;
            if (fields_[mid].number == number)
                return mid;
            if (fields_[mid].number < number)
                lo = mid + 1;
            else
                hi = mid - 1;
        }
        return -1;
    }
    // Pre-Compile: fields are in declaration order, scan linearly.
    for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].number == number)
            return static_cast<int>(i);
    }
    return -1;
}

const FieldDescriptor *
MessageDescriptor::FindFieldByName(std::string_view name) const
{
    for (const auto &f : fields_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

int
DescriptorPool::AddMessage(const std::string &name, Syntax syntax)
{
    PA_CHECK(!compiled_);
    PA_CHECK(by_name_.find(name) == by_name_.end());
    const int index = static_cast<int>(messages_.size());
    messages_.push_back(
        std::make_unique<MessageDescriptor>(name, index, syntax));
    by_name_[name] = index;
    return index;
}

void
DescriptorPool::AddField(int msg_index, const std::string &name,
                         uint32_t number, FieldType type, Label label,
                         bool packed)
{
    PA_CHECK(!compiled_);
    PA_CHECK_NE(type, FieldType::kMessage);
    PA_CHECK_GE(number, 1u);
    PA_CHECK_LE(number, kMaxFieldNumber);
    // Packed encoding only applies to repeated scalar fields.
    PA_CHECK(!packed || (label == Label::kRepeated && !IsBytesLike(type)));

    MessageDescriptor &msg = mutable_message(msg_index);
    PA_CHECK(msg.field_index_for_number(number) < 0);
    FieldDescriptor field;
    field.name = name;
    field.number = number;
    field.type = type;
    field.label = label;
    field.packed = packed;
    msg.fields_.push_back(std::move(field));
}

void
DescriptorPool::AddMessageField(int msg_index, const std::string &name,
                                uint32_t number, int sub_msg_index,
                                Label label)
{
    PA_CHECK(!compiled_);
    PA_CHECK_GE(number, 1u);
    PA_CHECK_GE(sub_msg_index, 0);
    PA_CHECK_LT(static_cast<size_t>(sub_msg_index), messages_.size());
    PA_CHECK_NE(label, Label::kRequired);  // keep sub-messages optional

    MessageDescriptor &msg = mutable_message(msg_index);
    PA_CHECK(msg.field_index_for_number(number) < 0);
    FieldDescriptor field;
    field.name = name;
    field.number = number;
    field.type = FieldType::kMessage;
    field.label = label;
    field.message_type = sub_msg_index;
    msg.fields_.push_back(std::move(field));
}

void
DescriptorPool::SetScalarDefault(int msg_index, uint32_t number,
                                 uint64_t bits)
{
    PA_CHECK(!compiled_);
    MessageDescriptor &msg = mutable_message(msg_index);
    for (auto &f : msg.fields_) {
        if (f.number == number) {
            PA_CHECK(!IsBytesLike(f.type) && f.type != FieldType::kMessage);
            PA_CHECK(f.label != Label::kRepeated);
            f.default_value = bits;
            return;
        }
    }
    PA_CHECK(false);
}

void
DescriptorPool::SetStringDefault(int msg_index, uint32_t number,
                                 std::string value)
{
    PA_CHECK(!compiled_);
    MessageDescriptor &msg = mutable_message(msg_index);
    for (auto &f : msg.fields_) {
        if (f.number == number) {
            PA_CHECK(IsBytesLike(f.type));
            PA_CHECK(f.label != Label::kRepeated);
            f.default_string = std::move(value);
            return;
        }
    }
    PA_CHECK(false);
}

void
DescriptorPool::Compile(HasbitsMode mode)
{
    PA_CHECK(!compiled_);
    for (auto &msg : messages_)
        CompileMessage(*msg, mode);
    for (auto &msg : messages_)
        BuildDefaultInstance(*msg);
    compiled_ = true;
}

void
DescriptorPool::CompileMessage(MessageDescriptor &msg, HasbitsMode mode)
{
    // Keep fields sorted by field number: the wire format, the ADT and
    // the serializer's reverse-order walk all index by number.
    std::sort(msg.fields_.begin(), msg.fields_.end(),
              [](const FieldDescriptor &a, const FieldDescriptor &b) {
                  return a.number < b.number;
              });
    for (size_t i = 0; i < msg.fields_.size(); ++i)
        msg.fields_[i].index = static_cast<int>(i);
    if (!msg.fields_.empty()) {
        msg.min_field_number_ = msg.fields_.front().number;
        msg.max_field_number_ = msg.fields_.back().number;
    }
    msg.number_sorted_ = true;

    // Field-number dispatch: direct-indexed array over [min, max] unless
    // the numbering is so sparse the table would be mostly gaps (then
    // FieldIndexSlow's binary search serves both lookup paths).
    msg.dense_lookup_.clear();
    const uint64_t range = msg.field_number_range();
    if (range > 0 &&
        (range <= 64 || range <= 8 * msg.fields_.size())) {
        msg.dense_lookup_.assign(range, -1);
        for (size_t i = 0; i < msg.fields_.size(); ++i) {
            msg.dense_lookup_[msg.fields_[i].number -
                              msg.min_field_number_] =
                static_cast<int32_t>(i);
        }
    }

    MessageLayout &layout = msg.layout_;
    layout.hasbits_mode = mode;

    // Number of presence bits: dense mode packs one bit per defined
    // field; sparse mode (the paper's modified library, §4.2) reserves
    // one bit per field number in [min, max] so hardware can index it
    // directly by (number - min).
    uint32_t hasbits = 0;
    if (!msg.fields_.empty()) {
        hasbits = mode == HasbitsMode::kDense
                      ? static_cast<uint32_t>(msg.fields_.size())
                      : msg.field_number_range();
    }
    layout.hasbits_words = static_cast<uint32_t>(CeilDiv(hasbits, 32));

    // Object layout: [cached_size u32][hasbits words][unknown-store
    // pointer][field slots].
    uint32_t offset = 0;
    layout.cached_size_offset = offset;
    offset += 4;
    layout.hasbits_offset = offset;
    offset += layout.hasbits_words * 4;

    // One 8-byte pointer slot per object for the unknown-field store
    // (unknown_fields.h). Zero in the default instance == no unknowns;
    // trivially-destructible arena data keeps objects memcpy-creatable.
    offset = static_cast<uint32_t>(AlignUp(offset, 8));
    layout.unknown_offset = offset;
    offset += 8;

    // Place 8-byte slots first, then 4, then 1, to minimize padding
    // (protoc performs the same kind of slot packing).
    for (uint32_t want : {8u, 4u, 1u}) {
        for (auto &f : msg.fields_) {
            const uint32_t size =
                f.repeated() ? 8u : InMemorySize(f.type);
            if (size != want)
                continue;
            offset = static_cast<uint32_t>(AlignUp(offset, size));
            f.offset = offset;
            offset += size;
        }
    }
    layout.object_size = static_cast<uint32_t>(AlignUp(offset, 8));
    if (layout.object_size == 0)
        layout.object_size = 8;  // empty message still needs an identity

    for (auto &f : msg.fields_) {
        f.hasbit_index = mode == HasbitsMode::kDense
                             ? static_cast<uint32_t>(f.index)
                             : f.number - msg.min_field_number_;
    }
}

void
DescriptorPool::BuildDefaultInstance(MessageDescriptor &msg)
{
    const uint32_t size = msg.layout_.object_size;
    msg.default_instance_ = std::make_unique<char[]>(size);
    std::memset(msg.default_instance_.get(), 0, size);
    for (const auto &f : msg.fields_) {
        if (f.repeated() || IsBytesLike(f.type) ||
            f.type == FieldType::kMessage || f.default_value == 0) {
            continue;
        }
        const uint32_t width = InMemorySize(f.type);
        std::memcpy(msg.default_instance_.get() + f.offset,
                    &f.default_value, width);
    }
}

const MessageDescriptor &
DescriptorPool::message(int index) const
{
    PA_CHECK_GE(index, 0);
    PA_CHECK_LT(static_cast<size_t>(index), messages_.size());
    return *messages_[index];
}

MessageDescriptor &
DescriptorPool::mutable_message(int index)
{
    PA_CHECK_GE(index, 0);
    PA_CHECK_LT(static_cast<size_t>(index), messages_.size());
    return *messages_[index];
}

int
DescriptorPool::FindMessage(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? -1 : it->second;
}

}  // namespace protoacc::proto
