/// @file Registry + pool resolution for generated codecs.

#include "proto/codec_generated.h"

#include <string_view>

#include "common/check.h"
#include "proto/descriptor.h"
#include "proto/message.h"

namespace protoacc::proto {

namespace {

/// Function-local static so registration from static initializers in
/// generated TUs is order-safe.
std::vector<const GeneratedPoolCodec *> &
Registry()
{
    static std::vector<const GeneratedPoolCodec *> codecs;
    return codecs;
}

/// FNV-1a accumulator with typed feeders. Length-prefixing strings
/// keeps adjacent variable-length fields from aliasing.
struct Fnv1a
{
    uint64_t h = 14695981039346656037ull;

    void
    Bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }
    void
    U64(uint64_t v)
    {
        Bytes(&v, sizeof(v));
    }
    void
    U32(uint32_t v)
    {
        Bytes(&v, sizeof(v));
    }
    void
    Str(std::string_view s)
    {
        U64(s.size());
        Bytes(s.data(), s.size());
    }
};

}  // namespace

const char *
SoftwareCodecEngineName(SoftwareCodecEngine engine)
{
    switch (engine) {
      case SoftwareCodecEngine::kReference:
        return "reference";
      case SoftwareCodecEngine::kTable:
        return "table";
      case SoftwareCodecEngine::kGenerated:
        return "generated";
    }
    return "unknown";
}

uint64_t
SchemaFingerprint(const DescriptorPool &pool)
{
    PA_CHECK(pool.compiled());
    Fnv1a f;
    // Version the hash: any change to what the generator specializes on
    // must bump this so stale codecs cannot silently match.
    f.Str("protoacc-gencodec-v1");
    f.U64(pool.message_count());
    for (size_t m = 0; m < pool.message_count(); ++m) {
        const MessageDescriptor &d = pool.message(static_cast<int>(m));
        const MessageLayout &l = d.layout();
        f.Str(d.name());
        f.U32(static_cast<uint32_t>(d.syntax()));
        f.U32(l.object_size);
        f.U32(l.hasbits_offset);
        f.U32(l.hasbits_words);
        f.U32(l.cached_size_offset);
        f.U32(static_cast<uint32_t>(l.hasbits_mode));
        f.U64(d.field_count());
        for (const FieldDescriptor &fd : d.fields()) {
            f.Str(fd.name);
            f.U32(fd.number);
            f.U32(static_cast<uint32_t>(fd.type));
            f.U32(static_cast<uint32_t>(fd.label));
            f.U32(fd.packed ? 1u : 0u);
            f.U32(static_cast<uint32_t>(fd.message_type));
            f.U64(fd.default_value);
            f.Str(fd.default_string);
            f.U32(fd.offset);
            f.U32(fd.hasbit_index);
        }
    }
    return f.h;
}

void
RegisterGeneratedCodec(const GeneratedPoolCodec *codec)
{
    PA_CHECK(codec != nullptr);
    // First registration wins; suites that share a pool recipe emit
    // identical code, so dropping duplicates is semantics-free.
    for (const GeneratedPoolCodec *c : Registry()) {
        if (c->fingerprint == codec->fingerprint)
            return;
    }
    Registry().push_back(codec);
}

const GeneratedPoolCodec *
FindGeneratedCodec(uint64_t fingerprint)
{
    for (const GeneratedPoolCodec *c : Registry()) {
        if (c->fingerprint == fingerprint)
            return c;
    }
    return nullptr;
}

const GeneratedPoolCodec *
GetGeneratedCodec(const DescriptorPool &pool)
{
    if (pool.generated_codec_resolved())
        return pool.generated_codec_cache();
    const GeneratedPoolCodec *codec =
        FindGeneratedCodec(SchemaFingerprint(pool));
    if (codec != nullptr)
        PA_CHECK_EQ(static_cast<size_t>(codec->message_count),
                    pool.message_count());
    pool.set_generated_codec_cache(codec);
    return codec;
}

size_t
GeneratedCodecCount()
{
    return Registry().size();
}

ParseStatus
GeneratedParseFromBuffer(const uint8_t *data, size_t len, Message *msg,
                         CostSink *sink, const ParseLimits *limits)
{
    PA_CHECK(msg != nullptr && msg->valid());
    const GeneratedPoolCodec *c = GetGeneratedCodec(msg->pool());
    PA_CHECK(c != nullptr);
    return c->parse(msg->descriptor().pool_index(), data, len, msg, sink,
                    limits);
}

size_t
GeneratedByteSize(const Message &msg, CostSink *sink)
{
    PA_CHECK(msg.valid());
    const GeneratedPoolCodec *c = GetGeneratedCodec(msg.pool());
    PA_CHECK(c != nullptr);
    return c->byte_size(msg.descriptor().pool_index(), msg, sink);
}

size_t
GeneratedSerializeToBuffer(const Message &msg, uint8_t *buf, size_t cap,
                           CostSink *sink)
{
    PA_CHECK(msg.valid());
    const GeneratedPoolCodec *c = GetGeneratedCodec(msg.pool());
    PA_CHECK(c != nullptr);
    return c->serialize_to(msg.descriptor().pool_index(), msg, buf, cap,
                           sink);
}

std::vector<uint8_t>
GeneratedSerialize(const Message &msg, CostSink *sink)
{
    PA_CHECK(msg.valid());
    const GeneratedPoolCodec *c = GetGeneratedCodec(msg.pool());
    PA_CHECK(c != nullptr);
    std::vector<uint8_t> out;
    c->serialize(msg.descriptor().pool_index(), msg, &out, sink);
    return out;
}

}  // namespace protoacc::proto
