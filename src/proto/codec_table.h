/**
 * @file
 * Table-driven codec programs: the software analog of the accelerator's
 * descriptor tables.
 *
 * The paper's hardware gets its speed by *compiling* each message type
 * once — into the Accelerator Descriptor Tables of §4.2 and the
 * field-handling tables of §4.4 — and then executing a flat,
 * table-described program per message instead of interpreting the schema
 * per field. This header brings the same idea to the software codec
 * (upb-style): DescriptorPool lowers into one CodecTable per message
 * type, each a flat array of CodecEntry "instructions" holding
 * pre-encoded tag bytes, a fused field-handling opcode, the in-memory
 * offset/hasbit location from MessageLayout, and a link to the
 * sub-message's table. The hot loops in parser.cc and serializer.cc run
 * entirely off these tables; tag dispatch goes through the same dense
 * field-number array (MessageDescriptor::field_index_for_number) that
 * backs FindFieldByNumber, so the fast and slow paths cannot disagree.
 *
 * Tables are compiled lazily, once per DescriptorPool, and cached on the
 * pool (DescriptorPool::codec_tables_cache), so SoftwareBackend, the
 * figure benches and codec_gbench all share one program set.
 */
#ifndef PROTOACC_PROTO_CODEC_TABLE_H
#define PROTOACC_PROTO_CODEC_TABLE_H

#include <vector>

#include "proto/descriptor.h"

namespace protoacc::proto {

/**
 * Fused field-handling opcode: field type and wire strategy folded into
 * one dense enum so the codec switches exactly once per field.
 */
enum class FieldOp : uint8_t {
    kFixed32,   ///< float / fixed32 / sfixed32
    kFixed64,   ///< double / fixed64 / sfixed64
    kInt32,     ///< int32 / enum: 4-byte slot, sign-extended on the wire
    kUint32,    ///< uint32: 4-byte slot, zero-extended
    kVarint64,  ///< int64 / uint64: 8-byte slot, identity
    kSint32,    ///< sint32: zig-zag, 4-byte slot
    kSint64,    ///< sint64: zig-zag, 8-byte slot
    kBool,      ///< bool: 1-byte slot, normalized to 0/1
    kString,    ///< string (UTF-8 validated when proto3)
    kBytes,     ///< bytes
    kMessage,   ///< sub-message
};

/**
 * One compiled field-handling instruction. Everything the hot loops
 * need is precomputed here; FieldDescriptor is only consulted on the
 * cold paths (default strings, sub-message construction).
 */
struct CodecEntry
{
    static constexpr uint8_t kFlagRepeated = 1u << 0;
    static constexpr uint8_t kFlagPacked = 1u << 1;
    /// proto3 string field: validate UTF-8 on parse (§7).
    static constexpr uint8_t kFlagUtf8 = 1u << 2;

    /// Wire tag as the serializer emits it (length-delimited for
    /// strings/bytes/messages/packed fields), pre-encoded as varint
    /// bytes. kMaxFieldNumber tags need at most 5 bytes.
    uint8_t tag_bytes[5];
    uint8_t tag_len = 0;
    FieldOp op = FieldOp::kFixed32;
    uint8_t flags = 0;
    /// In-memory slot width of one (element) value.
    uint8_t mem_width = 0;
    /// Wire type of one *element* value (unpacked encoding); differs
    /// from the tag's wire type for packed fields.
    WireType wire_type = WireType::kVarint;
    uint32_t number = 0;
    /// Byte offset of the field slot within the object (MessageLayout).
    uint32_t offset = 0;
    uint32_t hasbit_index = 0;
    /// Pool index of the sub-message type (kMessage only), else -1.
    int32_t sub_table = -1;
    /// Source descriptor entry (cold paths: defaults, Message API).
    const FieldDescriptor *field = nullptr;

    bool repeated() const { return flags & kFlagRepeated; }
    bool packed() const { return flags & kFlagPacked; }
    bool validate_utf8() const { return flags & kFlagUtf8; }
};

/**
 * The compiled program for one message type: its entries in
 * field-number order plus the layout facts the codec needs per message.
 */
struct CodecTable
{
    const MessageDescriptor *desc = nullptr;
    uint32_t hasbits_offset = 0;
    uint32_t cached_size_offset = 0;
    uint32_t object_size = 0;
    std::vector<CodecEntry> entries;

    /// Dispatch an incoming field number to its entry (nullptr for
    /// unknown fields). Shares MessageDescriptor's dense dispatch array.
    const CodecEntry *
    Find(uint32_t number) const
    {
        const int i = desc->field_index_for_number(number);
        return i < 0 ? nullptr : &entries[i];
    }
};

/// The compiled program set of a whole DescriptorPool.
class CodecTableSet
{
  public:
    explicit CodecTableSet(const DescriptorPool &pool);

    const CodecTable &
    table(int msg_index) const
    {
        return tables_[msg_index];
    }
    size_t table_count() const { return tables_.size(); }
    const DescriptorPool &pool() const { return *pool_; }

  private:
    const DescriptorPool *pool_;
    std::vector<CodecTable> tables_;
};

/**
 * Compile (once, lazily) and return the codec tables for @p pool. The
 * pool must be Compile()d. Not safe to race the first call from
 * multiple threads; invoke once up front when sharing a pool.
 */
const CodecTableSet &GetCodecTables(const DescriptorPool &pool);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_CODEC_TABLE_H
