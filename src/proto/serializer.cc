#include "proto/serializer.h"

#include <cstring>

#include "proto/codec_table.h"

// Table-driven serializer (see codec_table.h). Both passes walk the
// compiled CodecTable instead of FieldDescriptors: presence comes from a
// raw hasbits read, singular scalars load straight from the object slot,
// and tags are emitted from the entry's pre-encoded bytes. The sizing
// pass additionally memoizes every nested size it computes — sub-message
// payloads and packed payloads — in a scratch stack that the write pass
// consumes in the same traversal order, so SerializeToBuffer never
// re-walks a sub-message or re-sizes a packed run.
//
// The CostSink event stream is kept exactly identical to the reference
// interpreter (codec_reference.cc); codec_differential_test.cc checks
// both against each other.

namespace protoacc::proto {

namespace {

/// 64-bit value to put on the wire for a varint-typed field slot.
uint64_t
VarintWireValue(FieldOp op, uint64_t bits)
{
    switch (op) {
      case FieldOp::kInt32:
        // proto2 sign-extends negative int32/enum to 10-byte varints.
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(bits)));
      case FieldOp::kSint32:
        return ZigZagEncode32(static_cast<int32_t>(bits));
      case FieldOp::kSint64:
        return ZigZagEncode64(static_cast<int64_t>(bits));
      case FieldOp::kBool:
        return bits != 0 ? 1 : 0;
      default:
        return bits;
    }
}

/// Raw slot load of a singular scalar (presence already checked).
inline uint64_t
LoadScalarRaw(const Message &msg, const CodecEntry &e)
{
    const char *obj = static_cast<const char *>(msg.raw());
    uint64_t bits = 0;
    switch (e.mem_width) {
      case 1:
        std::memcpy(&bits, obj + e.offset, 1);
        break;
      case 4:
        std::memcpy(&bits, obj + e.offset, 4);
        break;
      default:
        std::memcpy(&bits, obj + e.offset, 8);
        break;
    }
    return bits;
}

/// Raw hasbit test (the unchecked form of Message::Has).
inline bool
HasRaw(const Message &msg, const CodecTable &t, const CodecEntry &e)
{
    const char *obj = static_cast<const char *>(msg.raw());
    const uint32_t *words =
        reinterpret_cast<const uint32_t *>(obj + t.hasbits_offset);
    return (words[e.hasbit_index >> 5] >> (e.hasbit_index & 31)) & 1u;
}

/// Scalar element bits out of a repeated field's backing store.
inline uint64_t
RepeatedElementBits(const RepeatedField *r, const CodecEntry &e,
                    uint32_t i)
{
    uint64_t bits = 0;
    std::memcpy(&bits, r->at(i, e.mem_width), e.mem_width);
    return bits;
}

size_t
ScalarValueSize(const CodecEntry &e, uint64_t bits)
{
    switch (e.wire_type) {
      case WireType::kVarint:
        return VarintSize(VarintWireValue(e.op, bits));
      case WireType::kFixed32:
        return 4;
      case WireType::kFixed64:
        return 8;
      default:
        PA_CHECK(false);
    }
}

size_t FieldByteSize(const Message &msg, const CodecTableSet &set,
                     const CodecEntry &e, CostSink *sink,
                     std::vector<size_t> &subs);

/**
 * Sizing pass. Walks the table, caches each message's payload size in
 * its cached-size slot (as upstream ByteSize does), and appends every
 * nested size computed along the way — sub-message payloads, packed-run
 * payloads — to @p subs in traversal (pre-)order.
 */
size_t
MessagePayloadSize(const Message &msg, const CodecTableSet &set,
                   const CodecTable &t, CostSink *sink,
                   std::vector<size_t> &subs)
{
    if (sink != nullptr)
        sink->OnByteSizeMessage();
    size_t total = 0;
    for (const CodecEntry &e : t.entries) {
        if (e.repeated()) {
            if (msg.RepeatedSize(*e.field) > 0)
                total += FieldByteSize(msg, set, e, sink, subs);
        } else if (HasRaw(msg, t, e)) {
            total += FieldByteSize(msg, set, e, sink, subs);
        }
        if (sink != nullptr)
            sink->OnHasbitsAccess(1);
    }
    // Preserved unknown records re-emit verbatim (no per-record size
    // events; the length is a stored constant — matches the reference).
    total += UnknownTotalBytes(msg.raw(),
                               msg.descriptor().layout().unknown_offset);
    msg.set_cached_size(static_cast<int32_t>(total));
    return total;
}

size_t
FieldByteSize(const Message &msg, const CodecTableSet &set,
              const CodecEntry &e, CostSink *sink,
              std::vector<size_t> &subs)
{
    if (sink != nullptr)
        sink->OnByteSizeField();
    const size_t tag_size = e.tag_len;

    if (!e.repeated()) {
        switch (e.op) {
          case FieldOp::kString:
          case FieldOp::kBytes: {
            const size_t len = msg.GetString(*e.field).size();
            return tag_size + VarintSize(len) + len;
          }
          case FieldOp::kMessage: {
            const Message sub = msg.GetMessage(*e.field);
            size_t len = 0;
            if (sub.valid()) {
                // Reserve the slot before recursing so the write pass
                // (same pre-order traversal) finds it before the
                // sub-message's own nested sizes.
                const size_t slot = subs.size();
                subs.push_back(0);
                len = MessagePayloadSize(sub, set,
                                         set.table(e.sub_table), sink,
                                         subs);
                subs[slot] = len;
            }
            return tag_size + VarintSize(len) + len;
          }
          default:
            return tag_size + ScalarValueSize(e, LoadScalarRaw(msg, e));
        }
    }

    const uint32_t n = msg.RepeatedSize(*e.field);
    size_t total = 0;
    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
        for (uint32_t i = 0; i < n; ++i) {
            const size_t len = msg.GetRepeatedString(*e.field, i).size();
            total += tag_size + VarintSize(len) + len;
        }
        return total;
      case FieldOp::kMessage: {
        const CodecTable &sub_t = set.table(e.sub_table);
        for (uint32_t i = 0; i < n; ++i) {
            const size_t slot = subs.size();
            subs.push_back(0);
            const size_t len = MessagePayloadSize(
                msg.GetRepeatedMessage(*e.field, i), set, sub_t, sink,
                subs);
            subs[slot] = len;
            total += tag_size + VarintSize(len) + len;
        }
        return total;
      }
      default:
        break;
    }
    const RepeatedField *r = msg.repeated_field(*e.field);
    size_t payload = 0;
    for (uint32_t i = 0; i < n; ++i)
        payload += ScalarValueSize(e, RepeatedElementBits(r, e, i));
    if (e.packed()) {
        subs.push_back(payload);
        return tag_size + VarintSize(payload) + payload;
    }
    return payload + static_cast<size_t>(n) * tag_size;
}

/**
 * Forward-order writer with cost instrumentation. The cursor only moves
 * forward; capacity was established by the sizing pass, so the fast
 * paths (fixed-width tag copy, in-place varint encode) only fall back to
 * bounded writes near the end of the buffer.
 */
class Writer
{
  public:
    Writer(uint8_t *buf, size_t cap, CostSink *sink)
        : p_(buf), end_(buf + cap), sink_(sink)
    {}

    bool ok() const { return ok_; }
    size_t written(const uint8_t *start) const { return p_ - start; }

    void
    WriteTag(const CodecEntry &e)
    {
        if (end_ - p_ >=
            static_cast<ptrdiff_t>(sizeof(e.tag_bytes))) {
            // Fixed-size copy the compiler lowers to one store; the
            // cursor only advances by the real tag length.
            std::memcpy(p_, e.tag_bytes, sizeof(e.tag_bytes));
            p_ += e.tag_len;
        } else if (Ensure(e.tag_len)) {
            std::memcpy(p_, e.tag_bytes, e.tag_len);
            p_ += e.tag_len;
        } else {
            return;
        }
        if (sink_ != nullptr)
            sink_->OnTagEncode(e.tag_len);
    }

    void
    WriteVarint(uint64_t v)
    {
        int n;
        if (end_ - p_ >= static_cast<ptrdiff_t>(kMaxVarintBytes)) {
            n = EncodeVarint(v, p_);
            p_ += n;
        } else {
            uint8_t tmp[kMaxVarintBytes];
            n = EncodeVarint(v, tmp);
            if (!Ensure(n))
                return;
            std::memcpy(p_, tmp, n);
            p_ += n;
        }
        if (sink_ != nullptr)
            sink_->OnVarintEncode(n);
    }

    void
    WriteFixed32(uint32_t v)
    {
        if (!Ensure(4))
            return;
        StoreFixed32(v, p_);
        p_ += 4;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(4);
    }

    void
    WriteFixed64(uint64_t v)
    {
        if (!Ensure(8))
            return;
        StoreFixed64(v, p_);
        p_ += 8;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(8);
    }

    void
    WriteBytes(const void *data, size_t n)
    {
        if (!Ensure(n))
            return;
        // Short runs (string payloads are mostly ≤16 B in the fleet
        // profile, §2) copy as two overlapping fixed-width stores so
        // the length never reaches a byte-loop or a memcpy dispatch.
        // All reads stay within [data, data + n).
        const uint8_t *s = static_cast<const uint8_t *>(data);
        if (n <= 16) {
            if (n >= 8) {
                uint64_t lo, hi;
                std::memcpy(&lo, s, 8);
                std::memcpy(&hi, s + n - 8, 8);
                std::memcpy(p_, &lo, 8);
                std::memcpy(p_ + n - 8, &hi, 8);
            } else if (n >= 4) {
                uint32_t lo, hi;
                std::memcpy(&lo, s, 4);
                std::memcpy(&hi, s + n - 4, 4);
                std::memcpy(p_, &lo, 4);
                std::memcpy(p_ + n - 4, &hi, 4);
            } else if (n > 0) {
                p_[0] = s[0];
                p_[n - 1] = s[n - 1];
                if (n == 3)
                    p_[1] = s[1];
            }
        } else {
            std::memcpy(p_, s, n);
        }
        p_ += n;
        if (sink_ != nullptr)
            sink_->OnMemcpy(n);
    }

    CostSink *sink() const { return sink_; }

  private:
    bool
    Ensure(size_t n)
    {
        if (p_ + n > end_) {
            ok_ = false;
            return false;
        }
        return ok_;
    }

    uint8_t *p_;
    uint8_t *end_;
    CostSink *sink_;
    bool ok_ = true;
};

void
WriteScalarValue(const CodecEntry &e, uint64_t bits, Writer &w)
{
    switch (e.wire_type) {
      case WireType::kVarint:
        w.WriteVarint(VarintWireValue(e.op, bits));
        break;
      case WireType::kFixed32:
        w.WriteFixed32(static_cast<uint32_t>(bits));
        break;
      case WireType::kFixed64:
        w.WriteFixed64(bits);
        break;
      default:
        PA_CHECK(false);
    }
}

void SerializeField(const Message &msg, const CodecTableSet &set,
                    const CodecEntry &e, Writer &w,
                    const std::vector<size_t> &subs, size_t &cursor);

/**
 * Write pass. Mirrors the sizing pass's traversal exactly; every nested
 * size is popped off @p subs instead of being recomputed or chased
 * through cached-size slots.
 */
void
SerializePayload(const Message &msg, const CodecTableSet &set,
                 const CodecTable &t, Writer &w,
                 const std::vector<size_t> &subs, size_t &cursor)
{
    if (w.sink() != nullptr)
        w.sink()->OnMessageBegin();
    // Forward merge of preserved unknown records (number-sorted, stable)
    // with known fields — identical interleaving to the reference
    // serializer, so round trips are byte-lossless.
    const UnknownFieldStore *u = msg.unknown_fields();
    uint32_t ucur = 0;
    for (const CodecEntry &e : t.entries) {
        if (u != nullptr) {
            while (ucur < u->count() &&
                   u->record(ucur).number < e.field->number) {
                const UnknownRecord &rec = u->record(ucur++);
                w.WriteBytes(u->bytes_of(rec), rec.size);
            }
        }
        if (w.sink() != nullptr)
            w.sink()->OnHasbitsAccess(1);
        if (e.repeated()) {
            if (msg.RepeatedSize(*e.field) > 0)
                SerializeField(msg, set, e, w, subs, cursor);
        } else if (HasRaw(msg, t, e)) {
            SerializeField(msg, set, e, w, subs, cursor);
        }
    }
    if (u != nullptr) {
        while (ucur < u->count()) {
            const UnknownRecord &rec = u->record(ucur++);
            w.WriteBytes(u->bytes_of(rec), rec.size);
        }
    }
    if (w.sink() != nullptr)
        w.sink()->OnMessageEnd();
}

void
SerializeField(const Message &msg, const CodecTableSet &set,
               const CodecEntry &e, Writer &w,
               const std::vector<size_t> &subs, size_t &cursor)
{
    if (w.sink() != nullptr)
        w.sink()->OnFieldDispatch();

    if (!e.repeated()) {
        switch (e.op) {
          case FieldOp::kString:
          case FieldOp::kBytes: {
            const std::string_view s = msg.GetString(*e.field);
            w.WriteTag(e);
            w.WriteVarint(s.size());
            w.WriteBytes(s.data(), s.size());
            return;
          }
          case FieldOp::kMessage: {
            const Message sub = msg.GetMessage(*e.field);
            w.WriteTag(e);
            if (!sub.valid()) {
                w.WriteVarint(0);
                return;
            }
            w.WriteVarint(subs[cursor++]);
            SerializePayload(sub, set, set.table(e.sub_table), w, subs,
                             cursor);
            return;
          }
          default:
            w.WriteTag(e);
            WriteScalarValue(e, LoadScalarRaw(msg, e), w);
            return;
        }
    }

    const uint32_t n = msg.RepeatedSize(*e.field);
    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
        for (uint32_t i = 0; i < n; ++i) {
            const std::string_view s = msg.GetRepeatedString(*e.field, i);
            w.WriteTag(e);
            w.WriteVarint(s.size());
            w.WriteBytes(s.data(), s.size());
        }
        return;
      case FieldOp::kMessage: {
        const CodecTable &sub_t = set.table(e.sub_table);
        for (uint32_t i = 0; i < n; ++i) {
            const Message sub = msg.GetRepeatedMessage(*e.field, i);
            w.WriteTag(e);
            w.WriteVarint(subs[cursor++]);
            SerializePayload(sub, set, sub_t, w, subs, cursor);
        }
        return;
      }
      default:
        break;
    }
    const RepeatedField *r = msg.repeated_field(*e.field);
    if (e.packed()) {
        w.WriteTag(e);
        w.WriteVarint(subs[cursor++]);
        for (uint32_t i = 0; i < n; ++i)
            WriteScalarValue(e, RepeatedElementBits(r, e, i), w);
        return;
    }
    for (uint32_t i = 0; i < n; ++i) {
        w.WriteTag(e);
        WriteScalarValue(e, RepeatedElementBits(r, e, i), w);
    }
}

/// Reusable scratch stack for the memoized nested sizes. The sizing and
/// write passes of one serialization run back-to-back on one thread, so
/// a thread-local survives between them without allocation churn.
std::vector<size_t> &
ScratchSizes()
{
    thread_local std::vector<size_t> sizes;
    return sizes;
}

}  // namespace

size_t
ByteSize(const Message &msg, CostSink *sink)
{
    PA_CHECK(msg.valid());
    const CodecTableSet &set = GetCodecTables(msg.pool());
    const CodecTable &t = set.table(msg.descriptor().pool_index());
    std::vector<size_t> &subs = ScratchSizes();
    subs.clear();
    return MessagePayloadSize(msg, set, t, sink, subs);
}

size_t
SerializeToBuffer(const Message &msg, uint8_t *buf, size_t cap,
                  CostSink *sink)
{
    PA_CHECK(msg.valid());
    const CodecTableSet &set = GetCodecTables(msg.pool());
    const CodecTable &t = set.table(msg.descriptor().pool_index());
    std::vector<size_t> &subs = ScratchSizes();
    subs.clear();
    const size_t size = MessagePayloadSize(msg, set, t, sink, subs);
    if (size > cap)
        return 0;
    Writer w(buf, cap, sink);
    size_t cursor = 0;
    SerializePayload(msg, set, t, w, subs, cursor);
    PA_CHECK(w.ok());
    PA_CHECK_EQ(cursor, subs.size());
    const size_t written = w.written(buf);
    PA_CHECK_EQ(written, size);
    return written;
}

std::vector<uint8_t>
Serialize(const Message &msg, CostSink *sink)
{
    PA_CHECK(msg.valid());
    const CodecTableSet &set = GetCodecTables(msg.pool());
    const CodecTable &t = set.table(msg.descriptor().pool_index());
    std::vector<size_t> &subs = ScratchSizes();
    subs.clear();
    const size_t size = MessagePayloadSize(msg, set, t, sink, subs);
    std::vector<uint8_t> out(size);
    if (size == 0)
        return out;
    Writer w(out.data(), out.size(), sink);
    size_t cursor = 0;
    SerializePayload(msg, set, t, w, subs, cursor);
    PA_CHECK(w.ok());
    PA_CHECK_EQ(cursor, subs.size());
    PA_CHECK_EQ(w.written(out.data()), size);
    return out;
}

int
VarintValueSize(FieldType type, uint64_t bits)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
        return VarintSize(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(bits))));
      case FieldType::kSint32:
        return VarintSize(ZigZagEncode32(static_cast<int32_t>(bits)));
      case FieldType::kSint64:
        return VarintSize(ZigZagEncode64(static_cast<int64_t>(bits)));
      case FieldType::kBool:
        return 1;
      default:
        return VarintSize(bits);
    }
}

int
EncodeVarintValue(FieldType type, uint64_t bits, uint8_t *out)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
        return EncodeVarint(
            static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int32_t>(bits))),
            out);
      case FieldType::kSint32:
        return EncodeVarint(ZigZagEncode32(static_cast<int32_t>(bits)),
                            out);
      case FieldType::kSint64:
        return EncodeVarint(ZigZagEncode64(static_cast<int64_t>(bits)),
                            out);
      case FieldType::kBool:
        out[0] = bits != 0 ? 1 : 0;
        return 1;
      default:
        return EncodeVarint(bits, out);
    }
}

}  // namespace protoacc::proto
