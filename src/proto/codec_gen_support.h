/**
 * @file
 * Runtime support for schema-specialized generated codecs.
 *
 * The code emitted by codec_gen.{h,cc} is straight-line C++ per message
 * type: constant offsets, pre-encoded tags, inlined hasbit stores. This
 * header provides the small runtime kernel that code leans on — a
 * bounded reader/writer pair, arena-backed store/append helpers that
 * replicate Message's mutation semantics without the checked accessor
 * layer, and the lenient wire-type fallback paths that keep the
 * generated engine's accept/reject verdicts byte-identical to the
 * reference and table engines (parser.cc / codec_reference.cc).
 *
 * Everything event-emitting is templated on `S` (sink attached): the
 * generated functions are instantiated twice, once with the full
 * CostSink event stream (modeled-cycle parity with the table engine)
 * and once with every instrumentation branch compiled out (the host
 * wall-clock fast path).
 */
#ifndef PROTOACC_PROTO_CODEC_GEN_SUPPORT_H
#define PROTOACC_PROTO_CODEC_GEN_SUPPORT_H

#include <cstring>
#include <vector>

#include "proto/codec_generated.h"
#include "proto/codec_table.h"
#include "proto/message.h"
#include "proto/parser.h"
#include "proto/utf8.h"

namespace protoacc::proto::gensup {

/**
 * Limit + allocation state threaded through one generated parse.
 * Charge points mirror parser.cc's ParseCtl exactly (string payload
 * bytes, sub-message object_size, element width per repeated element).
 */
struct GenParseCtx
{
    Arena *arena = nullptr;
    const DescriptorPool *pool = nullptr;
    CostSink *sink = nullptr;
    uint64_t budget = UINT64_MAX;
    int max_depth = kMaxParseDepth;

    bool
    Charge(uint64_t n)
    {
        if (n > budget)
            return false;
        budget -= n;
        return true;
    }
};

/**
 * Bounded input cursor. Identical event semantics to parser.cc's
 * Reader; the extra TryTag fast paths implement protoc-style
 * expected-next-tag chaining (a 1-2 byte constant compare instead of a
 * full varint decode + dispatch when messages arrive in schema order).
 */
template <bool S>
class GenReader
{
  public:
    GenReader(const uint8_t *p, const uint8_t *end, CostSink *sink)
        : p_(p), end_(end), sink_(sink)
    {}

    bool at_end() const { return p_ >= end_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }
    const uint8_t *pos() const { return p_; }
    void Advance(size_t n) { p_ += n; }

    bool
    ReadTag(uint64_t *v)
    {
        const int n = DecodeVarint(p_, end_, v);
        if (n == 0)
            return false;
        p_ += n;
        if constexpr (S)
            sink_->OnTagDecode(n);
        return true;
    }

    bool
    ReadVal(uint64_t *v)
    {
        const int n = DecodeVarint(p_, end_, v);
        if (n == 0)
            return false;
        p_ += n;
        if constexpr (S)
            sink_->OnVarintDecode(n);
        return true;
    }

    bool
    ReadFixed32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = LoadFixed32(p_);
        p_ += 4;
        if constexpr (S)
            sink_->OnFixedCopy(4);
        return true;
    }

    bool
    ReadFixed64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = LoadFixed64(p_);
        p_ += 8;
        if constexpr (S)
            sink_->OnFixedCopy(8);
        return true;
    }

    bool
    Skip(size_t n)
    {
        if (remaining() < n)
            return false;
        p_ += n;
        return true;
    }

    /// Expected-tag chaining: consume a known 1-byte tag if it is next.
    /// Non-canonical (multi-byte) encodings of the same tag value fail
    /// the compare and fall back to the generic dispatch decode, which
    /// handles them exactly as the table engine does.
    bool
    TryTag1(uint8_t b)
    {
        if (p_ < end_ && *p_ == b) {
            ++p_;
            if constexpr (S)
                sink_->OnTagDecode(1);
            return true;
        }
        return false;
    }

    /// Expected-tag chaining: consume a known 2-byte tag if it is next.
    bool
    TryTag2(uint8_t b0, uint8_t b1)
    {
        if (end_ - p_ >= 2 && p_[0] == b0 && p_[1] == b1) {
            p_ += 2;
            if constexpr (S)
                sink_->OnTagDecode(2);
            return true;
        }
        return false;
    }

    CostSink *sink() const { return sink_; }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    CostSink *sink_;
};

// ---------------------------------------------------------------------
// Raw object mutation (the unchecked forms of Message's accessors; the
// layout was validated when the pool compiled).
// ---------------------------------------------------------------------

inline void
SetHasBit(char *obj, uint32_t word_offset, uint32_t mask)
{
    uint32_t w;
    std::memcpy(&w, obj + word_offset, 4);
    w |= mask;
    std::memcpy(obj + word_offset, &w, 4);
}

inline bool
TestHasBit(const char *obj, uint32_t word_offset, uint32_t mask)
{
    uint32_t w;
    std::memcpy(&w, obj + word_offset, 4);
    return (w & mask) != 0;
}

inline RepeatedField *
EnsureRepeated(GenParseCtx &c, char *obj, uint32_t off)
{
    RepeatedField *r;
    std::memcpy(&r, obj + off, sizeof(r));
    if (r == nullptr) {
        r = RepeatedField::Create(c.arena);
        std::memcpy(obj + off, &r, sizeof(r));
    }
    return r;
}

/// Message::AddRepeatedBits without the descriptor round-trip.
inline void
AppendBits(GenParseCtx &c, char *obj, uint32_t off, uint32_t word_offset,
           uint32_t mask, uint64_t bits, uint32_t width)
{
    EnsureRepeated(c, obj, off)->Append(c.arena, &bits, width);
    SetHasBit(obj, word_offset, mask);
}

/// Message::SetString semantics: reuse the existing ArenaString (and
/// its heap buffer) when present, else create one in the arena.
inline void
SetStringValue(GenParseCtx &c, char *obj, uint32_t off, const char *data,
               size_t len)
{
    ArenaString *s;
    std::memcpy(&s, obj + off, sizeof(s));
    if (s == nullptr) {
        s = ArenaString::Create(c.arena, std::string_view(data, len));
        std::memcpy(obj + off, &s, sizeof(s));
    } else {
        s->Assign(c.arena, std::string_view(data, len));
    }
}

inline void
AppendString(GenParseCtx &c, char *obj, uint32_t off, const char *data,
             size_t len)
{
    RepeatedPtrField *r;
    std::memcpy(&r, obj + off, sizeof(r));
    if (r == nullptr) {
        r = RepeatedPtrField::Create(c.arena);
        std::memcpy(obj + off, &r, sizeof(r));
    }
    r->Append(c.arena,
              ArenaString::Create(c.arena, std::string_view(data, len)));
}

/// Message::Create without the handle: default-instance memcpy.
inline char *
CreateObject(GenParseCtx &c, int msg_index, uint32_t object_size)
{
    void *obj = c.arena->Allocate(object_size, 8);
    std::memcpy(obj, c.pool->message(msg_index).default_instance(),
                object_size);
    return static_cast<char *>(obj);
}

/// Message::MutableMessage minus the hasbit (the caller sets it).
inline char *
GetOrCreateSub(GenParseCtx &c, char *obj, uint32_t off, int msg_index,
               uint32_t object_size)
{
    char *sub;
    std::memcpy(&sub, obj + off, sizeof(sub));
    if (sub == nullptr) {
        sub = CreateObject(c, msg_index, object_size);
        std::memcpy(obj + off, &sub, sizeof(sub));
    }
    return sub;
}

/// Message::AddRepeatedMessage minus the hasbit.
inline char *
AppendSub(GenParseCtx &c, char *obj, uint32_t off, int msg_index,
          uint32_t object_size)
{
    RepeatedPtrField *r;
    std::memcpy(&r, obj + off, sizeof(r));
    if (r == nullptr) {
        r = RepeatedPtrField::Create(c.arena);
        std::memcpy(obj + off, &r, sizeof(r));
    }
    char *sub = CreateObject(c, msg_index, object_size);
    r->Append(c.arena, sub);
    return sub;
}

// ---------------------------------------------------------------------
// Lenient wire-type fallbacks (parser.cc's ParseScalar /
// ParsePackedRepeated leniency, reached when an incoming tag's wire
// type differs from the schema's expected encoding).
// ---------------------------------------------------------------------

/// Per-field constants for the out-of-line lenient paths. The fast
/// paths inline all of this; only wire-type-mismatch traffic (rare,
/// hostile or schema-skew inputs) takes the meta-driven route.
struct GenFieldMeta
{
    FieldOp op;
    uint8_t mem_width;
    bool repeated;
    WireType elem_wire_type;
    uint32_t offset;
    uint32_t hasbit_word_offset;
    uint32_t hasbit_mask;
};

/// parser.cc's VarintMemoryValue.
inline uint64_t
GenVarintMemoryValue(FieldOp op, uint64_t wire)
{
    switch (op) {
      case FieldOp::kInt32:
      case FieldOp::kUint32:
        return static_cast<uint32_t>(wire);
      case FieldOp::kSint32:
        return static_cast<uint32_t>(
            ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldOp::kSint64:
        return static_cast<uint64_t>(ZigZagDecode64(wire));
      case FieldOp::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

/// parser.cc's ParseScalar: decode one scalar value by @p wt (any of
/// the three scalar wire types is accepted regardless of the declared
/// type) and store/append it.
template <bool S>
ParseStatus
LenientScalarOne(GenParseCtx &c, GenReader<S> &r, char *obj,
                 const GenFieldMeta &m, WireType wt)
{
    uint64_t bits;
    switch (wt) {
      case WireType::kVarint: {
        uint64_t wire;
        if (!r.ReadVal(&wire))
            return ParseStatus::kMalformedVarint;
        bits = GenVarintMemoryValue(m.op, wire);
        break;
      }
      case WireType::kFixed32: {
        uint32_t v;
        if (!r.ReadFixed32(&v))
            return ParseStatus::kTruncated;
        bits = v;
        break;
      }
      case WireType::kFixed64: {
        if (!r.ReadFixed64(&bits))
            return ParseStatus::kTruncated;
        break;
      }
      default:
        return ParseStatus::kInvalidWireType;
    }
    if (m.repeated) {
        if (!c.Charge(m.mem_width))
            return ParseStatus::kResourceExhausted;
        AppendBits(c, obj, m.offset, m.hasbit_word_offset, m.hasbit_mask,
                   bits, m.mem_width);
    } else {
        std::memcpy(obj + m.offset, &bits, m.mem_width);
        SetHasBit(obj, m.hasbit_word_offset, m.hasbit_mask);
    }
    return ParseStatus::kOk;
}

/// parser.cc's ParsePackedRepeated: a length-delimited run of scalar
/// elements for a field whose schema says unpacked (or packed — the
/// packed fast path inlines this shape; the fallback serves unpacked
/// fields receiving packed data).
template <bool S>
ParseStatus
LenientPacked(GenParseCtx &c, GenReader<S> &r, char *obj,
              const GenFieldMeta &m)
{
    uint64_t len;
    if (!r.ReadVal(&len))
        return ParseStatus::kMalformedVarint;
    if (r.remaining() < len)
        return ParseStatus::kTruncated;
    GenReader<S> body(r.pos(), r.pos() + len, r.sink());
    r.Advance(static_cast<size_t>(len));
    while (!body.at_end()) {
        const ParseStatus st =
            LenientScalarOne(c, body, obj, m, m.elem_wire_type);
        if (st != ParseStatus::kOk)
            return st;
    }
    return ParseStatus::kOk;
}

/// The full wire-type-mismatch fallback for one field (the caller has
/// already emitted OnFieldDispatch). Bytes-like and message fields
/// require length-delimited encoding; scalars are lenient.
template <bool S>
ParseStatus
LenientField(GenParseCtx &c, GenReader<S> &r, char *obj,
             const GenFieldMeta &m, uint32_t wt)
{
    switch (m.op) {
      case FieldOp::kString:
      case FieldOp::kBytes:
      case FieldOp::kMessage:
        return ParseStatus::kInvalidWireType;
      default:
        break;
    }
    const WireType w = static_cast<WireType>(wt);
    if (m.repeated && w == WireType::kLengthDelimited &&
        m.elem_wire_type != WireType::kLengthDelimited)
        return LenientPacked(c, r, obj, m);
    return LenientScalarOne(c, r, obj, m, w);
}

/// parser.cc's SkipUnknown.
template <bool S>
ParseStatus
SkipUnknownField(GenReader<S> &r, uint32_t wt)
{
    switch (static_cast<WireType>(wt)) {
      case WireType::kVarint: {
        uint64_t v;
        return r.ReadVal(&v) ? ParseStatus::kOk
                             : ParseStatus::kMalformedVarint;
      }
      case WireType::kFixed64:
        return r.Skip(8) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kFixed32:
        return r.Skip(4) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kLengthDelimited: {
        uint64_t len;
        if (!r.ReadVal(&len))
            return ParseStatus::kMalformedVarint;
        return r.Skip(static_cast<size_t>(len))
                   ? ParseStatus::kOk
                   : ParseStatus::kTruncated;
      }
      default:
        // Groups (deprecated) and invalid wire types.
        return ParseStatus::kInvalidWireType;
    }
}

/// parser.cc's unknown-field handling: skip (validating) then preserve
/// the raw record — identical budget charge and cost events.
template <bool S>
ParseStatus
PreserveUnknownField(GenParseCtx &c, GenReader<S> &r, char *obj,
                     uint32_t unknown_off, const uint8_t *tag_start,
                     uint32_t number, uint32_t wt)
{
    const ParseStatus st = SkipUnknownField(r, wt);
    if (st != ParseStatus::kOk)
        return st;
    const uint32_t rec_len =
        static_cast<uint32_t>(r.pos() - tag_start);
    if (!c.Charge(rec_len))
        return ParseStatus::kResourceExhausted;
    UnknownFieldStore *store = UnknownFieldStore::GetOrCreate(
        obj, unknown_off, c.arena, c.sink);
    store->Add(c.arena, number, tag_start, rec_len, c.sink);
    return ParseStatus::kOk;
}

// ---------------------------------------------------------------------
// Serialization side.
// ---------------------------------------------------------------------

/// Sizing-pass state: the cost sink plus the pre-order memoized nested
/// sizes the write pass consumes (same protocol as serializer.cc).
struct GenSizeCtx
{
    CostSink *sink = nullptr;
    std::vector<size_t> *subs = nullptr;
};

/// Write-pass cursor over the memoized nested sizes.
struct GenWriteCtx
{
    const std::vector<size_t> *subs = nullptr;
    size_t cursor = 0;
};

inline const ArenaString *
LoadStr(const char *obj, uint32_t off)
{
    const ArenaString *s;
    std::memcpy(&s, obj + off, sizeof(s));
    return s;
}

inline const char *
LoadPtr(const char *obj, uint32_t off)
{
    const char *p;
    std::memcpy(&p, obj + off, sizeof(p));
    return p;
}

inline const RepeatedField *
LoadRep(const char *obj, uint32_t off)
{
    const RepeatedField *r;
    std::memcpy(&r, obj + off, sizeof(r));
    return r;
}

inline const RepeatedPtrField *
LoadRepPtr(const char *obj, uint32_t off)
{
    const RepeatedPtrField *r;
    std::memcpy(&r, obj + off, sizeof(r));
    return r;
}

/// Message::set_cached_size on a const view (the slot is mutable by
/// contract, as in upstream protobuf's ByteSize).
inline void
StoreCachedSize(const char *obj, uint32_t off, size_t total)
{
    const int32_t v = static_cast<int32_t>(total);
    std::memcpy(const_cast<char *>(obj) + off, &v, 4);
}

/**
 * Forward-order output cursor. Same contract as serializer.cc's
 * Writer: capacity was established by the sizing pass, bounded writes
 * only trigger near the buffer end. Tags are written from bytes that
 * are compile-time constants in the generated code.
 */
template <bool S>
class GenWriter
{
  public:
    GenWriter(uint8_t *buf, size_t cap, CostSink *sink)
        : p_(buf), end_(buf + cap), sink_(sink)
    {}

    bool ok() const { return ok_; }
    size_t written(const uint8_t *start) const
    {
        return static_cast<size_t>(p_ - start);
    }
    CostSink *sink() const { return sink_; }

    /// Write a pre-encoded tag (1-5 constant bytes).
    template <typename... B>
    void
    WriteTag(B... bytes)
    {
        constexpr unsigned n = sizeof...(bytes);
        static_assert(n >= 1 && n <= 5, "tags are 1-5 bytes");
        if (!Ensure(n))
            return;
        const uint8_t tmp[n] = {static_cast<uint8_t>(bytes)...};
        std::memcpy(p_, tmp, n);
        p_ += n;
        if constexpr (S)
            sink_->OnTagEncode(n);
    }

    void
    WriteVarint(uint64_t v)
    {
        int n;
        if (end_ - p_ >= static_cast<ptrdiff_t>(kMaxVarintBytes)) {
            n = EncodeVarint(v, p_);
            p_ += n;
        } else {
            uint8_t tmp[kMaxVarintBytes];
            n = EncodeVarint(v, tmp);
            if (!Ensure(static_cast<size_t>(n)))
                return;
            std::memcpy(p_, tmp, static_cast<size_t>(n));
            p_ += n;
        }
        if constexpr (S)
            sink_->OnVarintEncode(n);
    }

    void
    WriteFixed32(uint32_t v)
    {
        if (!Ensure(4))
            return;
        StoreFixed32(v, p_);
        p_ += 4;
        if constexpr (S)
            sink_->OnFixedCopy(4);
    }

    void
    WriteFixed64(uint64_t v)
    {
        if (!Ensure(8))
            return;
        StoreFixed64(v, p_);
        p_ += 8;
        if constexpr (S)
            sink_->OnFixedCopy(8);
    }

    void
    WriteBytes(const void *data, size_t n)
    {
        if (!Ensure(n))
            return;
        const char *s = static_cast<const char *>(data);
        if (n <= 16) {
            // Short strings dominate fleet traffic (§3.4): copy with
            // two overlapping fixed-width moves instead of a memcpy
            // call. Reads stay inside [s, s+n) — source buffers are
            // sized exactly (ArenaString heap buffers are len+1).
            if (n >= 8) {
                std::memcpy(p_, s, 8);
                std::memcpy(p_ + n - 8, s + n - 8, 8);
            } else if (n >= 4) {
                std::memcpy(p_, s, 4);
                std::memcpy(p_ + n - 4, s + n - 4, 4);
            } else if (n > 0) {
                p_[0] = static_cast<uint8_t>(s[0]);
                p_[n - 1] = static_cast<uint8_t>(s[n - 1]);
                if (n == 3)
                    p_[1] = static_cast<uint8_t>(s[1]);
            }
        } else {
            std::memcpy(p_, s, n);
        }
        p_ += n;
        if constexpr (S)
            sink_->OnMemcpy(n);
    }

  private:
    bool
    Ensure(size_t n)
    {
        if (p_ + n > end_) {
            ok_ = false;
            return false;
        }
        return ok_;
    }

    uint8_t *p_;
    uint8_t *end_;
    CostSink *sink_;
    bool ok_ = true;
};

/// Unknown-store pointer slot load (layout().unknown_offset).
inline const UnknownFieldStore *
LoadUnknown(const char *obj, uint32_t off)
{
    const UnknownFieldStore *u;
    std::memcpy(&u, obj + off, sizeof(u));
    return u;
}

/// Sizing contribution of the preserved unknown records (eventless —
/// the byte total is a stored constant, matching the other engines).
inline size_t
UnknownBytes(const char *obj, uint32_t off)
{
    const UnknownFieldStore *u = LoadUnknown(obj, off);
    return u == nullptr ? 0 : u->total_bytes();
}

/// Forward merge: emit preserved records with field number < @p limit,
/// advancing @p cursor (records are number-sorted, stable).
template <bool S>
inline void
EmitUnknownBelow(GenWriter<S> &w, const UnknownFieldStore *u,
                 uint32_t *cursor, uint32_t limit)
{
    while (*cursor < u->count() && u->record(*cursor).number < limit) {
        const UnknownRecord &rec = u->record((*cursor)++);
        w.WriteBytes(u->bytes_of(rec), rec.size);
    }
}

/// Forward merge tail: emit every record not yet emitted.
template <bool S>
inline void
EmitUnknownRest(GenWriter<S> &w, const UnknownFieldStore *u,
                uint32_t *cursor)
{
    while (*cursor < u->count()) {
        const UnknownRecord &rec = u->record((*cursor)++);
        w.WriteBytes(u->bytes_of(rec), rec.size);
    }
}

/// Reusable scratch stack for the memoized nested sizes (the generated
/// engine's analog of serializer.cc's ScratchSizes).
inline std::vector<size_t> &
GenScratchSizes()
{
    thread_local std::vector<size_t> sizes;
    return sizes;
}

}  // namespace protoacc::proto::gensup

#endif  // PROTOACC_PROTO_CODEC_GEN_SUPPORT_H
