#include "proto/text_format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace protoacc::proto {

namespace {

void
AppendScalar(std::string &out, FieldType type, uint64_t bits)
{
    char buf[64];
    switch (type) {
      case FieldType::kDouble: {
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        std::snprintf(buf, sizeof(buf), "%g", v);
        break;
      }
      case FieldType::kFloat: {
        const uint32_t b32 = static_cast<uint32_t>(bits);
        float v;
        std::memcpy(&v, &b32, sizeof(v));
        std::snprintf(buf, sizeof(buf), "%g", v);
        break;
      }
      case FieldType::kInt32:
      case FieldType::kSint32:
      case FieldType::kSfixed32:
      case FieldType::kEnum:
        std::snprintf(buf, sizeof(buf), "%d",
                      static_cast<int32_t>(bits));
        break;
      case FieldType::kInt64:
      case FieldType::kSint64:
      case FieldType::kSfixed64:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(bits));
        break;
      case FieldType::kBool:
        std::snprintf(buf, sizeof(buf), "%s",
                      bits != 0 ? "true" : "false");
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(bits));
        break;
    }
    out += buf;
}

void
AppendString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c >= 0x20 && c < 0x7f) {
            out += c;
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        }
    }
    out += '"';
}

void
AppendMessage(std::string &out, const Message &msg, int indent)
{
    const std::string pad(indent * 2, ' ');
    for (const auto &f : msg.descriptor().fields()) {
        if (f.repeated()) {
            const uint32_t n = msg.RepeatedSize(f);
            for (uint32_t i = 0; i < n; ++i) {
                out += pad + f.name;
                if (f.type == FieldType::kMessage) {
                    out += " {\n";
                    AppendMessage(out, msg.GetRepeatedMessage(f, i),
                                  indent + 1);
                    out += pad + "}\n";
                } else if (IsBytesLike(f.type)) {
                    out += ": ";
                    AppendString(out, msg.GetRepeatedString(f, i));
                    out += '\n';
                } else {
                    const uint32_t width = InMemorySize(f.type);
                    uint64_t bits = 0;
                    std::memcpy(&bits,
                                msg.repeated_field(f)->at(i, width),
                                width);
                    out += ": ";
                    AppendScalar(out, f.type, bits);
                    out += '\n';
                }
            }
            continue;
        }
        if (!msg.Has(f))
            continue;
        out += pad + f.name;
        if (f.type == FieldType::kMessage) {
            out += " {\n";
            AppendMessage(out, msg.GetMessage(f), indent + 1);
            out += pad + "}\n";
        } else if (IsBytesLike(f.type)) {
            out += ": ";
            AppendString(out, msg.GetString(f));
            out += '\n';
        } else {
            out += ": ";
            AppendScalar(out, f.type, msg.GetScalarBits(f));
            out += '\n';
        }
    }
}

}  // namespace

std::string
DebugString(const Message &msg)
{
    std::string out;
    if (!msg.valid())
        return out;
    AppendMessage(out, msg, 0);
    return out;
}


namespace {

/// Minimal textproto cursor.
class TextCursor
{
  public:
    explicit TextCursor(std::string_view text) : text_(text) {}

    void
    SkipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '#') {  // textproto comments
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
                continue;
            }
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool at_end()
    {
        SkipWs();
        return pos_ >= text_.size();
    }

    char
    Peek()
    {
        SkipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    Consume(char c)
    {
        if (Peek() != c)
            return false;
        ++pos_;
        return true;
    }

    std::string
    Ident()
    {
        SkipWs();
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_') {
                out += c;
                ++pos_;
            } else {
                break;
            }
        }
        return out;
    }

    /// Scalar literal token (number, true/false, enum name).
    std::string
    Scalar()
    {
        SkipWs();
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
                c == '}' || c == '{' || c == '#') {
                break;
            }
            out += c;
            ++pos_;
        }
        return out;
    }

    bool
    QuotedString(std::string *out)
    {
        if (!Consume('"'))
            return false;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'x': {
                    if (pos_ + 1 >= text_.size())
                        return false;
                    const char hex[3] = {text_[pos_], text_[pos_ + 1],
                                         0};
                    c = static_cast<char>(
                        std::strtol(hex, nullptr, 16));
                    pos_ += 2;
                    break;
                  }
                  default: c = esc; break;
                }
            }
            *out += c;
        }
        return pos_ < text_.size() && text_[pos_++] == '"';
    }

  private:
    std::string_view text_;
    size_t pos_ = 0;
};

bool
TextFail(std::string *error, const std::string &message)
{
    if (error != nullptr && error->empty())
        *error = message;
    return false;
}

bool
ScalarBitsFromText(FieldType type, const std::string &lit,
                   uint64_t *bits)
{
    if (lit.empty())
        return false;
    switch (type) {
      case FieldType::kBool:
        if (lit == "true")
            *bits = 1;
        else if (lit == "false")
            *bits = 0;
        else
            return false;
        return true;
      case FieldType::kFloat: {
        char *end = nullptr;
        const float v =
            static_cast<float>(std::strtod(lit.c_str(), &end));
        if (end == nullptr || *end != '\0')
            return false;
        uint32_t b;
        std::memcpy(&b, &v, sizeof(v));
        *bits = b;
        return true;
      }
      case FieldType::kDouble: {
        char *end = nullptr;
        const double v = std::strtod(lit.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return false;
        std::memcpy(bits, &v, sizeof(v));
        return true;
      }
      case FieldType::kUint32:
      case FieldType::kUint64:
      case FieldType::kFixed32:
      case FieldType::kFixed64: {
        char *end = nullptr;
        *bits = std::strtoull(lit.c_str(), &end, 0);
        if (end == nullptr || *end != '\0')
            return false;  // trailing garbage
        if (InMemorySize(type) == 4)
            *bits = static_cast<uint32_t>(*bits);
        return true;
      }
      default: {
        char *end = nullptr;
        const long long v = std::strtoll(lit.c_str(), &end, 0);
        if (end == nullptr || *end != '\0')
            return false;
        *bits = static_cast<uint64_t>(v);
        if (InMemorySize(type) == 4)
            *bits = static_cast<uint32_t>(*bits);
        return true;
      }
    }
}

bool ParseTextMessage(TextCursor &cur, Message msg, std::string *error,
                      bool toplevel);

bool
ParseTextField(TextCursor &cur, Message &msg, const FieldDescriptor &f,
               std::string *error)
{
    if (f.type == FieldType::kMessage) {
        cur.Consume(':');  // optional before '{'
        if (!cur.Consume('{'))
            return TextFail(error, "expected '{' for field " + f.name);
        Message sub = f.repeated() ? msg.AddRepeatedMessage(f)
                                   : msg.MutableMessage(f);
        return ParseTextMessage(cur, sub, error, /*toplevel=*/false);
    }
    if (!cur.Consume(':'))
        return TextFail(error, "expected ':' after field " + f.name);
    if (IsBytesLike(f.type)) {
        std::string value;
        if (!cur.QuotedString(&value))
            return TextFail(error,
                            "expected quoted string for " + f.name);
        if (f.repeated())
            msg.AddRepeatedString(f, value);
        else
            msg.SetString(f, value);
        return true;
    }
    uint64_t bits = 0;
    if (!ScalarBitsFromText(f.type, cur.Scalar(), &bits))
        return TextFail(error, "bad scalar value for " + f.name);
    if (f.repeated())
        msg.AddRepeatedBits(f, bits);
    else
        msg.SetScalarBits(f, bits);
    return true;
}

bool
ParseTextMessage(TextCursor &cur, Message msg, std::string *error,
                 bool toplevel)
{
    for (;;) {
        if (toplevel ? cur.at_end() : cur.Consume('}'))
            return true;
        if (!toplevel && cur.at_end())
            return TextFail(error, "unexpected end of input, missing '}'");
        const std::string name = cur.Ident();
        if (name.empty())
            return TextFail(error, "expected a field name");
        const FieldDescriptor *f =
            msg.descriptor().FindFieldByName(name);
        if (f == nullptr)
            return TextFail(error, "unknown field '" + name + "'");
        if (!ParseTextField(cur, msg, *f, error))
            return false;
    }
}

}  // namespace

bool
ParseTextFormat(std::string_view text, Message *msg, std::string *error)
{
    PA_CHECK(msg != nullptr && msg->valid());
    if (error != nullptr)
        error->clear();
    TextCursor cur(text);
    return ParseTextMessage(cur, *msg, error, /*toplevel=*/true);
}

}  // namespace protoacc::proto
