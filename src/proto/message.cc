#include "proto/message.h"

#include <cstring>

namespace protoacc::proto {

Message
Message::Create(Arena *arena, const DescriptorPool &pool, int msg_index)
{
    PA_CHECK(pool.compiled());
    const MessageDescriptor &desc = pool.message(msg_index);
    void *obj = arena->Allocate(desc.layout().object_size, 8);
    std::memcpy(obj, desc.default_instance(), desc.layout().object_size);
    return Message(obj, &desc, &pool, arena);
}

bool
Message::Has(const FieldDescriptor &f) const
{
    const uint32_t *words = hasbits();
    return (words[f.hasbit_index / 32] >> (f.hasbit_index % 32)) & 1;
}

void
Message::SetHas(const FieldDescriptor &f)
{
    hasbits()[f.hasbit_index / 32] |= 1u << (f.hasbit_index % 32);
}

void
Message::ClearHas(const FieldDescriptor &f)
{
    hasbits()[f.hasbit_index / 32] &= ~(1u << (f.hasbit_index % 32));
}

void
Message::Clear(const FieldDescriptor &f)
{
    ClearHas(f);
    if (f.repeated()) {
        // Keep the container allocation, drop the contents.
        if (IsBytesLike(f.type) || f.type == FieldType::kMessage) {
            if (auto *r = repeated_ptr_field(f))
                r->size = 0;
        } else if (auto *r = repeated_field(f)) {
            r->size = 0;
        }
    } else if (IsBytesLike(f.type) || f.type == FieldType::kMessage) {
        std::memset(field_ptr(f), 0, sizeof(void *));
    } else {
        const MessageDescriptor &desc = *descriptor_;
        std::memcpy(field_ptr(f),
                    static_cast<const char *>(desc.default_instance()) +
                        f.offset,
                    InMemorySize(f.type));
    }
}

uint64_t
Message::GetScalarBits(const FieldDescriptor &f) const
{
    PA_CHECK(!f.repeated());
    PA_CHECK(!IsBytesLike(f.type) && f.type != FieldType::kMessage);
    uint64_t bits = 0;
    std::memcpy(&bits, field_ptr(f), InMemorySize(f.type));
    return bits;
}

void
Message::SetScalarBits(const FieldDescriptor &f, uint64_t bits)
{
    PA_CHECK(!f.repeated());
    PA_CHECK(!IsBytesLike(f.type) && f.type != FieldType::kMessage);
    std::memcpy(field_ptr(f), &bits, InMemorySize(f.type));
    SetHas(f);
}

ArenaString *
Message::GetStringObject(const FieldDescriptor &f) const
{
    PA_CHECK(IsBytesLike(f.type));
    PA_CHECK(!f.repeated());
    ArenaString *s;
    std::memcpy(&s, field_ptr(f), sizeof(s));
    return s;
}

std::string_view
Message::GetString(const FieldDescriptor &f) const
{
    if (!Has(f))
        return f.default_string;
    const ArenaString *s = GetStringObject(f);
    return s == nullptr ? std::string_view(f.default_string) : s->view();
}

void
Message::SetString(const FieldDescriptor &f, std::string_view value)
{
    PA_CHECK(IsBytesLike(f.type));
    PA_CHECK(!f.repeated());
    ArenaString *s = GetStringObject(f);
    if (s == nullptr) {
        s = ArenaString::Create(arena_, value);
        std::memcpy(field_ptr(f), &s, sizeof(s));
    } else {
        s->Assign(arena_, value);
    }
    SetHas(f);
}

const MessageDescriptor &
Message::sub_descriptor(const FieldDescriptor &f) const
{
    PA_CHECK_EQ(f.type, FieldType::kMessage);
    return pool_->message(f.message_type);
}

Message
Message::GetMessage(const FieldDescriptor &f) const
{
    PA_CHECK(!f.repeated());
    void *sub;
    std::memcpy(&sub, field_ptr(f), sizeof(sub));
    if (sub == nullptr)
        return Message();
    return Message(sub, &sub_descriptor(f), pool_, arena_);
}

Message
Message::MutableMessage(const FieldDescriptor &f)
{
    PA_CHECK(!f.repeated());
    void *sub;
    std::memcpy(&sub, field_ptr(f), sizeof(sub));
    if (sub == nullptr) {
        Message created =
            Message::Create(arena_, *pool_, f.message_type);
        sub = created.raw();
        std::memcpy(field_ptr(f), &sub, sizeof(sub));
    }
    SetHas(f);
    return Message(sub, &sub_descriptor(f), pool_, arena_);
}

RepeatedField *
Message::repeated_field(const FieldDescriptor &f) const
{
    PA_CHECK(f.repeated());
    PA_CHECK(!IsBytesLike(f.type) && f.type != FieldType::kMessage);
    RepeatedField *r;
    std::memcpy(&r, field_ptr(f), sizeof(r));
    return r;
}

RepeatedPtrField *
Message::repeated_ptr_field(const FieldDescriptor &f) const
{
    PA_CHECK(f.repeated());
    PA_CHECK(IsBytesLike(f.type) || f.type == FieldType::kMessage);
    RepeatedPtrField *r;
    std::memcpy(&r, field_ptr(f), sizeof(r));
    return r;
}

uint32_t
Message::RepeatedSize(const FieldDescriptor &f) const
{
    PA_CHECK(f.repeated());
    if (IsBytesLike(f.type) || f.type == FieldType::kMessage) {
        const RepeatedPtrField *r = repeated_ptr_field(f);
        return r == nullptr ? 0 : r->size;
    }
    const RepeatedField *r = repeated_field(f);
    return r == nullptr ? 0 : r->size;
}

void
Message::AddRepeatedBits(const FieldDescriptor &f, uint64_t bits)
{
    RepeatedField *r = repeated_field(f);
    if (r == nullptr) {
        r = RepeatedField::Create(arena_);
        std::memcpy(field_ptr(f), &r, sizeof(r));
    }
    r->Append(arena_, &bits, InMemorySize(f.type));
    SetHas(f);
}

std::string_view
Message::GetRepeatedString(const FieldDescriptor &f, uint32_t i) const
{
    PA_CHECK(IsBytesLike(f.type));
    const RepeatedPtrField *r = repeated_ptr_field(f);
    PA_CHECK(r != nullptr);
    return static_cast<const ArenaString *>(r->at(i))->view();
}

void
Message::AddRepeatedString(const FieldDescriptor &f, std::string_view v)
{
    PA_CHECK(IsBytesLike(f.type));
    RepeatedPtrField *r = repeated_ptr_field(f);
    if (r == nullptr) {
        r = RepeatedPtrField::Create(arena_);
        std::memcpy(field_ptr(f), &r, sizeof(r));
    }
    r->Append(arena_, ArenaString::Create(arena_, v));
    SetHas(f);
}

Message
Message::GetRepeatedMessage(const FieldDescriptor &f, uint32_t i) const
{
    const RepeatedPtrField *r = repeated_ptr_field(f);
    PA_CHECK(r != nullptr);
    return Message(r->at(i), &sub_descriptor(f), pool_, arena_);
}

Message
Message::AddRepeatedMessage(const FieldDescriptor &f)
{
    RepeatedPtrField *r = repeated_ptr_field(f);
    if (r == nullptr) {
        r = RepeatedPtrField::Create(arena_);
        std::memcpy(field_ptr(f), &r, sizeof(r));
    }
    Message sub = Message::Create(arena_, *pool_, f.message_type);
    r->Append(arena_, sub.raw());
    SetHas(f);
    return sub;
}

int32_t
Message::cached_size() const
{
    int32_t v;
    std::memcpy(&v, bytes() + descriptor_->layout().cached_size_offset,
                sizeof(v));
    return v;
}

void
Message::set_cached_size(int32_t v) const
{
    std::memcpy(bytes() + descriptor_->layout().cached_size_offset, &v,
                sizeof(v));
}

const UnknownFieldStore *
Message::unknown_fields() const
{
    return UnknownFieldStore::Get(obj_,
                                  descriptor_->layout().unknown_offset);
}

namespace {

bool
ScalarEqual(const Message &a, const Message &b, const FieldDescriptor &f)
{
    return a.GetScalarBits(f) == b.GetScalarBits(f);
}

}  // namespace

bool
MessagesEqual(const Message &a, const Message &b)
{
    if (!a.valid() || !b.valid())
        return a.valid() == b.valid();
    const MessageDescriptor &desc = a.descriptor();
    if (&desc != &b.descriptor() && desc.name() != b.descriptor().name())
        return false;
    for (const auto &f : desc.fields()) {
        if (f.repeated()) {
            const uint32_t n = a.RepeatedSize(f);
            if (n != b.RepeatedSize(f))
                return false;
            for (uint32_t i = 0; i < n; ++i) {
                if (f.type == FieldType::kMessage) {
                    if (!MessagesEqual(a.GetRepeatedMessage(f, i),
                                       b.GetRepeatedMessage(f, i)))
                        return false;
                } else if (IsBytesLike(f.type)) {
                    if (a.GetRepeatedString(f, i) !=
                        b.GetRepeatedString(f, i))
                        return false;
                } else {
                    const uint32_t width = InMemorySize(f.type);
                    uint64_t va = 0, vb = 0;
                    std::memcpy(&va,
                                a.repeated_field(f)->at(i, width), width);
                    std::memcpy(&vb,
                                b.repeated_field(f)->at(i, width), width);
                    if (va != vb)
                        return false;
                }
            }
            continue;
        }
        if (a.Has(f) != b.Has(f))
            return false;
        if (!a.Has(f))
            continue;
        if (f.type == FieldType::kMessage) {
            if (!MessagesEqual(a.GetMessage(f), b.GetMessage(f)))
                return false;
        } else if (IsBytesLike(f.type)) {
            if (a.GetString(f) != b.GetString(f))
                return false;
        } else if (!ScalarEqual(a, b, f)) {
            return false;
        }
    }
    // Preserved unknown fields are part of the message's identity: two
    // objects that re-serialize differently are not equal.
    return UnknownStoresEqual(a.unknown_fields(), b.unknown_fields());
}

}  // namespace protoacc::proto
