/**
 * @file
 * Schema description: the analog of protoc's parsed .proto model.
 *
 * A DescriptorPool is built programmatically (our stand-in for the .proto
 * language frontend), then compiled: compilation assigns every message
 * type a fixed in-memory object layout (see layout.h) exactly as protoc's
 * generated C++ classes would have, and builds the per-type default
 * instances. The Accelerator Descriptor Tables of §4.2 are generated from
 * the same compiled layout (src/accel/adt.h), mirroring the paper's
 * modified protoc.
 */
#ifndef PROTOACC_PROTO_DESCRIPTOR_H
#define PROTOACC_PROTO_DESCRIPTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "proto/wire_format.h"

namespace protoacc::proto {

class DescriptorPool;
class CodecTableSet;
struct GeneratedPoolCodec;

/// Field cardinality qualifiers of proto2.
enum class Label : uint8_t {
    kOptional,
    kRequired,
    kRepeated,
};

/// Protobuf language version a message type is defined against (§3.3;
/// §7: proto3 adds UTF-8 validation of string fields on parse).
enum class Syntax : uint8_t {
    kProto2,
    kProto3,
};

/**
 * One field of a message type. Layout-derived members (offset,
 * hasbit_index) are filled in by DescriptorPool::Compile().
 */
struct FieldDescriptor
{
    std::string name;
    uint32_t number = 0;
    FieldType type = FieldType::kInt32;
    Label label = Label::kOptional;
    /// Packed encoding for repeated scalar fields ([packed = true]).
    bool packed = false;
    /// Pool index of the sub-message type (kMessage fields only).
    int message_type = -1;
    /// Default value bit pattern for scalar fields.
    uint64_t default_value = 0;
    /// Default value for string/bytes fields.
    std::string default_string;

    // ---- Filled in by layout compilation ----
    /// Byte offset of this field's slot within the C++ object.
    uint32_t offset = 0;
    /// Bit index within the hasbits array (dense or sparse; see layout.h).
    uint32_t hasbit_index = 0;
    /// Dense declaration-order index within the message.
    int index = -1;

    bool repeated() const { return label == Label::kRepeated; }
    /// True when the encoded form is length-delimited (strings, bytes,
    /// sub-messages, packed repeated scalars).
    bool
    length_delimited() const
    {
        return IsBytesLike(type) || type == FieldType::kMessage ||
               (repeated() && packed);
    }
};

/// Layout mode for the presence-tracking hasbits array (§3.7 / §4.2).
enum class HasbitsMode : uint8_t {
    /// Upstream protoc packing: bit index == dense field index.
    kDense,
    /// Accelerator-friendly packing: bit index == field number minus the
    /// smallest defined field number, directly indexable by the hardware.
    kSparse,
};

/**
 * Compiled per-type object layout (the information protoc bakes into
 * generated classes, and the source from which ADTs are built).
 */
struct MessageLayout
{
    /// Total size in bytes of one in-memory object of this type.
    uint32_t object_size = 0;
    /// Offset of the hasbits array of 32-bit words.
    uint32_t hasbits_offset = 0;
    /// Number of 32-bit hasbits words.
    uint32_t hasbits_words = 0;
    /// Offset of the cached serialized-size slot (used by ByteSize).
    uint32_t cached_size_offset = 0;
    /// Offset of the 8-byte unknown-field-store pointer slot. Every
    /// compiled type reserves one so fields unknown to this schema
    /// version can be preserved and re-emitted byte-identically
    /// (schema-evolution round trips).
    uint32_t unknown_offset = 0;
    HasbitsMode hasbits_mode = HasbitsMode::kSparse;
};

/**
 * One message type: an ordered collection of fields plus its compiled
 * layout and default instance.
 */
class MessageDescriptor
{
  public:
    MessageDescriptor(std::string name, int pool_index,
                      Syntax syntax = Syntax::kProto2)
        : name_(std::move(name)), pool_index_(pool_index),
          syntax_(syntax)
    {}

    const std::string &name() const { return name_; }
    int pool_index() const { return pool_index_; }
    Syntax syntax() const { return syntax_; }

    /// Fields in increasing field-number order.
    const std::vector<FieldDescriptor> &fields() const { return fields_; }
    size_t field_count() const { return fields_.size(); }
    const FieldDescriptor &field(size_t i) const { return fields_[i]; }

    /// Find a field by field number; nullptr if not defined. Delegates
    /// to field_index_for_number() so it cannot disagree with the codec
    /// fast path.
    const FieldDescriptor *
    FindFieldByNumber(uint32_t number) const
    {
        const int i = field_index_for_number(number);
        return i < 0 ? nullptr : &fields_[i];
    }
    /// Find a field by name; nullptr if not defined.
    const FieldDescriptor *FindFieldByName(std::string_view name) const;

    /**
     * Dense index of the field with @p number, or -1 if not defined.
     *
     * After Compile() this is the single field-number dispatch structure
     * of the type: a direct-indexed array over [min, max] when the
     * defined numbers are dense enough (the common case per §3.7's
     * density findings), falling back to binary search over the
     * number-sorted field list for sparse numberings. The codec tables
     * (codec_table.h) dispatch through this same structure.
     */
    int
    field_index_for_number(uint32_t number) const
    {
        if (!dense_lookup_.empty()) {
            // Unsigned wrap makes numbers below min fail the bound test.
            const uint32_t delta = number - min_field_number_;
            return delta < dense_lookup_.size() ? dense_lookup_[delta]
                                                : -1;
        }
        return FieldIndexSlow(number);
    }

    /// Smallest / largest defined field number (0/0 for empty messages).
    uint32_t min_field_number() const { return min_field_number_; }
    uint32_t max_field_number() const { return max_field_number_; }

    const MessageLayout &layout() const { return layout_; }

    /// Pointer to the zero-initialized-with-defaults prototype object.
    const void *default_instance() const { return default_instance_.get(); }

    /// Field-number usage density denominator (§3.7): the range of
    /// defined field numbers.
    uint32_t
    field_number_range() const
    {
        return fields_.empty() ? 0
                               : max_field_number_ - min_field_number_ + 1;
    }

  private:
    friend class DescriptorPool;

    int FieldIndexSlow(uint32_t number) const;

    std::string name_;
    int pool_index_;
    Syntax syntax_;
    std::vector<FieldDescriptor> fields_;
    /// number - min -> field index (-1 for gaps); empty when the
    /// numbering is too sparse (binary search instead) or pre-Compile.
    std::vector<int32_t> dense_lookup_;
    /// Set by Compile(): fields_ is number-sorted, enabling the
    /// binary-search fallback.
    bool number_sorted_ = false;
    uint32_t min_field_number_ = 0;
    uint32_t max_field_number_ = 0;
    MessageLayout layout_;
    std::unique_ptr<char[]> default_instance_;
};

/**
 * Owns a set of message types and compiles their layouts.
 *
 * Usage:
 * @code
 *   DescriptorPool pool;
 *   int point = pool.AddMessage("Point");
 *   pool.AddField(point, "x", 1, FieldType::kDouble);
 *   pool.AddField(point, "y", 2, FieldType::kDouble);
 *   pool.Compile();
 * @endcode
 */
class DescriptorPool
{
  public:
    DescriptorPool() = default;
    DescriptorPool(const DescriptorPool &) = delete;
    DescriptorPool &operator=(const DescriptorPool &) = delete;
    DescriptorPool(DescriptorPool &&) = default;
    DescriptorPool &operator=(DescriptorPool &&) = default;

    /// Declare a new message type; returns its pool index.
    int AddMessage(const std::string &name,
                   Syntax syntax = Syntax::kProto2);

    /// Add a scalar/string field to message @p msg_index.
    void AddField(int msg_index, const std::string &name, uint32_t number,
                  FieldType type, Label label = Label::kOptional,
                  bool packed = false);

    /// Add a sub-message-typed field.
    void AddMessageField(int msg_index, const std::string &name,
                         uint32_t number, int sub_msg_index,
                         Label label = Label::kOptional);

    /// Set a scalar default (bit pattern) on the last-added field.
    void SetScalarDefault(int msg_index, uint32_t number, uint64_t bits);
    /// Set a string default on field @p number of @p msg_index.
    void SetStringDefault(int msg_index, uint32_t number, std::string value);

    /**
     * Compute object layouts and default instances for every message.
     * Must be called exactly once, after which the pool is immutable.
     *
     * @param mode hasbits packing; kSparse matches the paper's modified
     *        library (§4.2), kDense matches upstream protoc.
     */
    void Compile(HasbitsMode mode = HasbitsMode::kSparse);

    bool compiled() const { return compiled_; }

    size_t message_count() const { return messages_.size(); }
    const MessageDescriptor &message(int index) const;
    MessageDescriptor &mutable_message(int index);

    /// Find a message type by name; -1 if absent.
    int FindMessage(const std::string &name) const;

    /**
     * Cache slot for the lazily-compiled codec tables (codec_table.h).
     * Owned by the pool so the software backend, the figure benches and
     * codec_gbench all share one compiled program set per pool. Managed
     * exclusively by GetCodecTables(); not thread-safe to initialize
     * concurrently (call GetCodecTables() once before sharing the pool
     * across threads).
     */
    const CodecTableSet *codec_tables_cache() const
    {
        return codec_tables_.get();
    }
    void set_codec_tables_cache(
        std::shared_ptr<const CodecTableSet> tables) const
    {
        codec_tables_ = std::move(tables);
    }

    /**
     * Cache slot for the schema-specialized generated codec
     * (codec_generated.h). nullptr is a valid resolution (no codec
     * linked in for this schema), so a separate resolved flag
     * distinguishes "not looked up yet" from "none exists". Managed
     * exclusively by GetGeneratedCodec(); same single-threaded
     * first-resolution contract as the codec tables cache.
     */
    const GeneratedPoolCodec *generated_codec_cache() const
    {
        return generated_codec_;
    }
    bool generated_codec_resolved() const
    {
        return generated_codec_resolved_;
    }
    void set_generated_codec_cache(const GeneratedPoolCodec *codec) const
    {
        generated_codec_ = codec;
        generated_codec_resolved_ = true;
    }

  private:
    void CompileMessage(MessageDescriptor &msg, HasbitsMode mode);
    void BuildDefaultInstance(MessageDescriptor &msg);

    std::vector<std::unique_ptr<MessageDescriptor>> messages_;
    std::unordered_map<std::string, int> by_name_;
    /// shared_ptr so the (header-incomplete) type destructs correctly.
    mutable std::shared_ptr<const CodecTableSet> codec_tables_;
    /// Generated codecs have static storage duration; a raw pointer
    /// plus resolved flag suffices.
    mutable const GeneratedPoolCodec *generated_codec_ = nullptr;
    mutable bool generated_codec_resolved_ = false;
    bool compiled_ = false;
};

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_DESCRIPTOR_H
