/**
 * @file
 * Cost-instrumentation hooks for the software codec.
 *
 * The software serializer and parser are functionally identical whether
 * or not a sink is attached; when one is, they report every primitive
 * operation they perform. src/cpu/cpu_model.h converts these events into
 * cycles under a per-machine parameter set (BOOM vs Xeon), which is how
 * the paper's "riscv-boom" and "Xeon" baselines are modeled without the
 * authors' FPGA/server testbeds.
 */
#ifndef PROTOACC_PROTO_COST_SINK_H
#define PROTOACC_PROTO_COST_SINK_H

#include <cstddef>

namespace protoacc::proto {

/**
 * Receiver for software-codec cost events. All hooks default to no-ops;
 * the codec never pays for instrumentation when sink == nullptr.
 */
class CostSink
{
  public:
    virtual ~CostSink() = default;

    /// A field key (tag varint) was decoded; @p bytes is its encoded size.
    virtual void OnTagDecode(int bytes) { (void)bytes; }
    /// A field key was encoded.
    virtual void OnTagEncode(int bytes) { (void)bytes; }
    /// A value varint of @p bytes encoded size was decoded (byte-at-a-time
    /// loop on a CPU).
    virtual void OnVarintDecode(int bytes) { (void)bytes; }
    /// A value varint was encoded.
    virtual void OnVarintEncode(int bytes) { (void)bytes; }
    /// A fixed-width value (float/double/fixed{32,64}) was copied.
    virtual void OnFixedCopy(int bytes) { (void)bytes; }
    /// Bulk data copy of @p bytes (string/bytes payloads, packed arrays).
    virtual void OnMemcpy(size_t bytes) { (void)bytes; }
    /// Memory allocation of @p bytes (string buffer, sub-message object,
    /// repeated-field growth).
    virtual void OnAlloc(size_t bytes) { (void)bytes; }
    /// Per-field dispatch overhead (switch on wire type / field number:
    /// the branch-heavy generated code the paper's §7 discusses).
    virtual void OnFieldDispatch() {}
    /// Begin/end of a (sub-)message: call overhead, stack management.
    virtual void OnMessageBegin() {}
    virtual void OnMessageEnd() {}
    /// Per-field work in the ByteSize pass (serialization only).
    virtual void OnByteSizeField() {}
    /// Per-message overhead of the ByteSize pass (cheaper than the
    /// write pass: size computation is typically inlined/fused).
    virtual void OnByteSizeMessage() {}
    /// Presence-bit test/set touching @p words 32-bit hasbits words.
    virtual void OnHasbitsAccess(int words) { (void)words; }
    /// End-to-end integrity check: a CRC32C computed or verified over
    /// @p bytes of frame data (framing layer, not the codec proper).
    virtual void OnCrc(size_t bytes) { (void)bytes; }
    /// A frame header was written or parsed/validated (framing layer:
    /// field extraction, version/kind checks, length sanity).
    virtual void OnFrameHeader() {}
    /// A dedup/response-cache probe keyed by an idempotency key (hash +
    /// lookup; insertion on the commit path charges the same hook).
    virtual void OnDedupProbe() {}
};

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_COST_SINK_H
