/**
 * @file
 * Software serialization (§2.2): the baseline the accelerator is compared
 * against, and the wire-format oracle the accelerator model must match
 * byte-for-byte.
 *
 * Serialization follows upstream protobuf's two-pass structure: a
 * ByteSize pass computes and caches every (sub-)message's encoded size
 * (the paper notes "virtually all calls to Byte Size occur during
 * serialization"), then a forward pass writes tags and values
 * low-to-high. Cost hooks report work to an optional CostSink so CPU
 * models can price the same functional execution.
 */
#ifndef PROTOACC_PROTO_SERIALIZER_H
#define PROTOACC_PROTO_SERIALIZER_H

#include <cstdint>
#include <vector>

#include "proto/cost_sink.h"
#include "proto/message.h"

namespace protoacc::proto {

/**
 * Compute the encoded size of @p msg, caching sub-message sizes in each
 * object's cached-size slot (required before SerializeToBuffer).
 */
size_t ByteSize(const Message &msg, CostSink *sink = nullptr);

/**
 * Serialize @p msg into @p buf (capacity @p cap). ByteSize() is run
 * internally.
 *
 * @return bytes written, or 0 when @p cap is insufficient.
 */
size_t SerializeToBuffer(const Message &msg, uint8_t *buf, size_t cap,
                         CostSink *sink = nullptr);

/// Convenience wrapper returning a fresh buffer.
std::vector<uint8_t> Serialize(const Message &msg,
                               CostSink *sink = nullptr);

/// Encoded size of one varint-typed scalar value of field type @p type
/// holding @p bits (handles sign extension of int32/enum and zig-zag of
/// sint{32,64} exactly as proto2 does).
int VarintValueSize(FieldType type, uint64_t bits);

/// Wire encoding of one varint-typed value; returns bytes written.
int EncodeVarintValue(FieldType type, uint64_t bits, uint8_t *out);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_SERIALIZER_H
