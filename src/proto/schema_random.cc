#include "proto/schema_random.h"

#include <string>

namespace protoacc::proto {

namespace {

const FieldType kScalarTypes[] = {
    FieldType::kDouble,  FieldType::kFloat,    FieldType::kInt32,
    FieldType::kInt64,   FieldType::kUint32,   FieldType::kUint64,
    FieldType::kSint32,  FieldType::kSint64,   FieldType::kFixed32,
    FieldType::kFixed64, FieldType::kSfixed32, FieldType::kSfixed64,
    FieldType::kBool,    FieldType::kEnum,     FieldType::kString,
    FieldType::kBytes,
};

int
GenerateType(DescriptorPool *pool, Rng *rng, const SchemaGenOptions &opts,
             const std::string &prefix, int depth, int *counter)
{
    const std::string name = prefix + "_" + std::to_string((*counter)++);
    const int msg = pool->AddMessage(name);

    const int num_fields = static_cast<int>(
        rng->NextRange(opts.min_fields, opts.max_fields));
    uint32_t number =
        static_cast<uint32_t>(rng->NextRange(1, opts.max_start_number));
    for (int i = 0; i < num_fields; ++i) {
        const bool repeated = rng->NextBool(opts.repeated_prob);
        const Label label = repeated ? Label::kRepeated : Label::kOptional;
        // Sub-message probability decays with depth so trees terminate.
        const double sub_p =
            depth >= opts.max_depth ? 0.0 : opts.submessage_prob;
        if (rng->NextBool(sub_p)) {
            const int sub = GenerateType(pool, rng, opts, prefix,
                                         depth + 1, counter);
            pool->AddMessageField(msg, "f" + std::to_string(number),
                                  number, sub, label);
        } else {
            const FieldType type = kScalarTypes[rng->NextBounded(
                sizeof(kScalarTypes) / sizeof(kScalarTypes[0]))];
            const bool packed = repeated && !IsBytesLike(type) &&
                                rng->NextBool(opts.packed_prob);
            pool->AddField(msg, "f" + std::to_string(number), number, type,
                           label, packed);
        }
        number += static_cast<uint32_t>(
            rng->NextRange(1, opts.max_field_number_gap));
    }
    return msg;
}

}  // namespace

int
GenerateRandomSchema(DescriptorPool *pool, Rng *rng,
                     const SchemaGenOptions &opts,
                     const std::string &name_prefix)
{
    int counter = 0;
    // Unique prefix per call so one pool can hold many random schemas.
    const std::string prefix =
        name_prefix + std::to_string(pool->message_count());
    return GenerateType(pool, rng, opts, prefix, 0, &counter);
}

uint64_t
RandomScalarBits(FieldType type, Rng *rng, double small_varint_prob)
{
    switch (type) {
      case FieldType::kBool:
        return rng->NextBool() ? 1 : 0;
      case FieldType::kFloat: {
        const float v =
            static_cast<float>(rng->NextDouble() * 2000.0 - 1000.0);
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(v));
        return bits;
      }
      case FieldType::kDouble: {
        const double v = rng->NextDouble() * 2e6 - 1e6;
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(v));
        return bits;
      }
      default:
        break;
    }
    // Integer-ish types: draw magnitudes across the full varint size
    // range, biased small like fleet data (§3.6.4: most varints short).
    uint64_t v;
    if (rng->NextBool(small_varint_prob)) {
        v = rng->NextBounded(1 << 14);
    } else {
        v = rng->NextLogUniform(1, UINT64_MAX / 2);
    }
    const uint32_t width = InMemorySize(type);
    if (width == 4)
        v = static_cast<uint32_t>(v);
    // Occasionally negative for signed types.
    if ((type == FieldType::kInt32 || type == FieldType::kSint32 ||
         type == FieldType::kSfixed32 || type == FieldType::kEnum) &&
        rng->NextBool(0.25)) {
        v = static_cast<uint32_t>(-static_cast<int32_t>(v));
    } else if ((type == FieldType::kInt64 || type == FieldType::kSint64 ||
                type == FieldType::kSfixed64) &&
               rng->NextBool(0.25)) {
        v = static_cast<uint64_t>(-static_cast<int64_t>(v));
    }
    return v;
}

namespace {

std::string
RandomStringValue(Rng *rng, uint32_t max_len)
{
    const uint64_t len = rng->NextBounded(max_len + 1);
    std::string s(len, '\0');
    for (auto &c : s)
        c = static_cast<char>('a' + rng->NextBounded(26));
    return s;
}

void
PopulateAtDepth(Message msg, Rng *rng, const MessageGenOptions &opts,
                uint32_t depth)
{
    for (const auto &f : msg.descriptor().fields()) {
        if (!rng->NextBool(opts.field_present_prob))
            continue;
        // Depth cap: recursive schemas (Node.child -> Node) would
        // otherwise never terminate at field_present_prob = 1.0.
        const bool can_recurse = depth + 1 < opts.max_depth;
        if (f.repeated()) {
            if (f.type == FieldType::kMessage && !can_recurse)
                continue;
            const uint64_t n =
                1 + rng->NextBounded(opts.max_repeated_elems);
            for (uint64_t i = 0; i < n; ++i) {
                if (f.type == FieldType::kMessage) {
                    PopulateAtDepth(msg.AddRepeatedMessage(f), rng, opts,
                                    depth + 1);
                } else if (IsBytesLike(f.type)) {
                    msg.AddRepeatedString(
                        f, RandomStringValue(rng, opts.max_string_len));
                } else {
                    msg.AddRepeatedBits(
                        f, RandomScalarBits(f.type, rng,
                                            opts.small_varint_prob));
                }
            }
            continue;
        }
        if (f.type == FieldType::kMessage) {
            if (can_recurse)
                PopulateAtDepth(msg.MutableMessage(f), rng, opts,
                                depth + 1);
        } else if (IsBytesLike(f.type)) {
            msg.SetString(f, RandomStringValue(rng, opts.max_string_len));
        } else {
            msg.SetScalarBits(
                f, RandomScalarBits(f.type, rng, opts.small_varint_prob));
        }
    }
}

}  // namespace

void
PopulateRandomMessage(Message msg, Rng *rng, const MessageGenOptions &opts)
{
    PopulateAtDepth(msg, rng, opts, 0);
}

}  // namespace protoacc::proto
