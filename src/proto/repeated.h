/**
 * @file
 * Storage for repeated fields (§2.1.3: "repeated fields are stored
 * similar to vectors").
 *
 * RepeatedField stores scalar elements contiguously; RepeatedPtrField
 * stores pointers (to ArenaString or sub-message objects). Both have a
 * fixed, table-describable header layout so the accelerator can construct
 * and grow them with raw stores, and both are trivially destructible
 * (element memory lives in the arena).
 *
 * The deserializer's unpacked-repeated handling (§4.4.8: "tagged
 * open-allocation region") maps onto Append() growth here; the close-out
 * write of the final element count is the final store of `size`.
 */
#ifndef PROTOACC_PROTO_REPEATED_H
#define PROTOACC_PROTO_REPEATED_H

#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "proto/arena.h"

namespace protoacc::proto {

/**
 * Vector-like container of fixed-width scalar elements. The element
 * width is a property of the owning field (from its descriptor / ADT
 * entry), not stored per-instance.
 */
struct RepeatedField
{
    void *data;
    uint32_t size;      ///< element count
    uint32_t capacity;  ///< element capacity

    static RepeatedField *
    Create(Arena *arena)
    {
        auto *r = static_cast<RepeatedField *>(
            arena->Allocate(sizeof(RepeatedField), alignof(RepeatedField)));
        r->data = nullptr;
        r->size = 0;
        r->capacity = 0;
        return r;
    }

    /// Ensure capacity for at least @p needed elements of @p elem_size.
    void
    Reserve(Arena *arena, uint32_t needed, uint32_t elem_size)
    {
        if (needed <= capacity)
            return;
        uint32_t new_cap = capacity == 0 ? 8 : capacity * 2;
        if (new_cap < needed)
            new_cap = needed;
        void *new_data = arena->Allocate(
            static_cast<size_t>(new_cap) * elem_size, 8);
        if (size > 0)
            std::memcpy(new_data, data,
                        static_cast<size_t>(size) * elem_size);
        data = new_data;
        capacity = new_cap;
    }

    /// Append one element, growing geometrically in the arena.
    void
    Append(Arena *arena, const void *elem, uint32_t elem_size)
    {
        Reserve(arena, size + 1, elem_size);
        std::memcpy(static_cast<char *>(data) +
                        static_cast<size_t>(size) * elem_size,
                    elem, elem_size);
        ++size;
    }

    /// Pointer to element @p i of width @p elem_size.
    const void *
    at(uint32_t i, uint32_t elem_size) const
    {
        PA_CHECK_LT(i, size);
        return static_cast<const char *>(data) +
               static_cast<size_t>(i) * elem_size;
    }

    /// Typed element read.
    template <typename T>
    T
    Get(uint32_t i) const
    {
        T v;
        std::memcpy(&v, at(i, sizeof(T)), sizeof(T));
        return v;
    }
};

/**
 * Vector-like container of pointers (strings or sub-message objects).
 */
struct RepeatedPtrField
{
    void **data;
    uint32_t size;
    uint32_t capacity;

    static RepeatedPtrField *
    Create(Arena *arena)
    {
        auto *r = static_cast<RepeatedPtrField *>(arena->Allocate(
            sizeof(RepeatedPtrField), alignof(RepeatedPtrField)));
        r->data = nullptr;
        r->size = 0;
        r->capacity = 0;
        return r;
    }

    void
    Append(Arena *arena, void *ptr)
    {
        if (size == capacity) {
            const uint32_t new_cap = capacity == 0 ? 8 : capacity * 2;
            void **new_data = static_cast<void **>(
                arena->Allocate(sizeof(void *) * new_cap, 8));
            if (size > 0)
                std::memcpy(new_data, data, sizeof(void *) * size);
            data = new_data;
            capacity = new_cap;
        }
        data[size++] = ptr;
    }

    void *
    at(uint32_t i) const
    {
        PA_CHECK_LT(i, size);
        return data[i];
    }
};

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_REPEATED_H
