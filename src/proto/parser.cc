#include "proto/parser.h"

#include "proto/codec_table.h"
#include "proto/utf8.h"

#include <cstring>

// Table-driven parse loop (see codec_table.h): the per-message CodecTable
// is the flat program; each incoming tag dispatches through the dense
// field-number array to a CodecEntry that carries the fused field op, the
// slot offset/hasbit and the sub-message table link, so the hot loop never
// touches FieldDescriptor. Scalar stores go straight to the object slot.
//
// Semantics (merge behaviour, unknown-field skipping, wire-type leniency
// for scalars, proto3 UTF-8 validation) and the CostSink event stream are
// kept exactly identical to the reference interpreter
// (codec_reference.cc); codec_differential_test.cc checks both.

namespace protoacc::proto {

const char *
ParseStatusName(ParseStatus status)
{
    switch (status) {
      case ParseStatus::kOk: return "ok";
      case ParseStatus::kMalformedVarint: return "malformed varint";
      case ParseStatus::kTruncated: return "truncated";
      case ParseStatus::kInvalidWireType: return "invalid wire type";
      case ParseStatus::kDepthExceeded: return "depth exceeded";
      case ParseStatus::kInvalidFieldNumber: return "invalid field number";
      case ParseStatus::kInvalidUtf8: return "invalid utf-8";
      case ParseStatus::kResourceExhausted: return "resource exhausted";
    }
    return "?";
}

StatusCode
ToStatusCode(ParseStatus status)
{
    switch (status) {
      case ParseStatus::kOk: return StatusCode::kOk;
      case ParseStatus::kMalformedVarint:
      case ParseStatus::kInvalidFieldNumber:
        return StatusCode::kMalformedInput;
      case ParseStatus::kTruncated: return StatusCode::kTruncated;
      case ParseStatus::kInvalidWireType:
        return StatusCode::kInvalidWireType;
      case ParseStatus::kDepthExceeded:
        return StatusCode::kDepthExceeded;
      case ParseStatus::kInvalidUtf8: return StatusCode::kInvalidUtf8;
      case ParseStatus::kResourceExhausted:
        return StatusCode::kResourceExhausted;
    }
    return StatusCode::kInternal;
}

namespace {

/// Cursor over the serialized input with cost instrumentation.
class Reader
{
  public:
    Reader(const uint8_t *p, const uint8_t *end, CostSink *sink)
        : p_(p), end_(end), sink_(sink)
    {}

    bool at_end() const { return p_ >= end_; }
    size_t remaining() const { return end_ - p_; }
    const uint8_t *pos() const { return p_; }
    CostSink *sink() const { return sink_; }

    bool
    ReadVarint(uint64_t *v, bool is_tag)
    {
        const int n = DecodeVarint(p_, end_, v);
        if (n == 0)
            return false;
        p_ += n;
        if (sink_ != nullptr) {
            if (is_tag)
                sink_->OnTagDecode(n);
            else
                sink_->OnVarintDecode(n);
        }
        return true;
    }

    bool
    ReadFixed32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = LoadFixed32(p_);
        p_ += 4;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(4);
        return true;
    }

    bool
    ReadFixed64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = LoadFixed64(p_);
        p_ += 8;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(8);
        return true;
    }

    bool
    Skip(size_t n)
    {
        if (remaining() < n)
            return false;
        p_ += n;
        return true;
    }

    /// Create a bounded sub-reader of @p n bytes and advance past them.
    bool
    Slice(size_t n, Reader *out)
    {
        if (remaining() < n)
            return false;
        *out = Reader(p_, p_ + n, sink_);
        p_ += n;
        return true;
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    CostSink *sink_;
};

/// Decode a varint wire value into the in-memory bit pattern for the
/// entry's field op (codec-table form of the reference interpreter's
/// FieldType switch).
uint64_t
VarintMemoryValue(FieldOp op, uint64_t wire)
{
    switch (op) {
      case FieldOp::kInt32:
      case FieldOp::kUint32:
        return static_cast<uint32_t>(wire);
      case FieldOp::kSint32:
        return static_cast<uint32_t>(
            ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldOp::kSint64:
        return static_cast<uint64_t>(ZigZagDecode64(wire));
      case FieldOp::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

/// Store a singular scalar straight into the object slot and set the
/// presence bit (the unchecked form of Message::SetScalarBits; PA_CHECK
/// layout validation already ran when the table was compiled).
inline void
StoreScalarRaw(const Message &msg, const CodecTable &t,
               const CodecEntry &e, uint64_t bits)
{
    char *obj = static_cast<char *>(msg.raw());
    switch (e.mem_width) {
      case 1:
        std::memcpy(obj + e.offset, &bits, 1);
        break;
      case 4:
        std::memcpy(obj + e.offset, &bits, 4);
        break;
      default:
        std::memcpy(obj + e.offset, &bits, 8);
        break;
    }
    uint32_t *words = reinterpret_cast<uint32_t *>(obj + t.hasbits_offset);
    words[e.hasbit_index >> 5] |= 1u << (e.hasbit_index & 31);
}

/**
 * Limit state threaded through one parse: remaining allocation budget
 * and the effective depth bound. The budget charges exactly the
 * quantities the reference codec and the accelerator charge (string
 * payload bytes, sub-message object_size, element width per repeated
 * element), keeping accept/reject verdicts byte-identical across all
 * three engines.
 */
struct ParseCtl
{
    uint64_t budget = UINT64_MAX;
    int max_depth = kMaxParseDepth;

    bool
    Charge(uint64_t n)
    {
        if (n > budget)
            return false;
        budget -= n;
        return true;
    }
};

ParseStatus ParsePayload(Reader &r, const CodecTableSet &set,
                         const CodecTable &t, Message msg, int depth,
                         ParseCtl &ctl);

ParseStatus
SkipUnknown(Reader &r, WireType wt)
{
    switch (wt) {
      case WireType::kVarint: {
        uint64_t v;
        return r.ReadVarint(&v, false) ? ParseStatus::kOk
                                       : ParseStatus::kMalformedVarint;
      }
      case WireType::kFixed64:
        return r.Skip(8) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kFixed32:
        return r.Skip(4) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kLengthDelimited: {
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        return r.Skip(len) ? ParseStatus::kOk : ParseStatus::kTruncated;
      }
      case WireType::kStartGroup:
      case WireType::kEndGroup:
        // Groups are deprecated and unsupported (as in the paper).
        return ParseStatus::kInvalidWireType;
    }
    return ParseStatus::kInvalidWireType;
}

ParseStatus
ParseScalar(Reader &r, const CodecTable &t, const CodecEntry &e,
            Message &msg, WireType wt, ParseCtl &ctl)
{
    uint64_t bits;
    switch (wt) {
      case WireType::kVarint: {
        uint64_t wire;
        if (!r.ReadVarint(&wire, false))
            return ParseStatus::kMalformedVarint;
        bits = VarintMemoryValue(e.op, wire);
        break;
      }
      case WireType::kFixed32: {
        uint32_t v;
        if (!r.ReadFixed32(&v))
            return ParseStatus::kTruncated;
        bits = v;
        break;
      }
      case WireType::kFixed64: {
        if (!r.ReadFixed64(&bits))
            return ParseStatus::kTruncated;
        break;
      }
      default:
        return ParseStatus::kInvalidWireType;
    }
    if (e.repeated()) {
        if (!ctl.Charge(e.mem_width))
            return ParseStatus::kResourceExhausted;
        msg.AddRepeatedBits(*e.field, bits);
    } else {
        StoreScalarRaw(msg, t, e, bits);
    }
    return ParseStatus::kOk;
}

ParseStatus
ParsePackedRepeated(Reader &r, const CodecTable &t, const CodecEntry &e,
                    Message &msg, ParseCtl &ctl)
{
    uint64_t len;
    if (!r.ReadVarint(&len, false))
        return ParseStatus::kMalformedVarint;
    Reader body(nullptr, nullptr, nullptr);
    if (!r.Slice(len, &body))
        return ParseStatus::kTruncated;
    while (!body.at_end()) {
        const ParseStatus st =
            ParseScalar(body, t, e, msg, e.wire_type, ctl);
        if (st != ParseStatus::kOk)
            return st;
    }
    return ParseStatus::kOk;
}

ParseStatus
ParseField(Reader &r, const CodecTableSet &set, const CodecTable &t,
           const CodecEntry &e, Message &msg, WireType wt, int depth,
           ParseCtl &ctl)
{
    if (r.sink() != nullptr)
        r.sink()->OnFieldDispatch();

    switch (e.op) {
      case FieldOp::kString:
      case FieldOp::kBytes: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        if (r.remaining() < len)
            return ParseStatus::kTruncated;
        const std::string_view s(
            reinterpret_cast<const char *>(r.pos()), len);
        // §7: proto3 validates string (not bytes) fields as UTF-8.
        if (e.validate_utf8() && !IsValidUtf8(s.data(), s.size()))
            return ParseStatus::kInvalidUtf8;
        if (!ctl.Charge(len))
            return ParseStatus::kResourceExhausted;
        if (r.sink() != nullptr) {
            // String construction: allocation plus payload copy.
            r.sink()->OnAlloc(len > ArenaString::kInlineCapacity
                                  ? len + sizeof(ArenaString)
                                  : sizeof(ArenaString));
            r.sink()->OnMemcpy(len);
        }
        if (e.repeated())
            msg.AddRepeatedString(*e.field, s);
        else
            msg.SetString(*e.field, s);
        r.Skip(len);
        return ParseStatus::kOk;
      }
      case FieldOp::kMessage: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        Reader body(nullptr, nullptr, nullptr);
        if (!r.Slice(len, &body))
            return ParseStatus::kTruncated;
        const CodecTable &sub_t = set.table(e.sub_table);
        if (!ctl.Charge(sub_t.object_size))
            return ParseStatus::kResourceExhausted;
        Message sub = e.repeated() ? msg.AddRepeatedMessage(*e.field)
                                   : msg.MutableMessage(*e.field);
        if (r.sink() != nullptr)
            r.sink()->OnAlloc(sub_t.object_size);
        return ParsePayload(body, set, sub_t, sub, depth + 1, ctl);
      }
      default:
        break;
    }

    // Scalar types: accept both packed and unpacked encodings regardless
    // of the schema's packed option, as proto2 parsers must.
    if (e.repeated() && wt == WireType::kLengthDelimited &&
        e.wire_type != WireType::kLengthDelimited) {
        return ParsePackedRepeated(r, t, e, msg, ctl);
    }
    return ParseScalar(r, t, e, msg, wt, ctl);
}

ParseStatus
ParsePayload(Reader &r, const CodecTableSet &set, const CodecTable &t,
             Message msg, int depth, ParseCtl &ctl)
{
    if (depth > ctl.max_depth)
        return ParseStatus::kDepthExceeded;
    if (r.sink() != nullptr)
        r.sink()->OnMessageBegin();
    while (!r.at_end()) {
        const uint8_t *tag_start = r.pos();
        uint64_t tag;
        if (!r.ReadVarint(&tag, true))
            return ParseStatus::kMalformedVarint;
        const uint32_t number = TagFieldNumber(tag);
        const WireType wt = TagWireType(tag);
        if (number == 0)
            return ParseStatus::kInvalidFieldNumber;
        const CodecEntry *e = t.Find(number);
        ParseStatus st;
        if (e == nullptr) {
            st = SkipUnknown(r, wt);
            if (st == ParseStatus::kOk) {
                // Schema evolution: preserve the validated record (raw
                // tag + value bytes, cold path off the table program)
                // with the exact budget charge and cost events of the
                // reference interpreter.
                const uint32_t rec_len =
                    static_cast<uint32_t>(r.pos() - tag_start);
                if (!ctl.Charge(rec_len))
                    return ParseStatus::kResourceExhausted;
                UnknownFieldStore *store =
                    UnknownFieldStore::GetOrCreate(
                        msg.raw(),
                        msg.descriptor().layout().unknown_offset,
                        msg.arena(), r.sink());
                store->Add(msg.arena(), number, tag_start, rec_len,
                           r.sink());
            }
        } else {
            st = ParseField(r, set, t, *e, msg, wt, depth, ctl);
        }
        if (st != ParseStatus::kOk)
            return st;
    }
    if (r.sink() != nullptr)
        r.sink()->OnMessageEnd();
    return ParseStatus::kOk;
}

}  // namespace

ParseStatus
ParseFromBuffer(const uint8_t *data, size_t len, Message *msg,
                CostSink *sink, const ParseLimits *limits)
{
    PA_CHECK(msg != nullptr && msg->valid());
    ParseCtl ctl;
    if (limits != nullptr) {
        if (limits->max_payload_bytes > 0 &&
            len > limits->max_payload_bytes)
            return ParseStatus::kResourceExhausted;
        if (limits->max_alloc_bytes > 0)
            ctl.budget = limits->max_alloc_bytes;
        if (limits->max_depth > 0)
            ctl.max_depth = static_cast<int>(limits->max_depth);
    }
    const CodecTableSet &set = GetCodecTables(msg->pool());
    const CodecTable &t = set.table(msg->descriptor().pool_index());
    Reader r(data, data + len, sink);
    return ParsePayload(r, set, t, *msg, 0, ctl);
}

}  // namespace protoacc::proto
