#include "proto/parser.h"

#include "proto/utf8.h"

#include <cstring>

namespace protoacc::proto {

const char *
ParseStatusName(ParseStatus status)
{
    switch (status) {
      case ParseStatus::kOk: return "ok";
      case ParseStatus::kMalformedVarint: return "malformed varint";
      case ParseStatus::kTruncated: return "truncated";
      case ParseStatus::kInvalidWireType: return "invalid wire type";
      case ParseStatus::kDepthExceeded: return "depth exceeded";
      case ParseStatus::kInvalidFieldNumber: return "invalid field number";
      case ParseStatus::kInvalidUtf8: return "invalid utf-8";
    }
    return "?";
}

namespace {

/// Cursor over the serialized input with cost instrumentation.
class Reader
{
  public:
    Reader(const uint8_t *p, const uint8_t *end, CostSink *sink)
        : p_(p), end_(end), sink_(sink)
    {}

    bool at_end() const { return p_ >= end_; }
    size_t remaining() const { return end_ - p_; }
    const uint8_t *pos() const { return p_; }
    CostSink *sink() const { return sink_; }

    bool
    ReadVarint(uint64_t *v, bool is_tag)
    {
        const int n = DecodeVarint(p_, end_, v);
        if (n == 0)
            return false;
        p_ += n;
        if (sink_ != nullptr) {
            if (is_tag)
                sink_->OnTagDecode(n);
            else
                sink_->OnVarintDecode(n);
        }
        return true;
    }

    bool
    ReadFixed32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = LoadFixed32(p_);
        p_ += 4;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(4);
        return true;
    }

    bool
    ReadFixed64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = LoadFixed64(p_);
        p_ += 8;
        if (sink_ != nullptr)
            sink_->OnFixedCopy(8);
        return true;
    }

    bool
    Skip(size_t n)
    {
        if (remaining() < n)
            return false;
        p_ += n;
        return true;
    }

    /// Create a bounded sub-reader of @p n bytes and advance past them.
    bool
    Slice(size_t n, Reader *out)
    {
        if (remaining() < n)
            return false;
        *out = Reader(p_, p_ + n, sink_);
        p_ += n;
        return true;
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    CostSink *sink_;
};

/// Decode a varint wire value into the in-memory bit pattern for @p type.
uint64_t
VarintMemoryValue(FieldType type, uint64_t wire)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kEnum:
        return static_cast<uint32_t>(wire);
      case FieldType::kUint32:
        return static_cast<uint32_t>(wire);
      case FieldType::kSint32:
        return static_cast<uint32_t>(
            ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldType::kSint64:
        return static_cast<uint64_t>(ZigZagDecode64(wire));
      case FieldType::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

ParseStatus ParsePayload(Reader &r, Message msg, int depth);

ParseStatus
SkipUnknown(Reader &r, WireType wt)
{
    switch (wt) {
      case WireType::kVarint: {
        uint64_t v;
        return r.ReadVarint(&v, false) ? ParseStatus::kOk
                                       : ParseStatus::kMalformedVarint;
      }
      case WireType::kFixed64:
        return r.Skip(8) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kFixed32:
        return r.Skip(4) ? ParseStatus::kOk : ParseStatus::kTruncated;
      case WireType::kLengthDelimited: {
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        return r.Skip(len) ? ParseStatus::kOk : ParseStatus::kTruncated;
      }
      case WireType::kStartGroup:
      case WireType::kEndGroup:
        // Groups are deprecated and unsupported (as in the paper).
        return ParseStatus::kInvalidWireType;
    }
    return ParseStatus::kInvalidWireType;
}

ParseStatus
ParseScalar(Reader &r, Message &msg, const FieldDescriptor &f, WireType wt)
{
    uint64_t bits;
    switch (wt) {
      case WireType::kVarint: {
        uint64_t wire;
        if (!r.ReadVarint(&wire, false))
            return ParseStatus::kMalformedVarint;
        bits = VarintMemoryValue(f.type, wire);
        break;
      }
      case WireType::kFixed32: {
        uint32_t v;
        if (!r.ReadFixed32(&v))
            return ParseStatus::kTruncated;
        bits = v;
        break;
      }
      case WireType::kFixed64: {
        if (!r.ReadFixed64(&bits))
            return ParseStatus::kTruncated;
        break;
      }
      default:
        return ParseStatus::kInvalidWireType;
    }
    if (f.repeated())
        msg.AddRepeatedBits(f, bits);
    else
        msg.SetScalarBits(f, bits);
    return ParseStatus::kOk;
}

ParseStatus
ParsePackedRepeated(Reader &r, Message &msg, const FieldDescriptor &f)
{
    uint64_t len;
    if (!r.ReadVarint(&len, false))
        return ParseStatus::kMalformedVarint;
    Reader body(nullptr, nullptr, nullptr);
    if (!r.Slice(len, &body))
        return ParseStatus::kTruncated;
    const WireType elem_wt = WireTypeForField(f.type);
    while (!body.at_end()) {
        const ParseStatus st = ParseScalar(body, msg, f, elem_wt);
        if (st != ParseStatus::kOk)
            return st;
    }
    return ParseStatus::kOk;
}

ParseStatus
ParseField(Reader &r, Message &msg, const FieldDescriptor &f, WireType wt,
           int depth)
{
    if (r.sink() != nullptr)
        r.sink()->OnFieldDispatch();

    switch (f.type) {
      case FieldType::kString:
      case FieldType::kBytes: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        if (r.remaining() < len)
            return ParseStatus::kTruncated;
        const std::string_view s(
            reinterpret_cast<const char *>(r.pos()), len);
        // §7: proto3 validates string (not bytes) fields as UTF-8.
        if (f.type == FieldType::kString &&
            msg.descriptor().syntax() == Syntax::kProto3 &&
            !IsValidUtf8(s.data(), s.size())) {
            return ParseStatus::kInvalidUtf8;
        }
        if (r.sink() != nullptr) {
            // String construction: allocation plus payload copy.
            r.sink()->OnAlloc(len > ArenaString::kInlineCapacity
                                  ? len + sizeof(ArenaString)
                                  : sizeof(ArenaString));
            r.sink()->OnMemcpy(len);
        }
        if (f.repeated())
            msg.AddRepeatedString(f, s);
        else
            msg.SetString(f, s);
        r.Skip(len);
        return ParseStatus::kOk;
      }
      case FieldType::kMessage: {
        if (wt != WireType::kLengthDelimited)
            return ParseStatus::kInvalidWireType;
        uint64_t len;
        if (!r.ReadVarint(&len, false))
            return ParseStatus::kMalformedVarint;
        Reader body(nullptr, nullptr, nullptr);
        if (!r.Slice(len, &body))
            return ParseStatus::kTruncated;
        Message sub = f.repeated() ? msg.AddRepeatedMessage(f)
                                   : msg.MutableMessage(f);
        if (r.sink() != nullptr)
            r.sink()->OnAlloc(sub.descriptor().layout().object_size);
        return ParsePayload(body, sub, depth + 1);
      }
      default:
        break;
    }

    // Scalar types: accept both packed and unpacked encodings regardless
    // of the schema's packed option, as proto2 parsers must.
    if (f.repeated() && wt == WireType::kLengthDelimited &&
        WireTypeForField(f.type) != WireType::kLengthDelimited) {
        return ParsePackedRepeated(r, msg, f);
    }
    return ParseScalar(r, msg, f, wt);
}

ParseStatus
ParsePayload(Reader &r, Message msg, int depth)
{
    if (depth > kMaxParseDepth)
        return ParseStatus::kDepthExceeded;
    if (r.sink() != nullptr)
        r.sink()->OnMessageBegin();
    while (!r.at_end()) {
        uint64_t tag;
        if (!r.ReadVarint(&tag, true))
            return ParseStatus::kMalformedVarint;
        const uint32_t number = TagFieldNumber(tag);
        const WireType wt = TagWireType(tag);
        if (number == 0)
            return ParseStatus::kInvalidFieldNumber;
        const FieldDescriptor *f =
            msg.descriptor().FindFieldByNumber(number);
        ParseStatus st;
        if (f == nullptr) {
            st = SkipUnknown(r, wt);
        } else {
            st = ParseField(r, msg, *f, wt, depth);
        }
        if (st != ParseStatus::kOk)
            return st;
    }
    if (r.sink() != nullptr)
        r.sink()->OnMessageEnd();
    return ParseStatus::kOk;
}

}  // namespace

ParseStatus
ParseFromBuffer(const uint8_t *data, size_t len, Message *msg,
                CostSink *sink)
{
    PA_CHECK(msg != nullptr && msg->valid());
    Reader r(data, data + len, sink);
    return ParsePayload(r, *msg, 0);
}

}  // namespace protoacc::proto
