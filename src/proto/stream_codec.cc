#include "proto/stream_codec.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "proto/codec_reference.h"
#include "proto/serializer.h"
#include "proto/utf8.h"
#include "proto/wire_format.h"

namespace protoacc::proto {

namespace {

/// Effective engine for streaming record parses: the generated tier
/// only emits codecs for whole top-level schemas and is cost-identical
/// to the table engine by construction (PR 7's parity contract), so
/// streaming maps it to the table path.
SoftwareCodecEngine
EffectiveEngine(SoftwareCodecEngine engine)
{
    return engine == SoftwareCodecEngine::kGenerated
               ? SoftwareCodecEngine::kTable
               : engine;
}

/// Wire varint -> in-memory bit pattern for @p type (the FieldType form
/// of parser.cc's VarintMemoryValue: uint32 truncation, zig-zag, bool
/// normalization — identical semantics to the whole-buffer parsers).
uint64_t
VarintBits(FieldType type, uint64_t wire)
{
    switch (type) {
      case FieldType::kInt32:
      case FieldType::kUint32:
      case FieldType::kEnum:
        return static_cast<uint32_t>(wire);
      case FieldType::kSint32:
        return static_cast<uint32_t>(
            ZigZagDecode32(static_cast<uint32_t>(wire)));
      case FieldType::kSint64:
        return static_cast<uint64_t>(ZigZagDecode64(wire));
      case FieldType::kBool:
        return wire != 0 ? 1 : 0;
      default:
        return wire;
    }
}

}  // namespace

StreamDecoder::StreamDecoder(const DescriptorPool &pool, int type,
                             SoftwareCodecEngine engine,
                             const StreamCodecLimits &stream_limits,
                             const ParseLimits &limits, StreamSink *sink,
                             CostSink *cost_sink)
    : pool_(pool),
      type_(pool.message(type)),
      engine_(EffectiveEngine(engine)),
      stream_limits_(stream_limits),
      record_limits_(limits),
      max_total_bytes_(limits.max_payload_bytes),
      sink_(sink),
      cost_sink_(cost_sink)
{
    PA_CHECK(sink != nullptr);
    // Each record parse starts a fresh nested parse: the record sits at
    // depth 1 of the logical message, so its own budget is one level
    // shallower than the whole-buffer parse would grant, and the total
    // payload bound is enforced on the stream, not per record.
    record_limits_.max_payload_bytes = 0;
    if (record_limits_.max_depth == 0)
        record_limits_.max_depth = kMaxParseDepth;
    if (record_limits_.max_depth > 1)
        record_limits_.max_depth -= 1;
}

ParseStatus
StreamDecoder::Feed(const uint8_t *data, size_t len)
{
    if (status_ != ParseStatus::kOk)
        return status_;
    PA_CHECK(!finished_);
    if (max_total_bytes_ != 0 &&
        bytes_consumed_ + pending_.size() + len > max_total_bytes_) {
        status_ = ParseStatus::kResourceExhausted;
        return status_;
    }

    if (pending_.empty()) {
        // Fast path: consume complete fields straight out of the
        // caller's chunk; only the incomplete tail is copied in.
        const size_t used = ConsumeFields(data, data + len);
        if (status_ != ParseStatus::kOk)
            return status_;
        pending_.assign(data + used, data + len);
    } else {
        pending_.insert(pending_.end(), data, data + len);
        const size_t used =
            ConsumeFields(pending_.data(), pending_.data() + pending_.size());
        if (status_ != ParseStatus::kOk)
            return status_;
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<ptrdiff_t>(used));
    }
    if (pending_.size() + scratch_.bytes_reserved() > peak_buffered_)
        peak_buffered_ = pending_.size() + scratch_.bytes_reserved();
    return status_;
}

ParseStatus
StreamDecoder::Finish()
{
    if (status_ != ParseStatus::kOk)
        return status_;
    finished_ = true;
    if (!pending_.empty()) {
        status_ = ParseStatus::kTruncated;
        return status_;
    }
    return ParseStatus::kOk;
}

size_t
StreamDecoder::ConsumeFields(const uint8_t *p, const uint8_t *end)
{
    size_t used = 0;
    while (p + used < end) {
        const size_t n = ConsumeOneField(p + used, end);
        if (n == SIZE_MAX)
            return used;  // status_ set
        if (n == 0)
            break;  // incomplete: wait for more bytes
        used += n;
        bytes_consumed_ += n;
        ++fields_delivered_;
    }
    return used;
}

size_t
StreamDecoder::ConsumeOneField(const uint8_t *p, const uint8_t *end)
{
    // Tag varint. A partial varint at the chunk boundary is at most 10
    // bytes of retained state; DecodeVarint returns 0 both for
    // truncated and malformed input, so disambiguate by length.
    uint64_t tag = 0;
    const int tag_len = DecodeVarint(p, end, &tag);
    if (tag_len == 0) {
        if (end - p >= kMaxVarintBytes) {
            status_ = ParseStatus::kMalformedVarint;
            return SIZE_MAX;
        }
        return 0;
    }
    if (cost_sink_ != nullptr)
        cost_sink_->OnTagDecode(tag_len);
    const uint32_t field_number = TagFieldNumber(tag);
    if (field_number == 0 || field_number > kMaxFieldNumber) {
        status_ = ParseStatus::kInvalidFieldNumber;
        return SIZE_MAX;
    }
    const WireType wt = TagWireType(tag);
    const FieldDescriptor *field = type_.FindFieldByNumber(field_number);
    const uint8_t *q = p + tag_len;

    switch (wt) {
      case WireType::kVarint: {
        uint64_t v = 0;
        const int n = DecodeVarint(q, end, &v);
        if (n == 0) {
            if (end - q >= kMaxVarintBytes) {
                status_ = ParseStatus::kMalformedVarint;
                return SIZE_MAX;
            }
            return 0;
        }
        if (cost_sink_ != nullptr)
            cost_sink_->OnVarintDecode(n);
        if (field != nullptr && IsVarintType(field->type)) {
            if (cost_sink_ != nullptr)
                cost_sink_->OnFieldDispatch();
            const ParseStatus s =
                sink_->OnScalar(*field, VarintBits(field->type, v));
            if (s != ParseStatus::kOk) {
                status_ = s;
                return SIZE_MAX;
            }
        }
        return static_cast<size_t>(tag_len + n);
      }
      case WireType::kFixed64:
      case WireType::kFixed32: {
        const size_t width = wt == WireType::kFixed64 ? 8 : 4;
        if (static_cast<size_t>(end - q) < width)
            return 0;
        if (cost_sink_ != nullptr)
            cost_sink_->OnFixedCopy(static_cast<int>(width));
        const bool matches =
            field != nullptr && IsFixedType(field->type) &&
            InMemorySize(field->type) == width;
        if (matches) {
            if (cost_sink_ != nullptr)
                cost_sink_->OnFieldDispatch();
            const uint64_t bits = width == 8
                                      ? LoadFixed64(q)
                                      : LoadFixed32(q);
            const ParseStatus s = sink_->OnScalar(*field, bits);
            if (s != ParseStatus::kOk) {
                status_ = s;
                return SIZE_MAX;
            }
        }
        return static_cast<size_t>(tag_len) + width;
      }
      case WireType::kLengthDelimited: {
        uint64_t len = 0;
        const int n = DecodeVarint(q, end, &len);
        if (n == 0) {
            if (end - q >= kMaxVarintBytes) {
                status_ = ParseStatus::kMalformedVarint;
                return SIZE_MAX;
            }
            return 0;
        }
        if (cost_sink_ != nullptr)
            cost_sink_->OnVarintDecode(n);
        // The record bound is what keeps the retained tail finite: a
        // declared length beyond it can never complete inside the
        // budget, so it is rejected now, not after buffering it.
        if (len > stream_limits_.max_record_bytes) {
            status_ = ParseStatus::kResourceExhausted;
            return SIZE_MAX;
        }
        if (static_cast<uint64_t>(end - q - n) < len)
            return 0;
        const uint8_t *payload = q + n;
        if (field != nullptr) {
            if (cost_sink_ != nullptr)
                cost_sink_->OnFieldDispatch();
            if (field->type == FieldType::kMessage) {
                scratch_.Reset();
                Message record = Message::Create(&scratch_, pool_,
                                                 field->message_type);
                const ParseStatus s =
                    engine_ == SoftwareCodecEngine::kReference
                        ? ReferenceParseFromBuffer(payload, len, &record,
                                                   cost_sink_,
                                                   &record_limits_)
                        : ParseFromBuffer(payload, len, &record,
                                          cost_sink_, &record_limits_);
                if (s != ParseStatus::kOk) {
                    status_ = s;
                    return SIZE_MAX;
                }
                if (scratch_.bytes_reserved() + pending_.size() >
                    peak_buffered_)
                    peak_buffered_ =
                        scratch_.bytes_reserved() + pending_.size();
                const ParseStatus cb = sink_->OnRecord(*field, record);
                if (cb != ParseStatus::kOk) {
                    status_ = cb;
                    return SIZE_MAX;
                }
            } else if (IsBytesLike(field->type)) {
                if (field->type == FieldType::kString &&
                    type_.syntax() == Syntax::kProto3 &&
                    !IsValidUtf8(payload, len)) {
                    status_ = ParseStatus::kInvalidUtf8;
                    return SIZE_MAX;
                }
                if (cost_sink_ != nullptr)
                    cost_sink_->OnMemcpy(len);
                const ParseStatus s = sink_->OnString(
                    *field,
                    std::string_view(
                        reinterpret_cast<const char *>(payload), len));
                if (s != ParseStatus::kOk) {
                    status_ = s;
                    return SIZE_MAX;
                }
            }
            // A length-delimited value for a scalar-typed field is a
            // packed run or a schema drift; skipped like the
            // whole-buffer parsers skip unknowns.
        }
        return static_cast<size_t>(tag_len + n) + len;
      }
      case WireType::kStartGroup:
      case WireType::kEndGroup:
      default:
        status_ = ParseStatus::kInvalidWireType;
        return SIZE_MAX;
    }
}

StreamEncoder::StreamEncoder(SoftwareCodecEngine engine,
                             const StreamCodecLimits &stream_limits,
                             CostSink *cost_sink)
    : engine_(EffectiveEngine(engine)),
      stream_limits_(stream_limits),
      cost_sink_(cost_sink)
{
}

void
StreamEncoder::StageTag(const FieldDescriptor &field, WireType wt)
{
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(MakeTag(field.number, wt), buf);
    staged_.insert(staged_.end(), buf, buf + n);
    bytes_encoded_ += static_cast<uint64_t>(n);
    if (cost_sink_ != nullptr)
        cost_sink_->OnTagEncode(n);
}

void
StreamEncoder::NoteStaged()
{
    ++fields_appended_;
    if (staged_.size() - drained_ > peak_buffered_)
        peak_buffered_ = staged_.size() - drained_;
}

ParseStatus
StreamEncoder::AppendScalar(const FieldDescriptor &field, uint64_t bits)
{
    if (IsVarintType(field.type)) {
        StageTag(field, WireType::kVarint);
        uint8_t buf[kMaxVarintBytes];
        const int n = EncodeVarintValue(field.type, bits, buf);
        staged_.insert(staged_.end(), buf, buf + n);
        bytes_encoded_ += static_cast<uint64_t>(n);
        if (cost_sink_ != nullptr)
            cost_sink_->OnVarintEncode(n);
        NoteStaged();
        return ParseStatus::kOk;
    }
    if (IsFixedType(field.type)) {
        const uint32_t width = InMemorySize(field.type);
        StageTag(field, width == 8 ? WireType::kFixed64
                                   : WireType::kFixed32);
        const size_t at = staged_.size();
        staged_.resize(at + width);
        std::memcpy(staged_.data() + at, &bits, width);
        bytes_encoded_ += width;
        if (cost_sink_ != nullptr)
            cost_sink_->OnFixedCopy(static_cast<int>(width));
        NoteStaged();
        return ParseStatus::kOk;
    }
    return ParseStatus::kInvalidWireType;
}

ParseStatus
StreamEncoder::AppendString(const FieldDescriptor &field,
                            std::string_view data)
{
    if (!IsBytesLike(field.type))
        return ParseStatus::kInvalidWireType;
    if (data.size() > stream_limits_.max_record_bytes)
        return ParseStatus::kResourceExhausted;
    StageTag(field, WireType::kLengthDelimited);
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(data.size(), buf);
    staged_.insert(staged_.end(), buf, buf + n);
    staged_.insert(staged_.end(), data.begin(), data.end());
    bytes_encoded_ += static_cast<uint64_t>(n) + data.size();
    if (cost_sink_ != nullptr) {
        cost_sink_->OnVarintEncode(n);
        cost_sink_->OnMemcpy(data.size());
    }
    NoteStaged();
    return ParseStatus::kOk;
}

ParseStatus
StreamEncoder::AppendRecord(const FieldDescriptor &field,
                            const Message &record)
{
    if (field.type != FieldType::kMessage)
        return ParseStatus::kInvalidWireType;
    const size_t size =
        engine_ == SoftwareCodecEngine::kReference
            ? ReferenceByteSize(record, cost_sink_)
            : ByteSize(record, cost_sink_);
    if (size > stream_limits_.max_record_bytes)
        return ParseStatus::kResourceExhausted;
    StageTag(field, WireType::kLengthDelimited);
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(size, buf);
    staged_.insert(staged_.end(), buf, buf + n);
    bytes_encoded_ += static_cast<uint64_t>(n) + size;
    if (cost_sink_ != nullptr)
        cost_sink_->OnVarintEncode(n);
    const size_t at = staged_.size();
    staged_.resize(at + size);
    const size_t written =
        engine_ == SoftwareCodecEngine::kReference
            ? ReferenceSerializeToBuffer(record, staged_.data() + at,
                                         size, cost_sink_)
            : SerializeToBuffer(record, staged_.data() + at, size,
                                cost_sink_);
    PA_CHECK_EQ(written, size);
    NoteStaged();
    return ParseStatus::kOk;
}

size_t
StreamEncoder::Produce(uint8_t *out, size_t cap)
{
    const size_t n = std::min(cap, staged_.size() - drained_);
    std::memcpy(out, staged_.data() + drained_, n);
    drained_ += n;
    // Compact once the staging buffer is fully drained — the steady
    // state of a sender alternating Append and Produce — so the buffer
    // never grows beyond one in-flight record plus residue.
    if (drained_ == staged_.size()) {
        staged_.clear();
        drained_ = 0;
    } else if (drained_ > (64u << 10)) {
        staged_.erase(staged_.begin(),
                      staged_.begin() + static_cast<ptrdiff_t>(drained_));
        drained_ = 0;
    }
    return n;
}

}  // namespace protoacc::proto
