/**
 * @file
 * Unknown-field preservation for schema-evolution round trips.
 *
 * A parser working from schema version v_{N-1} that meets a field added
 * in v_N must not drop it: the record is preserved verbatim (tag bytes
 * exactly as seen on the wire, plus the value bytes) and re-emitted on
 * serialization, so an old server echoing a new client's message is
 * byte-lossless. All four engines (reference, table, generated, accel
 * model) route preservation through this store so their outputs — and,
 * for the three software engines, their cost-event streams — stay
 * identical.
 *
 * Invariants:
 *  - Records are kept sorted by field number with *stable* insertion
 *    (equal numbers keep arrival order). This makes the forward merge
 *    (software serializers, ascending field walk) and the reverse merge
 *    (accel serializer, descending high-to-low writer) provably produce
 *    the same wire bytes.
 *  - The store and both of its backing arrays live on the parse arena
 *    and are trivially destructible, preserving the "objects are
 *    memcpy-creatable, arenas never run destructors" contract.
 *  - Cost events are emitted only here (one OnAlloc per store creation,
 *    one OnAlloc + OnMemcpy per record) so the three software engines
 *    cannot drift apart.
 */
#ifndef PROTOACC_PROTO_UNKNOWN_FIELDS_H
#define PROTOACC_PROTO_UNKNOWN_FIELDS_H

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "proto/arena.h"
#include "proto/cost_sink.h"

namespace protoacc::proto {

/// One preserved wire record: the raw bytes [tag varint][value] exactly
/// as they appeared in the input, addressed into the store's buffer.
struct UnknownRecord
{
    uint32_t number = 0;  ///< field number decoded from the tag
    uint32_t offset = 0;  ///< start within the store's byte buffer
    uint32_t size = 0;    ///< raw record size (tag + value bytes)
};

/**
 * Arena-backed, trivially-destructible container of preserved unknown
 * records, sorted by field number (stable for equal numbers).
 */
class UnknownFieldStore
{
  public:
    UnknownFieldStore() = default;

    /// Read the store pointer slot of @p obj (layout().unknown_offset).
    static const UnknownFieldStore *
    Get(const void *obj, uint32_t slot_offset)
    {
        const UnknownFieldStore *store;
        std::memcpy(&store,
                    static_cast<const uint8_t *>(obj) + slot_offset,
                    sizeof(store));
        return store;
    }

    /// Fetch or lazily create the store for @p obj, charging one
    /// OnAlloc(sizeof store) on creation.
    static UnknownFieldStore *
    GetOrCreate(void *obj, uint32_t slot_offset, Arena *arena,
                CostSink *sink)
    {
        uint8_t *slot = static_cast<uint8_t *>(obj) + slot_offset;
        UnknownFieldStore *store;
        std::memcpy(&store, slot, sizeof(store));
        if (store == nullptr) {
            store = arena->New<UnknownFieldStore>();
            std::memcpy(slot, &store, sizeof(store));
            if (sink != nullptr)
                sink->OnAlloc(sizeof(UnknownFieldStore));
        }
        return store;
    }

    /**
     * Preserve one raw record (@p len bytes at @p rec: tag varint plus
     * value, byte-for-byte from the wire) under field @p number,
     * keeping records number-sorted with stable insertion. Charges
     * OnAlloc(len) + OnMemcpy(len); internal array growth is amortized
     * into the per-byte charge (identical across engines either way,
     * since this is the only implementation).
     */
    void
    Add(Arena *arena, uint32_t number, const uint8_t *rec, uint32_t len,
        CostSink *sink)
    {
        if (count_ == record_cap_) {
            const uint32_t cap = record_cap_ == 0 ? 4 : record_cap_ * 2;
            auto *grown = static_cast<UnknownRecord *>(
                arena->Allocate(cap * sizeof(UnknownRecord),
                                alignof(UnknownRecord)));
            if (count_ > 0)
                std::memcpy(grown, records_,
                            count_ * sizeof(UnknownRecord));
            records_ = grown;
            record_cap_ = cap;
        }
        if (bytes_size_ + len > bytes_cap_) {
            uint32_t cap = bytes_cap_ == 0 ? 64 : bytes_cap_ * 2;
            while (cap < bytes_size_ + len)
                cap *= 2;
            auto *grown =
                static_cast<uint8_t *>(arena->Allocate(cap, 8));
            if (bytes_size_ > 0)
                std::memcpy(grown, bytes_, bytes_size_);
            bytes_ = grown;
            bytes_cap_ = cap;
        }
        std::memcpy(bytes_ + bytes_size_, rec, len);
        // Stable sorted insert: shift strictly-greater numbers up, so
        // equal numbers keep arrival order (what both the forward and
        // the reverse serializer merge rely on).
        uint32_t i = count_;
        while (i > 0 && records_[i - 1].number > number) {
            records_[i] = records_[i - 1];
            --i;
        }
        records_[i] = UnknownRecord{number, bytes_size_, len};
        bytes_size_ += len;
        ++count_;
        if (sink != nullptr) {
            sink->OnAlloc(len);
            sink->OnMemcpy(len);
        }
    }

    uint32_t count() const { return count_; }
    /// Sum of raw record bytes — the store's serialized-size
    /// contribution (records re-emit verbatim).
    size_t total_bytes() const { return bytes_size_; }

    const UnknownRecord &
    record(uint32_t i) const
    {
        return records_[i];
    }

    const uint8_t *
    bytes_of(const UnknownRecord &r) const
    {
        return bytes_ + r.offset;
    }

  private:
    UnknownRecord *records_ = nullptr;
    uint32_t count_ = 0;
    uint32_t record_cap_ = 0;
    uint8_t *bytes_ = nullptr;
    uint32_t bytes_size_ = 0;  ///< == total preserved record bytes
    uint32_t bytes_cap_ = 0;
};

static_assert(std::is_trivially_destructible_v<UnknownFieldStore>,
              "unknown stores live on parse arenas");

/// Serialized-size contribution of @p obj's unknown store (0 if none).
inline size_t
UnknownTotalBytes(const void *obj, uint32_t slot_offset)
{
    const UnknownFieldStore *u =
        UnknownFieldStore::Get(obj, slot_offset);
    return u == nullptr ? 0 : u->total_bytes();
}

/// Structural equality: same records, same numbers, same raw bytes.
inline bool
UnknownStoresEqual(const UnknownFieldStore *a, const UnknownFieldStore *b)
{
    const uint32_t an = a == nullptr ? 0 : a->count();
    const uint32_t bn = b == nullptr ? 0 : b->count();
    if (an != bn)
        return false;
    for (uint32_t i = 0; i < an; ++i) {
        const UnknownRecord &ra = a->record(i);
        const UnknownRecord &rb = b->record(i);
        if (ra.number != rb.number || ra.size != rb.size ||
            std::memcmp(a->bytes_of(ra), b->bytes_of(rb), ra.size) != 0)
            return false;
    }
    return true;
}

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_UNKNOWN_FIELDS_H
