/**
 * @file
 * Schema-specialized C++ code generator (the "protoc trick").
 *
 * Renders a compilable C++ translation unit from a compiled
 * DescriptorPool: per message type, a straight-line parse function
 * (constant-tag dispatch with expected-next-tag chaining), a sizing
 * function and a write function, all specialized on the pool's compiled
 * layout (byte offsets, hasbit words/masks, pre-encoded tag bytes,
 * element widths). The emitted TU registers a GeneratedPoolCodec
 * (codec_generated.h) keyed by the pool's structural fingerprint, so a
 * runtime pool built from the same recipe resolves to it automatically.
 *
 * The generator uses the codec tables (codec_table.h) as its IR — the
 * same compiled form the table interpreter executes — which is how the
 * three software engines stay wire-, verdict- and cost-event-identical
 * by construction rather than by convention.
 *
 * Driven at build time by tools/codec_gen_main.cc.
 */
#ifndef PROTOACC_PROTO_CODEC_GEN_H
#define PROTOACC_PROTO_CODEC_GEN_H

#include <string>
#include <string_view>

#include "proto/descriptor.h"

namespace protoacc::proto {

/// File header for an emitted codec TU: banner comment + includes.
/// Emit once per output file, then any number of GenerateCodecSource
/// results.
std::string CodecFilePrologue(std::string_view banner);

/**
 * Emit the generated codec for @p pool (which must be Compile()d) as a
 * self-contained namespace: per-message parse/size/write functions, the
 * four engine entry points, and a static registrar. @p pool_name is a
 * human-readable label stored in the registered codec for diagnostics
 * (e.g. "hpb:bench2").
 */
std::string GenerateCodecSource(const DescriptorPool &pool,
                                std::string_view pool_name);

}  // namespace protoacc::proto

#endif  // PROTOACC_PROTO_CODEC_GEN_H
