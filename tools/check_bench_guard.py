#!/usr/bin/env python3
"""Bench-regression guard over soak/chaos correctness counters.

The soak binaries (chaos_soak, skew_soak, stream_soak, fleet_soak)
already exit nonzero when their invariants fail, but their verdict and
their emitted JSON are produced by the same process — a bug in the
binary's own `require()` wiring could print PASS while the counters
rot. This script re-checks the emitted BENCH_*.json files from the
outside: every correctness counter it knows about must be exactly zero,
and every determinism flag must be true.

Counters that are nonzero *by design* live in control-experiment
blocks: any object carrying "crc_enabled": false is the
integrity-disabled baseline (chaos_soak mode B exists to show silent
corruption happening) and is skipped wholesale.

Usage: check_bench_guard.py FILE.json [FILE.json ...]
Exit 0 when every file passes, 1 otherwise.
"""

import json
import sys

# Any of these, anywhere in a (non-control) object tree, must be 0.
MUST_BE_ZERO = {
    "wrong_responses",
    "unknown_responses",
    "lost_calls",
    "duplicate_execs",
    "silent_corruptions",
    "stale_epoch_dispatches",
    "verdict_disagreements",
    "message_mismatches",
    "engine_byte_mismatches",
    "roundtrip_mismatches",
}

# Any of these must be true (same-seed replay determinism flags).
MUST_BE_TRUE = {
    "deterministic_replay",
    "deterministic_counters",
}


def check(node, path, failures):
    if isinstance(node, dict):
        if node.get("crc_enabled") is False:
            return  # control experiment: nonzero counters are the point
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if key in MUST_BE_ZERO and isinstance(value, (int, float)):
                if value != 0:
                    failures.append(f"{child} = {value} (expected 0)")
            elif key in MUST_BE_TRUE and isinstance(value, bool):
                if not value:
                    failures.append(f"{child} = false (expected true)")
            else:
                check(value, child, failures)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check(value, f"{path}[{i}]", failures)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    ok = True
    for name in argv[1:]:
        try:
            with open(name, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{name}: unreadable: {err}", file=sys.stderr)
            ok = False
            continue
        failures = []
        check(doc, "", failures)
        if failures:
            ok = False
            for failure in failures:
                print(f"{name}: {failure}", file=sys.stderr)
        else:
            print(f"{name}: correctness counters clean")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
