#include "gen_pools.h"

#include "common/check.h"
#include "proto/schema_parser.h"
#include "proto/schema_random.h"

namespace protoacc::genpools {

using proto::DescriptorPool;
using proto::FieldType;
using proto::HasbitsMode;
using proto::Label;
using proto::Syntax;

NamedPool
BuildRpcEchoPool()
{
    NamedPool p;
    p.name = "rpc:echo";
    p.pool = std::make_unique<DescriptorPool>();
    // Byte-for-byte the schema text of bench/rpc_throughput.cc and
    // bench/robustness_sweep.cc part 2.
    const auto parsed = proto::ParseSchema(R"(
        message EchoRequest { optional string text = 1; }
        message EchoResponse { optional string text = 1; }
    )",
                                           p.pool.get());
    PA_CHECK(parsed.ok);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = p.pool->FindMessage("EchoRequest");
    return p;
}

NamedPool
BuildRecursivePool()
{
    NamedPool p;
    p.name = "aux:recursive";
    p.pool = std::make_unique<DescriptorPool>();
    const int node = p.pool->AddMessage("Node");
    p.pool->AddField(node, "id", 1, FieldType::kInt32);
    p.pool->AddMessageField(node, "child", 2, node);
    p.pool->AddMessageField(node, "kids", 3, node, Label::kRepeated);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = node;
    return p;
}

NamedPool
BuildUtf8Pool()
{
    NamedPool p;
    p.name = "aux:utf8";
    p.pool = std::make_unique<DescriptorPool>();
    const int msg = p.pool->AddMessage("U", Syntax::kProto3);
    p.pool->AddField(msg, "s", 1, FieldType::kString);
    p.pool->AddField(msg, "b", 2, FieldType::kBytes);
    p.pool->AddField(msg, "r", 3, FieldType::kString, Label::kRepeated);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = msg;
    return p;
}

NamedPool
BuildEmptyPool()
{
    NamedPool p;
    p.name = "aux:empty";
    p.pool = std::make_unique<DescriptorPool>();
    const int empty = p.pool->AddMessage("Empty");
    const int outer = p.pool->AddMessage("Outer");
    p.pool->AddMessageField(outer, "sub", 1, empty);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = empty;
    return p;
}

NamedPool
BuildKitchenSinkPool()
{
    NamedPool p;
    p.name = "aux:kitchen-sink";
    p.pool = std::make_unique<DescriptorPool>();

    const int inner = p.pool->AddMessage("Inner");
    p.pool->AddField(inner, "x", 1, FieldType::kUint64);
    p.pool->AddField(inner, "y", 2, FieldType::kString);

    const int msg = p.pool->AddMessage("Sink");
    // Singular: one of every scalar class, with non-trivial defaults.
    p.pool->AddField(msg, "d", 1, FieldType::kDouble);
    p.pool->AddField(msg, "f", 2, FieldType::kFloat);
    p.pool->AddField(msg, "i32", 3, FieldType::kInt32);
    p.pool->AddField(msg, "i64", 4, FieldType::kInt64);
    p.pool->AddField(msg, "u32", 5, FieldType::kUint32);
    p.pool->AddField(msg, "u64", 6, FieldType::kUint64);
    p.pool->AddField(msg, "s32", 7, FieldType::kSint32);
    p.pool->AddField(msg, "s64", 8, FieldType::kSint64);
    p.pool->AddField(msg, "x32", 9, FieldType::kFixed32);
    p.pool->AddField(msg, "x64", 10, FieldType::kFixed64);
    p.pool->AddField(msg, "n32", 11, FieldType::kSfixed32);
    p.pool->AddField(msg, "n64", 12, FieldType::kSfixed64);
    p.pool->AddField(msg, "bl", 13, FieldType::kBool);
    p.pool->AddField(msg, "en", 14, FieldType::kEnum);
    p.pool->AddField(msg, "str", 15, FieldType::kString);
    p.pool->AddField(msg, "byt", 16, FieldType::kBytes);
    p.pool->AddMessageField(msg, "sub", 17, inner);
    p.pool->SetScalarDefault(msg, 3, static_cast<uint64_t>(-7));
    p.pool->SetStringDefault(msg, 15, "dft\"\\\x01\xff");
    // Repeated unpacked / packed; a field-number gap to force the
    // sparse dispatch fallback; 2- and 3-byte tags for the chaining
    // paths.
    p.pool->AddField(msg, "ri", 40, FieldType::kInt64, Label::kRepeated,
                     /*packed=*/false);
    p.pool->AddField(msg, "pi", 41, FieldType::kSint32, Label::kRepeated,
                     /*packed=*/true);
    p.pool->AddField(msg, "pf", 42, FieldType::kFixed32, Label::kRepeated,
                     /*packed=*/true);
    p.pool->AddField(msg, "rs", 43, FieldType::kString, Label::kRepeated);
    p.pool->AddMessageField(msg, "rm", 44, inner, Label::kRepeated);
    p.pool->AddField(msg, "far", 5000, FieldType::kUint32);
    p.pool->AddField(msg, "vfar", 300000, FieldType::kBool);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = msg;
    return p;
}

NamedPool
BuildMicroVarintPool(bool repeated)
{
    NamedPool p;
    p.name = repeated ? "micro:varint-R" : "micro:varint";
    p.pool = std::make_unique<DescriptorPool>();
    const int msg = p.pool->AddMessage("M");
    const Label label = repeated ? Label::kRepeated : Label::kOptional;
    for (uint32_t f = 1; f <= 5; ++f) {
        p.pool->AddField(msg, "v" + std::to_string(f), f,
                         FieldType::kUint64, label,
                         /*packed=*/repeated);
    }
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = msg;
    return p;
}

NamedPool
BuildMicroStringPool()
{
    NamedPool p;
    p.name = "micro:string";
    p.pool = std::make_unique<DescriptorPool>();
    const int msg = p.pool->AddMessage("M");
    p.pool->AddField(msg, "s", 1, FieldType::kString);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = msg;
    return p;
}

NamedPool
BuildMicroRepeatedStringPool()
{
    NamedPool p;
    p.name = "micro:repeated-string";
    p.pool = std::make_unique<DescriptorPool>();
    const int msg = p.pool->AddMessage("M");
    p.pool->AddField(msg, "rs", 1, FieldType::kString, Label::kRepeated);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = msg;
    return p;
}

NamedPool
BuildFuzzPool(uint64_t seed, int max_depth)
{
    NamedPool p;
    p.name = "fuzz:seed-" + std::to_string(seed);
    p.pool = std::make_unique<DescriptorPool>();
    Rng rng(seed);
    proto::SchemaGenOptions opts;
    opts.max_depth = max_depth;
    p.root = proto::GenerateRandomSchema(p.pool.get(), &rng, opts);
    p.pool->Compile(HasbitsMode::kSparse);
    return p;
}

NamedPool
BuildBenchRandomPool(uint64_t seed)
{
    NamedPool p;
    p.name = "gbench:seed-" + std::to_string(seed);
    p.pool = std::make_unique<DescriptorPool>();
    Rng rng(seed);
    p.root = proto::GenerateRandomSchema(p.pool.get(), &rng,
                                         proto::SchemaGenOptions{});
    p.pool->Compile();
    return p;
}

NamedPool
BuildSkewPool(int version)
{
    PA_CHECK(version >= 0 && version <= 2);
    NamedPool p;
    p.name = "skew:v" + std::to_string(version);
    p.pool = std::make_unique<DescriptorPool>();
    const int inner = p.pool->AddMessage("Inner");
    p.pool->AddField(inner, "a", 1, FieldType::kUint32);
    const int msg = p.pool->AddMessage("Skew");
    p.pool->AddField(msg, "id", 1, FieldType::kUint64);
    p.pool->AddField(msg, "name", 2, FieldType::kString);
    // v_{N+1} drops score: v_N payloads reach it as unknown field 3,
    // which every engine must preserve byte-identically.
    if (version <= 1)
        p.pool->AddField(msg, "score", 3, FieldType::kInt64);
    p.pool->AddField(msg, "tags", 4, FieldType::kString,
                     Label::kRepeated);
    p.pool->AddMessageField(msg, "sub", 5, inner);
    if (version >= 1) {
        // v_N additions: unknown to v_{N-1} decoders.
        p.pool->AddField(msg, "flags", 6, FieldType::kUint32);
        p.pool->AddField(msg, "blob", 7, FieldType::kBytes);
        p.pool->AddField(msg, "extras", 8, FieldType::kSint32,
                         Label::kRepeated, /*packed=*/true);
        // The widened-field skew: v_N writes count as int64, v_{N+1}
        // reads it as int32 — engines must agree on the truncation
        // (4-engine agreement, not a round-trip-identity case).
        p.pool->AddField(msg, "count", 9,
                         version == 1 ? FieldType::kInt64
                                      : FieldType::kInt32);
    }
    if (version >= 2)
        p.pool->AddField(msg, "note", 10, FieldType::kString);
    p.pool->Compile(HasbitsMode::kSparse);
    p.root = p.pool->FindMessage("Skew");
    return p;
}

std::vector<NamedPool>
BuildAuxSuite()
{
    std::vector<NamedPool> pools;
    pools.push_back(BuildRpcEchoPool());
    pools.push_back(BuildRecursivePool());
    pools.push_back(BuildUtf8Pool());
    pools.push_back(BuildEmptyPool());
    pools.push_back(BuildKitchenSinkPool());
    pools.push_back(BuildMicroVarintPool(false));
    pools.push_back(BuildMicroVarintPool(true));
    pools.push_back(BuildMicroStringPool());
    pools.push_back(BuildMicroRepeatedStringPool());
    // bench/robustness_sweep.cc part 1: RandomSchemaRig(0xD1FF + s).
    for (uint64_t s = 0; s < 10; ++s)
        pools.push_back(BuildFuzzPool(0xD1FF + s));
    // tests/robustness/differential_fuzz_test.cc schema seeds.
    for (uint64_t s = 1; s <= 12; ++s)
        pools.push_back(BuildFuzzPool(1000 + s));
    pools.push_back(BuildFuzzPool(31));
    pools.push_back(BuildFuzzPool(55));
    pools.push_back(BuildFuzzPool(77));
    // bench/codec_gbench.cc BM_ParseRandomSchema seeds.
    pools.push_back(BuildBenchRandomPool(3));
    pools.push_back(BuildBenchRandomPool(17));
    // Schema-evolution skew family (schema_skew_test, skew_soak).
    for (int v = 0; v <= 2; ++v)
        pools.push_back(BuildSkewPool(v));
    return pools;
}

}  // namespace protoacc::genpools
