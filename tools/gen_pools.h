/**
 * @file
 * Deterministic pool recipes shared between build-time codegen and
 * runtime consumers.
 *
 * The generated-codec registry matches pools by structural fingerprint
 * (proto/codec_generated.h), so a runtime pool picks up its specialized
 * codec exactly when it was built by the same recipe the generator ran
 * at build time. This library is that single source of truth: the
 * codegen driver (codec_gen_main.cc) emits codecs for every pool listed
 * here, and tests/benches that want generated-engine coverage construct
 * their pools through the same functions (or through the library
 * recipes these replicate: harness microbenches, the robustness rigs'
 * random schemas, the RPC echo schema).
 */
#ifndef PROTOACC_TOOLS_GEN_POOLS_H
#define PROTOACC_TOOLS_GEN_POOLS_H

#include <memory>
#include <string>
#include <vector>

#include "proto/descriptor.h"

namespace protoacc::genpools {

/// One named pool recipe instance. @p root is the message type tests
/// parse/serialize as (the whole pool gets a codec regardless).
struct NamedPool
{
    std::string name;
    int root = 0;
    std::unique_ptr<proto::DescriptorPool> pool;
};

/// The RPC echo schema (bench/rpc_throughput.cc and
/// bench/robustness_sweep.cc part 2, via the same ParseSchema text).
NamedPool BuildRpcEchoPool();

/// Self-recursive schema: Node{id, child: Node, kids: repeated Node} —
/// exercises the generator's recursion and kMaxParseDepth handling.
NamedPool BuildRecursivePool();

/// proto3 message with UTF-8-validated string, bytes, repeated string.
NamedPool BuildUtf8Pool();

/// An empty message (no fields: pure unknown-field skipping) plus an
/// outer type holding it.
NamedPool BuildEmptyPool();

/// Every FieldOp x {singular, repeated, packed}, non-trivial defaults,
/// sparse field numbers and multi-byte tags — the generator's
/// worst-case single schema.
NamedPool BuildKitchenSinkPool();

/// harness::MakeVarintBench's schema (five uint64 fields; repeated ->
/// packed), shared by every varint-N microbench.
NamedPool BuildMicroVarintPool(bool repeated);

/// harness::MakeStringBench's schema (one string field), shared by all
/// string payload sizes.
NamedPool BuildMicroStringPool();

/// src/harness/microbench.cc MakeRepeatedStringBench: one repeated
/// string field.
NamedPool BuildMicroRepeatedStringPool();

/// robustness::RandomSchemaRig's schema recipe (seeded random schema,
/// max_depth defaulting to the rig's 3, HasbitsMode::kSparse).
NamedPool BuildFuzzPool(uint64_t seed, int max_depth = 3);

/// codec_gbench BM_ParseRandomSchema's schema recipe (default
/// SchemaGenOptions, default Compile).
NamedPool BuildBenchRandomPool(uint64_t seed);

/**
 * Schema-evolution skew family: three structurally distinct versions
 * of one logical message (tests/robustness/schema_skew_test.cc and
 * bench/skew_soak.cc). @p version selects:
 *   0  v_{N-1}: the base field set;
 *   1  v_N: adds fields 6-8 (unknown to v_{N-1}) and an int64 count;
 *   2  v_{N+1}: removes field 3 (v_N payloads carry it as an unknown),
 *      narrows count to int32 (the widened-skew truncation case) and
 *      adds field 10.
 * Each version compiles to a distinct structural fingerprint, so the
 * registry negotiates them as separate live schema versions.
 */
NamedPool BuildSkewPool(int version);

/**
 * The full auxiliary suite the build generates codecs for: the edge
 * pools, the microbench pools, the RPC echo pool, the robustness-rig
 * fuzz pools at every seed the checked-in suites use
 * (bench/robustness_sweep.cc, tests/robustness/differential_fuzz_test.cc)
 * and the codec_gbench random-schema seeds.
 */
std::vector<NamedPool> BuildAuxSuite();

}  // namespace protoacc::genpools

#endif  // PROTOACC_TOOLS_GEN_POOLS_H
