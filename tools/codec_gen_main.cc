/**
 * @file
 * Build-time codec generator driver.
 *
 * Renders schema-specialized C++ codecs (proto/codec_gen.h) for a named
 * pool suite into a single translation unit that the build compiles
 * into pa_gen_codecs. Usage:
 *
 *     codec_gen_main --suite=hpb --out=build/generated/hpb_codecs.gen.cc
 *     codec_gen_main --suite=aux --out=build/generated/aux_codecs.gen.cc
 *
 * --suite=hpb covers the six HyperProtoBench service schemas (the
 * fig12/fig13 workloads); --suite=aux covers the shared deterministic
 * recipes in gen_pools.h. Pools that fingerprint identically (e.g. the
 * two micro-varint variants if their layouts coincide) are emitted
 * once; the runtime registry would reject the duplicate anyway.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "gen_pools.h"
#include "hpb/generator.h"
#include "profile/fleet_model.h"
#include "proto/codec_gen.h"
#include "proto/codec_generated.h"

namespace {

struct SuitePool
{
    std::string name;
    const protoacc::proto::DescriptorPool *pool = nullptr;
};

int
Run(const std::string &suite, const std::string &out_path, int index)
{
    using protoacc::proto::CodecFilePrologue;
    using protoacc::proto::GenerateCodecSource;
    using protoacc::proto::SchemaFingerprint;

    // Own the pools for the lifetime of the run; the vectors keep the
    // HPB services / aux recipes alive while we render.
    std::vector<protoacc::hpb::HpbBenchmark> hpb;
    std::vector<protoacc::genpools::NamedPool> aux;
    std::vector<SuitePool> pools;

    if (suite == "hpb") {
        protoacc::profile::Fleet fleet{protoacc::profile::FleetParams{}};
        hpb = protoacc::hpb::BuildHyperProtoBench(fleet);
        for (const auto &bench : hpb)
            pools.push_back({"hpb:" + bench.name, &bench.service->pool()});
    } else if (suite == "aux") {
        aux = protoacc::genpools::BuildAuxSuite();
        for (const auto &np : aux)
            pools.push_back({np.name, np.pool.get()});
    } else {
        std::fprintf(stderr, "codec_gen_main: unknown --suite=%s\n",
                     suite.c_str());
        return 2;
    }

    // --index=i shards the suite one pool per translation unit so the
    // heavyweight HyperProtoBench codecs compile in parallel.
    if (index >= 0) {
        if (static_cast<size_t>(index) >= pools.size()) {
            std::fprintf(stderr,
                         "codec_gen_main: --index=%d out of range "
                         "(suite has %zu pools)\n",
                         index, pools.size());
            return 2;
        }
        pools = {pools[static_cast<size_t>(index)]};
    }

    std::string banner = "suite '" + suite + "'";
    std::string text = CodecFilePrologue(banner);
    std::set<uint64_t> seen;
    size_t emitted = 0;
    for (const auto &sp : pools) {
        const uint64_t fp = SchemaFingerprint(*sp.pool);
        if (!seen.insert(fp).second)
            continue;  // structurally identical pool already covered
        text += GenerateCodecSource(*sp.pool, sp.name);
        ++emitted;
    }

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "codec_gen_main: cannot open %s\n",
                     out_path.c_str());
        return 1;
    }
    out << text;
    out.close();
    PA_CHECK(out.good());
    std::fprintf(stderr,
                 "codec_gen_main: %zu pool(s) -> %zu unique codec(s), "
                 "%zu bytes -> %s\n",
                 pools.size(), emitted, text.size(), out_path.c_str());
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string suite;
    std::string out_path;
    int index = -1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--suite=", 8) == 0) {
            suite = arg + 8;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            out_path = arg + 6;
        } else if (std::strncmp(arg, "--index=", 8) == 0) {
            index = std::atoi(arg + 8);
        } else {
            std::fprintf(stderr, "codec_gen_main: unknown arg %s\n", arg);
            return 2;
        }
    }
    if (suite.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "usage: codec_gen_main --suite=hpb|aux --out=PATH "
                     "[--index=N]\n");
        return 2;
    }
    return Run(suite, out_path, index);
}
