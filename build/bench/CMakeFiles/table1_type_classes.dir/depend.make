# Empty dependencies file for table1_type_classes.
# This may be replaced when dependencies are built.
