file(REMOVE_RECURSE
  "CMakeFiles/table1_type_classes.dir/table1_type_classes.cc.o"
  "CMakeFiles/table1_type_classes.dir/table1_type_classes.cc.o.d"
  "table1_type_classes"
  "table1_type_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_type_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
