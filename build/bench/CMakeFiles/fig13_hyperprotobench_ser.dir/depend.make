# Empty dependencies file for fig13_hyperprotobench_ser.
# This may be replaced when dependencies are built.
