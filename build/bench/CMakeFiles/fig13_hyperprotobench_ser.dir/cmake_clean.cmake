file(REMOVE_RECURSE
  "CMakeFiles/fig13_hyperprotobench_ser.dir/fig13_hyperprotobench_ser.cc.o"
  "CMakeFiles/fig13_hyperprotobench_ser.dir/fig13_hyperprotobench_ser.cc.o.d"
  "fig13_hyperprotobench_ser"
  "fig13_hyperprotobench_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hyperprotobench_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
