file(REMOVE_RECURSE
  "CMakeFiles/fig2_cycles_by_op.dir/fig2_cycles_by_op.cc.o"
  "CMakeFiles/fig2_cycles_by_op.dir/fig2_cycles_by_op.cc.o.d"
  "fig2_cycles_by_op"
  "fig2_cycles_by_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cycles_by_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
