# Empty compiler generated dependencies file for fig2_cycles_by_op.
# This may be replaced when dependencies are built.
