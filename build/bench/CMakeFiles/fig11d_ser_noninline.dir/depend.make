# Empty dependencies file for fig11d_ser_noninline.
# This may be replaced when dependencies are built.
