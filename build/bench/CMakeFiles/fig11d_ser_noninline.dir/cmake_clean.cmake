file(REMOVE_RECURSE
  "CMakeFiles/fig11d_ser_noninline.dir/fig11d_ser_noninline.cc.o"
  "CMakeFiles/fig11d_ser_noninline.dir/fig11d_ser_noninline.cc.o.d"
  "fig11d_ser_noninline"
  "fig11d_ser_noninline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11d_ser_noninline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
