# Empty compiler generated dependencies file for fig3_msg_sizes.
# This may be replaced when dependencies are built.
