file(REMOVE_RECURSE
  "CMakeFiles/fig3_msg_sizes.dir/fig3_msg_sizes.cc.o"
  "CMakeFiles/fig3_msg_sizes.dir/fig3_msg_sizes.cc.o.d"
  "fig3_msg_sizes"
  "fig3_msg_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_msg_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
