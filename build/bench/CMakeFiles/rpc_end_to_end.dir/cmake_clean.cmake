file(REMOVE_RECURSE
  "CMakeFiles/rpc_end_to_end.dir/rpc_end_to_end.cc.o"
  "CMakeFiles/rpc_end_to_end.dir/rpc_end_to_end.cc.o.d"
  "rpc_end_to_end"
  "rpc_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
