# Empty dependencies file for sec38_depth.
# This may be replaced when dependencies are built.
