file(REMOVE_RECURSE
  "CMakeFiles/sec38_depth.dir/sec38_depth.cc.o"
  "CMakeFiles/sec38_depth.dir/sec38_depth.cc.o.d"
  "sec38_depth"
  "sec38_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec38_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
