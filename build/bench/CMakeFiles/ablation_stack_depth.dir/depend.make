# Empty dependencies file for ablation_stack_depth.
# This may be replaced when dependencies are built.
