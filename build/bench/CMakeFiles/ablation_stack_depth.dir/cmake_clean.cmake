file(REMOVE_RECURSE
  "CMakeFiles/ablation_stack_depth.dir/ablation_stack_depth.cc.o"
  "CMakeFiles/ablation_stack_depth.dir/ablation_stack_depth.cc.o.d"
  "ablation_stack_depth"
  "ablation_stack_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stack_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
