file(REMOVE_RECURSE
  "CMakeFiles/ablation_fsu_count.dir/ablation_fsu_count.cc.o"
  "CMakeFiles/ablation_fsu_count.dir/ablation_fsu_count.cc.o.d"
  "ablation_fsu_count"
  "ablation_fsu_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fsu_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
