# Empty dependencies file for ablation_fsu_count.
# This may be replaced when dependencies are built.
