file(REMOVE_RECURSE
  "CMakeFiles/fig12_hyperprotobench_deser.dir/fig12_hyperprotobench_deser.cc.o"
  "CMakeFiles/fig12_hyperprotobench_deser.dir/fig12_hyperprotobench_deser.cc.o.d"
  "fig12_hyperprotobench_deser"
  "fig12_hyperprotobench_deser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hyperprotobench_deser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
