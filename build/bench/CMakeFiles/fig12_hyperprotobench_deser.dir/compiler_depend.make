# Empty compiler generated dependencies file for fig12_hyperprotobench_deser.
# This may be replaced when dependencies are built.
