file(REMOVE_RECURSE
  "CMakeFiles/ablation_hasbits.dir/ablation_hasbits.cc.o"
  "CMakeFiles/ablation_hasbits.dir/ablation_hasbits.cc.o.d"
  "ablation_hasbits"
  "ablation_hasbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hasbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
