# Empty compiler generated dependencies file for ablation_hasbits.
# This may be replaced when dependencies are built.
