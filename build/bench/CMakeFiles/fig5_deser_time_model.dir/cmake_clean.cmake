file(REMOVE_RECURSE
  "CMakeFiles/fig5_deser_time_model.dir/fig5_deser_time_model.cc.o"
  "CMakeFiles/fig5_deser_time_model.dir/fig5_deser_time_model.cc.o.d"
  "fig5_deser_time_model"
  "fig5_deser_time_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deser_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
