# Empty compiler generated dependencies file for fig5_deser_time_model.
# This may be replaced when dependencies are built.
