# Empty dependencies file for fig11b_ser_inline.
# This may be replaced when dependencies are built.
