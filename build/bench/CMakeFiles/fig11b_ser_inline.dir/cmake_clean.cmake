file(REMOVE_RECURSE
  "CMakeFiles/fig11b_ser_inline.dir/fig11b_ser_inline.cc.o"
  "CMakeFiles/fig11b_ser_inline.dir/fig11b_ser_inline.cc.o.d"
  "fig11b_ser_inline"
  "fig11b_ser_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_ser_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
