file(REMOVE_RECURSE
  "CMakeFiles/sec7_other_ops.dir/sec7_other_ops.cc.o"
  "CMakeFiles/sec7_other_ops.dir/sec7_other_ops.cc.o.d"
  "sec7_other_ops"
  "sec7_other_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_other_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
