# Empty dependencies file for sec7_other_ops.
# This may be replaced when dependencies are built.
