# Empty compiler generated dependencies file for codec_gbench.
# This may be replaced when dependencies are built.
