file(REMOVE_RECURSE
  "CMakeFiles/codec_gbench.dir/codec_gbench.cc.o"
  "CMakeFiles/codec_gbench.dir/codec_gbench.cc.o.d"
  "codec_gbench"
  "codec_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
