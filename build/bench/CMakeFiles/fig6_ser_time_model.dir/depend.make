# Empty dependencies file for fig6_ser_time_model.
# This may be replaced when dependencies are built.
