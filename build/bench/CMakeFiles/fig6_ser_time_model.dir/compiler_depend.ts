# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_ser_time_model.
