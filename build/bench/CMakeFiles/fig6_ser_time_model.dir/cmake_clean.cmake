file(REMOVE_RECURSE
  "CMakeFiles/fig6_ser_time_model.dir/fig6_ser_time_model.cc.o"
  "CMakeFiles/fig6_ser_time_model.dir/fig6_ser_time_model.cc.o.d"
  "fig6_ser_time_model"
  "fig6_ser_time_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ser_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
