# Empty compiler generated dependencies file for sec53_asic_area.
# This may be replaced when dependencies are built.
