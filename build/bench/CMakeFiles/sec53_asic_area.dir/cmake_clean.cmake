file(REMOVE_RECURSE
  "CMakeFiles/sec53_asic_area.dir/sec53_asic_area.cc.o"
  "CMakeFiles/sec53_asic_area.dir/sec53_asic_area.cc.o.d"
  "sec53_asic_area"
  "sec53_asic_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_asic_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
