file(REMOVE_RECURSE
  "CMakeFiles/fig7_density.dir/fig7_density.cc.o"
  "CMakeFiles/fig7_density.dir/fig7_density.cc.o.d"
  "fig7_density"
  "fig7_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
