file(REMOVE_RECURSE
  "CMakeFiles/fig4_field_stats.dir/fig4_field_stats.cc.o"
  "CMakeFiles/fig4_field_stats.dir/fig4_field_stats.cc.o.d"
  "fig4_field_stats"
  "fig4_field_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_field_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
