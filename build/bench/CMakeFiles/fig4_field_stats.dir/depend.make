# Empty dependencies file for fig4_field_stats.
# This may be replaced when dependencies are built.
