file(REMOVE_RECURSE
  "CMakeFiles/fig11c_deser_alloc.dir/fig11c_deser_alloc.cc.o"
  "CMakeFiles/fig11c_deser_alloc.dir/fig11c_deser_alloc.cc.o.d"
  "fig11c_deser_alloc"
  "fig11c_deser_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_deser_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
