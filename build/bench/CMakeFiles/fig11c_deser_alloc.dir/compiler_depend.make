# Empty compiler generated dependencies file for fig11c_deser_alloc.
# This may be replaced when dependencies are built.
