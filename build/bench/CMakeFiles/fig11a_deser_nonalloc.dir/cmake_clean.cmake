file(REMOVE_RECURSE
  "CMakeFiles/fig11a_deser_nonalloc.dir/fig11a_deser_nonalloc.cc.o"
  "CMakeFiles/fig11a_deser_nonalloc.dir/fig11a_deser_nonalloc.cc.o.d"
  "fig11a_deser_nonalloc"
  "fig11a_deser_nonalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_deser_nonalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
