# Empty dependencies file for fig11a_deser_nonalloc.
# This may be replaced when dependencies are built.
