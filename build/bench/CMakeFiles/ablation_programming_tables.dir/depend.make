# Empty dependencies file for ablation_programming_tables.
# This may be replaced when dependencies are built.
