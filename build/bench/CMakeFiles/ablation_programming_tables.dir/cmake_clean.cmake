file(REMOVE_RECURSE
  "CMakeFiles/ablation_programming_tables.dir/ablation_programming_tables.cc.o"
  "CMakeFiles/ablation_programming_tables.dir/ablation_programming_tables.cc.o.d"
  "ablation_programming_tables"
  "ablation_programming_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_programming_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
