# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_service "/root/repo/build/examples/rpc_service")
set_tests_properties(example_rpc_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_storage_log "/root/repo/build/examples/storage_log")
set_tests_properties(example_storage_log PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_study "/root/repo/build/examples/fleet_study")
set_tests_properties(example_fleet_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protoc_tool "/root/repo/build/examples/protoc_tool" "demo")
set_tests_properties(example_protoc_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
