file(REMOVE_RECURSE
  "CMakeFiles/protoc_tool.dir/protoc_tool.cpp.o"
  "CMakeFiles/protoc_tool.dir/protoc_tool.cpp.o.d"
  "protoc_tool"
  "protoc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protoc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
