# Empty compiler generated dependencies file for protoc_tool.
# This may be replaced when dependencies are built.
