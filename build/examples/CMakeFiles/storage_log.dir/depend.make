# Empty dependencies file for storage_log.
# This may be replaced when dependencies are built.
