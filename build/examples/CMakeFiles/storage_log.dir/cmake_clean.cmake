file(REMOVE_RECURSE
  "CMakeFiles/storage_log.dir/storage_log.cpp.o"
  "CMakeFiles/storage_log.dir/storage_log.cpp.o.d"
  "storage_log"
  "storage_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
