file(REMOVE_RECURSE
  "CMakeFiles/rpc_service.dir/rpc_service.cpp.o"
  "CMakeFiles/rpc_service.dir/rpc_service.cpp.o.d"
  "rpc_service"
  "rpc_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
