# Empty dependencies file for test_accel_fuzz.
# This may be replaced when dependencies are built.
