file(REMOVE_RECURSE
  "CMakeFiles/test_accel_fuzz.dir/accel/accel_fuzz_test.cc.o"
  "CMakeFiles/test_accel_fuzz.dir/accel/accel_fuzz_test.cc.o.d"
  "test_accel_fuzz"
  "test_accel_fuzz.pdb"
  "test_accel_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
