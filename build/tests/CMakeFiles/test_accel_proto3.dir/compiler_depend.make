# Empty compiler generated dependencies file for test_accel_proto3.
# This may be replaced when dependencies are built.
