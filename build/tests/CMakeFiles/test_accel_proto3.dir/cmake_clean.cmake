file(REMOVE_RECURSE
  "CMakeFiles/test_accel_proto3.dir/accel/proto3_accel_test.cc.o"
  "CMakeFiles/test_accel_proto3.dir/accel/proto3_accel_test.cc.o.d"
  "test_accel_proto3"
  "test_accel_proto3.pdb"
  "test_accel_proto3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_proto3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
