# Empty dependencies file for test_accel_ops.
# This may be replaced when dependencies are built.
