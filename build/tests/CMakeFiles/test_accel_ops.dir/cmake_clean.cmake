file(REMOVE_RECURSE
  "CMakeFiles/test_accel_ops.dir/accel/ops_unit_test.cc.o"
  "CMakeFiles/test_accel_ops.dir/accel/ops_unit_test.cc.o.d"
  "test_accel_ops"
  "test_accel_ops.pdb"
  "test_accel_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
