file(REMOVE_RECURSE
  "CMakeFiles/test_codec_property.dir/proto/codec_property_test.cc.o"
  "CMakeFiles/test_codec_property.dir/proto/codec_property_test.cc.o.d"
  "test_codec_property"
  "test_codec_property.pdb"
  "test_codec_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
