file(REMOVE_RECURSE
  "CMakeFiles/test_adt.dir/accel/adt_test.cc.o"
  "CMakeFiles/test_adt.dir/accel/adt_test.cc.o.d"
  "test_adt"
  "test_adt.pdb"
  "test_adt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
