# Empty compiler generated dependencies file for test_adt.
# This may be replaced when dependencies are built.
