# Empty compiler generated dependencies file for test_accel_property.
# This may be replaced when dependencies are built.
