file(REMOVE_RECURSE
  "CMakeFiles/test_accel_property.dir/accel/accel_property_test.cc.o"
  "CMakeFiles/test_accel_property.dir/accel/accel_property_test.cc.o.d"
  "test_accel_property"
  "test_accel_property.pdb"
  "test_accel_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
