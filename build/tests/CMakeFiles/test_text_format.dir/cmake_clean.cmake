file(REMOVE_RECURSE
  "CMakeFiles/test_text_format.dir/proto/text_format_test.cc.o"
  "CMakeFiles/test_text_format.dir/proto/text_format_test.cc.o.d"
  "test_text_format"
  "test_text_format.pdb"
  "test_text_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
