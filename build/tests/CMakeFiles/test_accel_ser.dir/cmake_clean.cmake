file(REMOVE_RECURSE
  "CMakeFiles/test_accel_ser.dir/accel/serializer_test.cc.o"
  "CMakeFiles/test_accel_ser.dir/accel/serializer_test.cc.o.d"
  "test_accel_ser"
  "test_accel_ser.pdb"
  "test_accel_ser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
