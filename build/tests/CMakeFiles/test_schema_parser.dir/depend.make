# Empty dependencies file for test_schema_parser.
# This may be replaced when dependencies are built.
