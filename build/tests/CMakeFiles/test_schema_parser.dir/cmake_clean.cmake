file(REMOVE_RECURSE
  "CMakeFiles/test_schema_parser.dir/proto/schema_parser_test.cc.o"
  "CMakeFiles/test_schema_parser.dir/proto/schema_parser_test.cc.o.d"
  "test_schema_parser"
  "test_schema_parser.pdb"
  "test_schema_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schema_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
