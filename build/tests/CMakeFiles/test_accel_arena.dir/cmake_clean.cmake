file(REMOVE_RECURSE
  "CMakeFiles/test_accel_arena.dir/accel/accel_arena_test.cc.o"
  "CMakeFiles/test_accel_arena.dir/accel/accel_arena_test.cc.o.d"
  "test_accel_arena"
  "test_accel_arena.pdb"
  "test_accel_arena[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
