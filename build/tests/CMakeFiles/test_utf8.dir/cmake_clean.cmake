file(REMOVE_RECURSE
  "CMakeFiles/test_utf8.dir/proto/utf8_test.cc.o"
  "CMakeFiles/test_utf8.dir/proto/utf8_test.cc.o.d"
  "test_utf8"
  "test_utf8.pdb"
  "test_utf8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utf8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
