file(REMOVE_RECURSE
  "CMakeFiles/test_message.dir/proto/message_test.cc.o"
  "CMakeFiles/test_message.dir/proto/message_test.cc.o.d"
  "test_message"
  "test_message.pdb"
  "test_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
