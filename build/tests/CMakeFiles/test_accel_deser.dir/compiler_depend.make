# Empty compiler generated dependencies file for test_accel_deser.
# This may be replaced when dependencies are built.
