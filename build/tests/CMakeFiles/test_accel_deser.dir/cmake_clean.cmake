file(REMOVE_RECURSE
  "CMakeFiles/test_accel_deser.dir/accel/deserializer_test.cc.o"
  "CMakeFiles/test_accel_deser.dir/accel/deserializer_test.cc.o.d"
  "test_accel_deser"
  "test_accel_deser.pdb"
  "test_accel_deser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_deser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
