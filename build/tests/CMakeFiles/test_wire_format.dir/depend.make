# Empty dependencies file for test_wire_format.
# This may be replaced when dependencies are built.
