file(REMOVE_RECURSE
  "CMakeFiles/test_asic.dir/asic/asic_test.cc.o"
  "CMakeFiles/test_asic.dir/asic/asic_test.cc.o.d"
  "test_asic"
  "test_asic.pdb"
  "test_asic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
