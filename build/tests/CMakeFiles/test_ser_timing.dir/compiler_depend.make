# Empty compiler generated dependencies file for test_ser_timing.
# This may be replaced when dependencies are built.
