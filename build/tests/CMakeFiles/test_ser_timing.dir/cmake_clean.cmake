file(REMOVE_RECURSE
  "CMakeFiles/test_ser_timing.dir/accel/serializer_timing_test.cc.o"
  "CMakeFiles/test_ser_timing.dir/accel/serializer_timing_test.cc.o.d"
  "test_ser_timing"
  "test_ser_timing.pdb"
  "test_ser_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ser_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
