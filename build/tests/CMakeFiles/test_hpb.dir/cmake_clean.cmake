file(REMOVE_RECURSE
  "CMakeFiles/test_hpb.dir/hpb/hpb_test.cc.o"
  "CMakeFiles/test_hpb.dir/hpb/hpb_test.cc.o.d"
  "test_hpb"
  "test_hpb.pdb"
  "test_hpb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
