# Empty dependencies file for test_hpb.
# This may be replaced when dependencies are built.
