file(REMOVE_RECURSE
  "CMakeFiles/test_message_ops.dir/proto/message_ops_test.cc.o"
  "CMakeFiles/test_message_ops.dir/proto/message_ops_test.cc.o.d"
  "test_message_ops"
  "test_message_ops.pdb"
  "test_message_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
