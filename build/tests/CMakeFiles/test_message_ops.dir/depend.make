# Empty dependencies file for test_message_ops.
# This may be replaced when dependencies are built.
