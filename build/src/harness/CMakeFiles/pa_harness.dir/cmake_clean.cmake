file(REMOVE_RECURSE
  "CMakeFiles/pa_harness.dir/bench_common.cc.o"
  "CMakeFiles/pa_harness.dir/bench_common.cc.o.d"
  "CMakeFiles/pa_harness.dir/microbench.cc.o"
  "CMakeFiles/pa_harness.dir/microbench.cc.o.d"
  "CMakeFiles/pa_harness.dir/stats_report.cc.o"
  "CMakeFiles/pa_harness.dir/stats_report.cc.o.d"
  "libpa_harness.a"
  "libpa_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
