# Empty compiler generated dependencies file for pa_harness.
# This may be replaced when dependencies are built.
