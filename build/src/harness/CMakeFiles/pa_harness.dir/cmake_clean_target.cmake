file(REMOVE_RECURSE
  "libpa_harness.a"
)
