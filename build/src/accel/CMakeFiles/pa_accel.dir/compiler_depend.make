# Empty compiler generated dependencies file for pa_accel.
# This may be replaced when dependencies are built.
