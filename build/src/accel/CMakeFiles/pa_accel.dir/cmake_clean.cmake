file(REMOVE_RECURSE
  "CMakeFiles/pa_accel.dir/accelerator.cc.o"
  "CMakeFiles/pa_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/pa_accel.dir/adt.cc.o"
  "CMakeFiles/pa_accel.dir/adt.cc.o.d"
  "CMakeFiles/pa_accel.dir/deserializer.cc.o"
  "CMakeFiles/pa_accel.dir/deserializer.cc.o.d"
  "CMakeFiles/pa_accel.dir/ops_unit.cc.o"
  "CMakeFiles/pa_accel.dir/ops_unit.cc.o.d"
  "CMakeFiles/pa_accel.dir/serializer.cc.o"
  "CMakeFiles/pa_accel.dir/serializer.cc.o.d"
  "libpa_accel.a"
  "libpa_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
