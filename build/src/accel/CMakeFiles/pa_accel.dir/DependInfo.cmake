
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/accel/CMakeFiles/pa_accel.dir/accelerator.cc.o" "gcc" "src/accel/CMakeFiles/pa_accel.dir/accelerator.cc.o.d"
  "/root/repo/src/accel/adt.cc" "src/accel/CMakeFiles/pa_accel.dir/adt.cc.o" "gcc" "src/accel/CMakeFiles/pa_accel.dir/adt.cc.o.d"
  "/root/repo/src/accel/deserializer.cc" "src/accel/CMakeFiles/pa_accel.dir/deserializer.cc.o" "gcc" "src/accel/CMakeFiles/pa_accel.dir/deserializer.cc.o.d"
  "/root/repo/src/accel/ops_unit.cc" "src/accel/CMakeFiles/pa_accel.dir/ops_unit.cc.o" "gcc" "src/accel/CMakeFiles/pa_accel.dir/ops_unit.cc.o.d"
  "/root/repo/src/accel/serializer.cc" "src/accel/CMakeFiles/pa_accel.dir/serializer.cc.o" "gcc" "src/accel/CMakeFiles/pa_accel.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/pa_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
