file(REMOVE_RECURSE
  "libpa_accel.a"
)
