file(REMOVE_RECURSE
  "CMakeFiles/pa_common.dir/histogram.cc.o"
  "CMakeFiles/pa_common.dir/histogram.cc.o.d"
  "CMakeFiles/pa_common.dir/rng.cc.o"
  "CMakeFiles/pa_common.dir/rng.cc.o.d"
  "libpa_common.a"
  "libpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
