# Empty dependencies file for pa_rpc.
# This may be replaced when dependencies are built.
