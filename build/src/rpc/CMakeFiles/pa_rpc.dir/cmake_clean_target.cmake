file(REMOVE_RECURSE
  "libpa_rpc.a"
)
