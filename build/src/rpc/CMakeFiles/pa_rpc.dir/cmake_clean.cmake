file(REMOVE_RECURSE
  "CMakeFiles/pa_rpc.dir/codec_backend.cc.o"
  "CMakeFiles/pa_rpc.dir/codec_backend.cc.o.d"
  "CMakeFiles/pa_rpc.dir/frame.cc.o"
  "CMakeFiles/pa_rpc.dir/frame.cc.o.d"
  "CMakeFiles/pa_rpc.dir/rpc.cc.o"
  "CMakeFiles/pa_rpc.dir/rpc.cc.o.d"
  "libpa_rpc.a"
  "libpa_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
