# Empty compiler generated dependencies file for pa_profile.
# This may be replaced when dependencies are built.
