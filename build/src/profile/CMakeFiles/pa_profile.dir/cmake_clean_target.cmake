file(REMOVE_RECURSE
  "libpa_profile.a"
)
