file(REMOVE_RECURSE
  "CMakeFiles/pa_profile.dir/cycle_estimator.cc.o"
  "CMakeFiles/pa_profile.dir/cycle_estimator.cc.o.d"
  "CMakeFiles/pa_profile.dir/distributions.cc.o"
  "CMakeFiles/pa_profile.dir/distributions.cc.o.d"
  "CMakeFiles/pa_profile.dir/fleet_model.cc.o"
  "CMakeFiles/pa_profile.dir/fleet_model.cc.o.d"
  "CMakeFiles/pa_profile.dir/samplers.cc.o"
  "CMakeFiles/pa_profile.dir/samplers.cc.o.d"
  "libpa_profile.a"
  "libpa_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
