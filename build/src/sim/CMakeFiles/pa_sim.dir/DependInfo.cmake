
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/pa_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/pa_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/pa_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/pa_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/sim/CMakeFiles/pa_sim.dir/tlb.cc.o" "gcc" "src/sim/CMakeFiles/pa_sim.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
