# Empty dependencies file for pa_sim.
# This may be replaced when dependencies are built.
