file(REMOVE_RECURSE
  "CMakeFiles/pa_sim.dir/cache.cc.o"
  "CMakeFiles/pa_sim.dir/cache.cc.o.d"
  "CMakeFiles/pa_sim.dir/memory_system.cc.o"
  "CMakeFiles/pa_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/pa_sim.dir/tlb.cc.o"
  "CMakeFiles/pa_sim.dir/tlb.cc.o.d"
  "libpa_sim.a"
  "libpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
