file(REMOVE_RECURSE
  "CMakeFiles/pa_proto.dir/arena.cc.o"
  "CMakeFiles/pa_proto.dir/arena.cc.o.d"
  "CMakeFiles/pa_proto.dir/descriptor.cc.o"
  "CMakeFiles/pa_proto.dir/descriptor.cc.o.d"
  "CMakeFiles/pa_proto.dir/message.cc.o"
  "CMakeFiles/pa_proto.dir/message.cc.o.d"
  "CMakeFiles/pa_proto.dir/message_ops.cc.o"
  "CMakeFiles/pa_proto.dir/message_ops.cc.o.d"
  "CMakeFiles/pa_proto.dir/parser.cc.o"
  "CMakeFiles/pa_proto.dir/parser.cc.o.d"
  "CMakeFiles/pa_proto.dir/schema_parser.cc.o"
  "CMakeFiles/pa_proto.dir/schema_parser.cc.o.d"
  "CMakeFiles/pa_proto.dir/schema_random.cc.o"
  "CMakeFiles/pa_proto.dir/schema_random.cc.o.d"
  "CMakeFiles/pa_proto.dir/serializer.cc.o"
  "CMakeFiles/pa_proto.dir/serializer.cc.o.d"
  "CMakeFiles/pa_proto.dir/text_format.cc.o"
  "CMakeFiles/pa_proto.dir/text_format.cc.o.d"
  "CMakeFiles/pa_proto.dir/wire_format.cc.o"
  "CMakeFiles/pa_proto.dir/wire_format.cc.o.d"
  "libpa_proto.a"
  "libpa_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
