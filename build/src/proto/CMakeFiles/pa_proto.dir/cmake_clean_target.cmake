file(REMOVE_RECURSE
  "libpa_proto.a"
)
