# Empty dependencies file for pa_proto.
# This may be replaced when dependencies are built.
