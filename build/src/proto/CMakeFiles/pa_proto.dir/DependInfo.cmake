
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/arena.cc" "src/proto/CMakeFiles/pa_proto.dir/arena.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/arena.cc.o.d"
  "/root/repo/src/proto/descriptor.cc" "src/proto/CMakeFiles/pa_proto.dir/descriptor.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/descriptor.cc.o.d"
  "/root/repo/src/proto/message.cc" "src/proto/CMakeFiles/pa_proto.dir/message.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/message.cc.o.d"
  "/root/repo/src/proto/message_ops.cc" "src/proto/CMakeFiles/pa_proto.dir/message_ops.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/message_ops.cc.o.d"
  "/root/repo/src/proto/parser.cc" "src/proto/CMakeFiles/pa_proto.dir/parser.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/parser.cc.o.d"
  "/root/repo/src/proto/schema_parser.cc" "src/proto/CMakeFiles/pa_proto.dir/schema_parser.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/schema_parser.cc.o.d"
  "/root/repo/src/proto/schema_random.cc" "src/proto/CMakeFiles/pa_proto.dir/schema_random.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/schema_random.cc.o.d"
  "/root/repo/src/proto/serializer.cc" "src/proto/CMakeFiles/pa_proto.dir/serializer.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/serializer.cc.o.d"
  "/root/repo/src/proto/text_format.cc" "src/proto/CMakeFiles/pa_proto.dir/text_format.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/text_format.cc.o.d"
  "/root/repo/src/proto/wire_format.cc" "src/proto/CMakeFiles/pa_proto.dir/wire_format.cc.o" "gcc" "src/proto/CMakeFiles/pa_proto.dir/wire_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
