file(REMOVE_RECURSE
  "libpa_hpb.a"
)
