file(REMOVE_RECURSE
  "CMakeFiles/pa_hpb.dir/generator.cc.o"
  "CMakeFiles/pa_hpb.dir/generator.cc.o.d"
  "CMakeFiles/pa_hpb.dir/shape.cc.o"
  "CMakeFiles/pa_hpb.dir/shape.cc.o.d"
  "libpa_hpb.a"
  "libpa_hpb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_hpb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
