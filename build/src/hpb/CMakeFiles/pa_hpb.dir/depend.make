# Empty dependencies file for pa_hpb.
# This may be replaced when dependencies are built.
