# Empty compiler generated dependencies file for pa_asic.
# This may be replaced when dependencies are built.
