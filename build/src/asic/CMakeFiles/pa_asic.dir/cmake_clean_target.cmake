file(REMOVE_RECURSE
  "libpa_asic.a"
)
