file(REMOVE_RECURSE
  "CMakeFiles/pa_asic.dir/area_model.cc.o"
  "CMakeFiles/pa_asic.dir/area_model.cc.o.d"
  "libpa_asic.a"
  "libpa_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
