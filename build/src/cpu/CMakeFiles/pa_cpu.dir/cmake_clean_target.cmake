file(REMOVE_RECURSE
  "libpa_cpu.a"
)
