file(REMOVE_RECURSE
  "CMakeFiles/pa_cpu.dir/cpu_model.cc.o"
  "CMakeFiles/pa_cpu.dir/cpu_model.cc.o.d"
  "libpa_cpu.a"
  "libpa_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
