# Empty compiler generated dependencies file for pa_cpu.
# This may be replaced when dependencies are built.
